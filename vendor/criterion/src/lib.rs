//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access, so this crate provides the
//! small API surface the workspace benches use — [`black_box`],
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a plain
//! `Instant`-based timing loop instead of criterion's statistical engine.
//! Output is one `name ... ns/iter` line per benchmark, enough to eyeball
//! regressions; it makes no claim of criterion-grade rigor.

use std::time::{Duration, Instant};

/// Opaque value barrier — defers to `std::hint::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Hint for how much setup output `iter_batched` should buffer. The shim
/// runs setup per iteration regardless, so the variants only exist for
/// source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Measured wall-clock per iteration, filled in by `iter`/`iter_batched`.
    elapsed: Duration,
    iters: u64,
}

/// Target duration for the measurement loop of one benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(300);
/// Iterations used to estimate the per-iteration cost before measuring.
const PROBE_ITERS: u64 = 8;

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to fill
    /// the target measurement window (`MEASURE_FOR`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Probe to pick an iteration count, then measure.
        let probe_start = Instant::now();
        for _ in 0..PROBE_ITERS {
            black_box(routine());
        }
        let per_iter = probe_start.elapsed() / PROBE_ITERS as u32;
        let iters = iters_for(per_iter);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let probe_start = Instant::now();
        black_box(routine(input));
        let per_iter = probe_start.elapsed().max(Duration::from_nanos(1));
        let iters = iters_for(per_iter);
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn iters_for(per_iter: Duration) -> u64 {
    let per_iter_ns = per_iter.as_nanos().max(1);
    (MEASURE_FOR.as_nanos() / per_iter_ns).clamp(1, 1_000_000) as u64
}

/// Entry point mirroring criterion's `Criterion` driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        let ns = if b.iters == 0 { 0 } else { b.elapsed.as_nanos() / u128::from(b.iters) };
        println!("{name:<40} {ns:>12} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` as running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().bench_function("shim/iter", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default();
        c.bench_function("shim/iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
