//! Offline stand-in for `serde_json`.
//!
//! Text layer over the vendored `serde` shim's [`Value`] tree: a compact and
//! a pretty emitter, plus a recursive-descent parser covering the full JSON
//! grammar (escapes, surrogate pairs, exponents, nesting limits).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to its JSON tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a JSON tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_value(&parse_value(s)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// --- emitter ---------------------------------------------------------------

fn emit(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => emit_float(*f, out),
        Value::Str(s) => emit_string(s, out),
        Value::Arr(items) => {
            emit_seq(items.iter(), out, indent, level, ('[', ']'), |item, out, lvl| {
                emit(item, out, indent, lvl);
            })
        }
        Value::Obj(entries) => {
            emit_seq(entries.iter(), out, indent, level, ('{', '}'), |(k, item), out, lvl| {
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, out, indent, lvl);
            })
        }
    }
}

fn emit_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut each: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        each(item, out, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets.1);
}

fn emit_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` is the shortest representation that round-trips.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/Infinity; serde_json also emits null here.
        out.push_str("null");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        if self.depth >= MAX_DEPTH {
            return Err(Error::custom("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos)))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `}}` at byte {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<()> {
        let c = self.peek().ok_or_else(|| Error::custom("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b't' => out.push('\t'),
            b'r' => out.push('\r'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // surrogate pair
                    if !(self.eat_keyword("\\u")) {
                        return Err(Error::custom("unpaired surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::custom("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code).ok_or_else(|| Error::custom("invalid unicode escape"))?,
                );
            }
            other => return Err(Error::custom(format!("invalid escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("tab\"le\n".into())),
            ("count".into(), Value::Int(-42)),
            ("rate".into(), Value::Float(0.125)),
            ("tags".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("nested".into(), Value::Obj(vec![("k".into(), Value::Int(1))])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = parse_value(&text).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse_value(r#"["Aé🦀", "\\\"\n"]"#).unwrap();
        assert_eq!(v, Value::Arr(vec![Value::Str("Aé🦀".into()), Value::Str("\\\"\n".into())]));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "\"unterminated", "{\"a\" 1}", "nul", "1 2", "{\"a\":01x}"] {
            assert!(parse_value(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_keep_integerness() {
        assert_eq!(parse_value("9007199254740993").unwrap(), Value::Int(9007199254740993));
        assert_eq!(parse_value("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse_value("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<u64> = vec![1, 2, 3];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }
}
