//! Slice sampling helpers ([`SliceRandom`]).

use crate::Rng;

/// Random sampling from slices: `choose` and `shuffle`.
pub trait SliceRandom {
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    #[inline]
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
