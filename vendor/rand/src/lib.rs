//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! exact API surface it uses: [`RngCore`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! [`rngs::StdRng`], [`rngs::mock::StepRng`] and [`seq::SliceRandom`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the upstream
//! ChaCha12, but the repository only relies on *internal* determinism
//! (same seed ⇒ same stream), never on matching upstream streams.

pub mod rngs;
pub mod seq;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable random-number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler — mirrors rand's `SampleUniform` so that
/// integer-literal fallback resolves `gen_range(0..n)` the same way.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in(lo: $t, hi: $t, inclusive: bool, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let draw = (rng.next_u64() as u128) % (span as u128);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in(lo: $t, hi: $t, inclusive: bool, rng: &mut dyn RngCore) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// Types a generator can produce directly via [`Rng::gen`].
pub trait GenValue {
    fn gen_from(rng: &mut dyn RngCore) -> Self;
}

impl GenValue for f64 {
    #[inline]
    fn gen_from(rng: &mut dyn RngCore) -> f64 {
        rng.next_f64()
    }
}

impl GenValue for f32 {
    #[inline]
    fn gen_from(rng: &mut dyn RngCore) -> f32 {
        rng.next_f64() as f32
    }
}

impl GenValue for bool {
    #[inline]
    fn gen_from(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl GenValue for u32 {
    #[inline]
    fn gen_from(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl GenValue for u64 {
    #[inline]
    fn gen_from(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl GenValue for usize {
    #[inline]
    fn gen_from(rng: &mut dyn RngCore) -> usize {
        rng.next_u64() as usize
    }
}

impl GenValue for i64 {
    #[inline]
    fn gen_from(rng: &mut dyn RngCore) -> i64 {
        rng.next_u64() as i64
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open or inclusive, ints or floats).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }

    /// A uniform value of an inferred primitive type.
    #[inline]
    fn gen<T: GenValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step, used for seeding and seed derivation.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            assert!(x < 10);
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4, 5];
        let picked = *items.choose(&mut rng).unwrap();
        assert!(items.contains(&picked));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
