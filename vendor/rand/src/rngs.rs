//! Generator implementations: [`StdRng`], [`SmallRng`], and [`mock::StepRng`].

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not the upstream ChaCha12 — only internal determinism matters here.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state_seed(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng::from_state_seed(seed)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A small fast generator; identical to [`StdRng`] in this shim.
pub type SmallRng = StdRng;

pub mod mock {
    use crate::RngCore;

    /// A mock generator yielding `initial`, `initial + increment`, … —
    /// mirrors `rand::rngs::mock::StepRng`.
    #[derive(Debug, Clone)]
    pub struct StepRng {
        v: u64,
        step: u64,
    }

    impl StepRng {
        pub fn new(initial: u64, increment: u64) -> StepRng {
            StepRng { v: initial, step: increment }
        }
    }

    impl RngCore for StepRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.step);
            out
        }
    }
}
