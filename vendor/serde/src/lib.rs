//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this shim provides the
//! subset the workspace uses: `#[derive(Serialize, Deserialize)]` plus
//! JSON round-trips through `serde_json`. Instead of upstream's
//! visitor-based architecture, serialization goes through a concrete JSON
//! tree ([`Value`]): `Serialize` renders into it and `Deserialize` reads
//! back out of it. The derive macros (re-exported from `serde_derive`)
//! generate externally-tagged representations matching serde's defaults:
//! structs become objects, unit enum variants become strings, and tuple
//! variants become single-key objects.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped tree value — the interchange type between `Serialize`,
/// `Deserialize`, and the `serde_json` text layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integer numbers (kept exact; JSON integer literals parse here).
    Int(i64),
    /// Non-integer numbers.
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.1e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    pub fn expected(what: &str, got: &Value) -> Error {
        Error { msg: format!("expected {what}, got {}", got.kind_name()) }
    }

    pub fn missing_field(name: &str) -> Error {
        Error { msg: format!("missing field `{name}`") }
    }

    pub fn unknown_variant(name: &str, ty: &str) -> Error {
        Error { msg: format!("unknown variant `{name}` for `{ty}`") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a JSON tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a JSON tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserializes an object field; absent keys deserialize from `Null` so
/// `Option` fields default to `None` while required fields report the
/// missing key.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| Error::missing_field(name)),
    }
}

// --- impls for primitives and std containers ------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

int_impls!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::Float(*self as f64)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<u64, Error> {
        let i = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
        u64::try_from(i).map_err(|_| Error::custom(format!("integer {i} out of range for u64")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), Error> {
        let a = v.as_arr().filter(|a| a.len() == 2).ok_or_else(|| Error::expected("pair", v))?;
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}
