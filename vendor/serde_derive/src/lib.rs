//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The build container has no crates.io access, so there is no `syn`/`quote`;
//! the derive input is parsed directly from the `proc_macro` token stream.
//! Supported shapes — exactly what the workspace defines:
//!
//! * structs with named fields;
//! * enums whose variants are units or tuples.
//!
//! Generated code follows serde's externally-tagged defaults: structs
//! serialize to objects, unit variants to their name as a string, tuple
//! variants to `{"Variant": value}` (single field) or `{"Variant": [..]}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct TypeDef {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named struct fields, in declaration order.
    Struct(Vec<String>),
    /// Enum variants: name plus tuple-field count (0 = unit variant).
    Enum(Vec<(String, usize)>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    let body = match &def.shape {
        Shape::Struct(fields) => serialize_struct(&def.name, fields),
        Shape::Enum(variants) => serialize_enum(&def.name, variants),
    };
    body.parse().expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    let body = match &def.shape {
        Shape::Struct(fields) => deserialize_struct(&def.name, fields),
        Shape::Enum(variants) => deserialize_enum(&def.name, variants),
    };
    body.parse().expect("serde_derive generated invalid Deserialize impl")
}

// --- input parsing ---------------------------------------------------------

fn parse_type_def(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types (deriving `{name}`)");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("serde_derive: no braced body found for `{name}`"),
        }
    };
    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body, &name)),
        "enum" => Shape::Enum(parse_variants(body, &name)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    TypeDef { name, shape }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // optional restriction like pub(crate)
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream, name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name in `{name}`, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde_derive: `{name}` has unsupported field syntax (tuple struct?): {other:?}"
            ),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

/// Advances past one type, stopping after the comma that ends the field (or
/// at end of input). Tracks `<`/`>` depth; grouped tokens are atomic.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(body: TokenStream, name: &str) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name in `{name}`, got {other:?}"),
        };
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                tuple_arity(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive shim does not support struct variants (`{name}::{variant}`)")
            }
            _ => 0,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!(
                "serde_derive: unsupported variant syntax after `{name}::{variant}`: {other:?}"
            ),
        }
        variants.push((variant, arity));
    }
    variants
}

fn tuple_arity(fields: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = fields.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut arity = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        arity += 1;
    }
    arity
}

// --- code generation -------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(clippy::all, unused_variables)]\n";

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n\
                ::serde::Value::Obj(::std::vec![{pushes}])\n\
            }}\n\
        }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!("{f}: ::serde::field(o, \"{f}\")?,"));
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                match v {{\n\
                    ::serde::Value::Obj(o) => ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                    other => ::std::result::Result::Err(::serde::Error::expected(\"object\", other)),\n\
                }}\n\
            }}\n\
        }}"
    )
}

fn bindings(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__f{k}")).collect()
}

fn serialize_enum(name: &str, variants: &[(String, usize)]) -> String {
    let mut arms = String::new();
    for (v, arity) in variants {
        match arity {
            0 => arms.push_str(&format!(
                "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
            )),
            1 => arms.push_str(&format!(
                "{name}::{v}(__f0) => ::serde::Value::Obj(::std::vec![(\
                    ::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(__f0))]),"
            )),
            n => {
                let binds = bindings(*n).join(", ");
                let items: String = bindings(*n)
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{v}({binds}) => ::serde::Value::Obj(::std::vec![(\
                        ::std::string::String::from(\"{v}\"), \
                        ::serde::Value::Arr(::std::vec![{items}]))]),"
                ));
            }
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n\
                match self {{ {arms} }}\n\
            }}\n\
        }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, usize)]) -> String {
    let mut unit_arms = String::new();
    for (v, arity) in variants.iter().filter(|(_, a)| *a == 0) {
        let _ = arity;
        unit_arms.push_str(&format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"));
    }
    let mut tagged_arms = String::new();
    for (v, arity) in variants.iter().filter(|(_, a)| *a > 0) {
        match arity {
            1 => tagged_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                    ::serde::Deserialize::from_value(__inner)?)),"
            )),
            n => {
                let gets: String = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?,"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                        let __arr = __inner.as_arr()\
                            .filter(|a| a.len() == {n})\
                            .ok_or_else(|| ::serde::Error::expected(\"{n}-element array\", __inner))?;\n\
                        ::std::result::Result::Ok({name}::{v}({gets}))\n\
                    }},"
                ));
            }
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                match v {{\n\
                    ::serde::Value::Str(s) => match s.as_str() {{\n\
                        {unit_arms}\n\
                        other => ::std::result::Result::Err(\
                            ::serde::Error::unknown_variant(other, \"{name}\")),\n\
                    }},\n\
                    ::serde::Value::Obj(o) if o.len() == 1 => {{\n\
                        let (__tag, __inner) = &o[0];\n\
                        match __tag.as_str() {{\n\
                            {tagged_arms}\n\
                            other => ::std::result::Result::Err(\
                                ::serde::Error::unknown_variant(other, \"{name}\")),\n\
                        }}\n\
                    }},\n\
                    other => ::std::result::Result::Err(\
                        ::serde::Error::expected(\"enum representation\", other)),\n\
                }}\n\
            }}\n\
        }}"
    )
}
