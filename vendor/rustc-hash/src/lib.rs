//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the Fx (Firefox) multiply-rotate hash with the same public
//! surface the workspace uses: [`FxHasher`], [`FxHashMap`], [`FxHashSet`].
//! The container this repository builds in has no network access to
//! crates.io, so the handful of external dependencies are vendored as
//! API-compatible shims (see `vendor/README.md`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, non-cryptographic hasher (multiply-rotate-xor).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        assert_eq!(h("alpha"), h("alpha"));
        assert_ne!(h("alpha"), h("beta"));
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
