//! The per-rule per-crate violation ratchet (`ci/lint_ratchet.json`).
//!
//! Same gate pattern as `ci/acceptance_floor.json` (PR 1): CI compares the
//! live measurement against a committed bound and fails on regression. Here
//! the bound is a count per `(crate, rule)` and the check is two-sided:
//!
//! * count **above** the recorded value → a new violation slipped in; fix
//!   it or add a justified allowlist entry.
//! * count **below** the recorded value → sites were fixed; re-ratchet with
//!   `cargo run -p xtask -- lint --write-ratchet ci/lint_ratchet.json` so
//!   the improvement can never regress silently.
//!
//! Missing `(crate, rule)` pairs are implicitly zero in both directions, so
//! D-rule entries never need seeding: the first hit in a clean crate is a
//! regression from 0.
//!
//! A ratchet file may additionally carry a `floors` section with the same
//! `(group, key)` shape but the *opposite* direction ([`compare_floors`]):
//! counts may only grow. `ci/template_health.json` uses it to pin the
//! per-kind mined-template counts — the mined corpus may gain templates but
//! never silently lose them.

use std::collections::BTreeMap;
use std::path::Path;

use serde::Value;

pub type Counts = BTreeMap<String, BTreeMap<String, i64>>;

#[derive(Debug, Clone, Default)]
pub struct Ratchet {
    pub comment: String,
    pub counts: Counts,
    /// Grow-only counts (see [`compare_floors`]); empty in ratchet files
    /// that predate the section, and omitted from [`render`] when empty.
    pub floors: Counts,
}

/// One `(crate, rule)` mismatch between the measurement and the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    pub krate: String,
    pub rule: String,
    pub recorded: i64,
    pub current: i64,
}

pub fn load(path: &Path) -> Result<Ratchet, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read ratchet {}: {e}", path.display()))?;
    let value: Value = serde_json::parse_value(&text)
        .map_err(|e| format!("ratchet {} is not valid JSON: {e}", path.display()))?;
    let obj = value.as_obj().ok_or("ratchet root must be a JSON object")?;
    let mut ratchet = Ratchet::default();
    for (key, val) in obj {
        match key.as_str() {
            "comment" => {
                ratchet.comment = val.as_str().unwrap_or_default().to_string();
            }
            "counts" => ratchet.counts = parse_counts(val, "counts")?,
            "floors" => ratchet.floors = parse_counts(val, "floors")?,
            other => return Err(format!("ratchet has unknown top-level key `{other}`")),
        }
    }
    Ok(ratchet)
}

fn parse_counts(val: &Value, section: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    let crates = val.as_obj().ok_or_else(|| format!("ratchet `{section}` must be an object"))?;
    for (krate, rules) in crates {
        let rules = rules
            .as_obj()
            .ok_or_else(|| format!("ratchet {section} for `{krate}` must be an object"))?;
        let mut per_rule = BTreeMap::new();
        for (rule, n) in rules {
            let n = n
                .as_f64()
                .ok_or_else(|| format!("ratchet {section} {krate}/{rule} must be a number"))?
                as i64;
            per_rule.insert(rule.clone(), n);
        }
        counts.insert(krate.clone(), per_rule);
    }
    Ok(counts)
}

/// Renders the ratchet deterministically (sorted keys, trailing newline).
/// The `floors` section is emitted only when it carries a non-zero entry,
/// so pre-existing two-sided ratchet files render byte-identically.
pub fn render(ratchet: &Ratchet) -> String {
    let mut root = vec![
        ("comment".to_string(), Value::Str(ratchet.comment.clone())),
        ("counts".to_string(), render_counts(&ratchet.counts)),
    ];
    if ratchet.floors.values().any(|rules| rules.values().any(|&n| n != 0)) {
        root.push(("floors".to_string(), render_counts(&ratchet.floors)));
    }
    let mut text =
        serde_json::to_string_pretty(&Value::Obj(root)).expect("ratchet JSON always renders");
    text.push('\n');
    text
}

fn render_counts(counts: &Counts) -> Value {
    Value::Obj(
        counts
            .iter()
            .filter(|(_, rules)| rules.values().any(|&n| n != 0))
            .map(|(krate, rules)| {
                let per_rule = rules
                    .iter()
                    .filter(|(_, &n)| n != 0)
                    .map(|(rule, &n)| (rule.clone(), Value::Int(n)))
                    .collect();
                (krate.clone(), Value::Obj(per_rule))
            })
            .collect(),
    )
}

/// Compares a measurement against the recorded ratchet.
/// Returns `(regressions, stale)`.
pub fn compare(current: &Counts, ratchet: &Ratchet) -> (Vec<Diff>, Vec<Diff>) {
    let mut regressions = Vec::new();
    let mut stale = Vec::new();
    let mut keys: Vec<(String, String)> = Vec::new();
    for (krate, rules) in current.iter().chain(ratchet.counts.iter()) {
        for rule in rules.keys() {
            let key = (krate.clone(), rule.clone());
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
    }
    keys.sort();
    for (krate, rule) in keys {
        let cur = current.get(&krate).and_then(|r| r.get(&rule)).copied().unwrap_or(0);
        let rec = ratchet.counts.get(&krate).and_then(|r| r.get(&rule)).copied().unwrap_or(0);
        let diff = Diff { krate, rule, recorded: rec, current: cur };
        if cur > rec {
            regressions.push(diff);
        } else if cur < rec {
            stale.push(diff);
        }
    }
    (regressions, stale)
}

/// Compares a measurement against the recorded grow-only floors: the
/// inverse direction of [`compare`]. Returns `(regressions, stale)` —
/// a count **below** its floor is a regression (something was lost); a
/// count **above** it is stale (the floor should be raised with `--write`
/// so the gain can never regress silently). Missing pairs are implicitly
/// zero on both sides.
pub fn compare_floors(current: &Counts, ratchet: &Ratchet) -> (Vec<Diff>, Vec<Diff>) {
    let mut regressions = Vec::new();
    let mut stale = Vec::new();
    let mut keys: Vec<(String, String)> = Vec::new();
    for (krate, rules) in current.iter().chain(ratchet.floors.iter()) {
        for rule in rules.keys() {
            let key = (krate.clone(), rule.clone());
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
    }
    keys.sort();
    for (krate, rule) in keys {
        let cur = current.get(&krate).and_then(|r| r.get(&rule)).copied().unwrap_or(0);
        let rec = ratchet.floors.get(&krate).and_then(|r| r.get(&rule)).copied().unwrap_or(0);
        let diff = Diff { krate, rule, recorded: rec, current: cur };
        if cur < rec {
            regressions.push(diff);
        } else if cur > rec {
            stale.push(diff);
        }
    }
    (regressions, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, i64)]) -> Counts {
        let mut c: Counts = BTreeMap::new();
        for &(krate, rule, n) in entries {
            c.entry(krate.to_string()).or_default().insert(rule.to_string(), n);
        }
        c
    }

    #[test]
    fn compare_is_two_sided_with_implicit_zeros() {
        let ratchet =
            Ratchet { counts: counts(&[("a", "P002", 3), ("b", "P001", 1)]), ..Ratchet::default() };
        // a/P002 regressed, b/P001 improved (stale), c/D001 regressed from
        // an implicit zero.
        let current = counts(&[("a", "P002", 4), ("b", "P001", 0), ("c", "D001", 1)]);
        let (regressions, stale) = compare(&current, &ratchet);
        let reg: Vec<_> = regressions
            .iter()
            .map(|d| (d.krate.as_str(), d.rule.as_str(), d.recorded, d.current))
            .collect();
        assert_eq!(reg, vec![("a", "P002", 3, 4), ("c", "D001", 0, 1)]);
        let st: Vec<_> = stale.iter().map(|d| (d.krate.as_str(), d.current)).collect();
        assert_eq!(st, vec![("b", 0)]);
    }

    #[test]
    fn compare_clean_when_counts_match() {
        let ratchet = Ratchet { counts: counts(&[("a", "P002", 2)]), ..Ratchet::default() };
        let (regressions, stale) =
            compare(&counts(&[("a", "P002", 2), ("b", "P001", 0)]), &ratchet);
        assert!(regressions.is_empty() && stale.is_empty());
    }

    #[test]
    fn render_load_roundtrip_drops_zero_entries() -> Result<(), String> {
        let ratchet = Ratchet {
            comment: "test".to_string(),
            counts: counts(&[("a", "P002", 2), ("a", "P001", 0), ("z", "D001", 0)]),
            floors: Counts::new(),
        };
        let rendered = render(&ratchet);
        assert!(rendered.ends_with('\n'));
        let path = std::env::temp_dir().join(format!("xtask_ratchet_{}.json", std::process::id()));
        std::fs::write(&path, &rendered).map_err(|e| e.to_string())?;
        let loaded = load(&path);
        let _ = std::fs::remove_file(&path);
        let loaded = loaded?;
        assert_eq!(loaded.comment, "test");
        assert_eq!(loaded.counts, counts(&[("a", "P002", 2)]), "zero entries are filtered");
        Ok(())
    }

    #[test]
    fn compare_floors_is_grow_only() {
        let ratchet = Ratchet {
            floors: counts(&[("mined", "sql", 700), ("mined", "logic", 300)]),
            ..Ratchet::default()
        };
        // sql shrank (regression), logic grew (stale: raise the floor),
        // arith appeared above an implicit zero floor (stale).
        let current =
            counts(&[("mined", "sql", 650), ("mined", "logic", 320), ("mined", "arith", 10)]);
        let (regressions, stale) = compare_floors(&current, &ratchet);
        let reg: Vec<_> = regressions
            .iter()
            .map(|d| (d.krate.as_str(), d.rule.as_str(), d.recorded, d.current))
            .collect();
        assert_eq!(reg, vec![("mined", "sql", 700, 650)]);
        let st: Vec<_> = stale.iter().map(|d| (d.rule.as_str(), d.recorded, d.current)).collect();
        assert_eq!(st, vec![("arith", 0, 10), ("logic", 300, 320)]);
        let (regressions, stale) =
            compare_floors(&counts(&[("mined", "sql", 700), ("mined", "logic", 300)]), &ratchet);
        assert!(regressions.is_empty() && stale.is_empty());
    }

    #[test]
    fn floors_roundtrip_and_are_omitted_when_empty() -> Result<(), String> {
        let without = Ratchet {
            comment: "test".to_string(),
            counts: counts(&[("a", "P002", 2)]),
            floors: Counts::new(),
        };
        assert!(
            !render(&without).contains("floors"),
            "empty floors must not change pre-existing ratchet files"
        );
        let with = Ratchet { floors: counts(&[("mined", "sql", 700)]), ..without.clone() };
        let rendered = render(&with);
        assert!(rendered.contains("floors"));
        let path =
            std::env::temp_dir().join(format!("xtask_ratchet_floors_{}.json", std::process::id()));
        std::fs::write(&path, &rendered).map_err(|e| e.to_string())?;
        let loaded = load(&path);
        let _ = std::fs::remove_file(&path);
        let loaded = loaded?;
        assert_eq!(loaded.floors, counts(&[("mined", "sql", 700)]));
        assert_eq!(loaded.counts, counts(&[("a", "P002", 2)]));
        Ok(())
    }

    #[test]
    fn load_rejects_unknown_top_level_keys() -> Result<(), String> {
        let path =
            std::env::temp_dir().join(format!("xtask_ratchet_bad_{}.json", std::process::id()));
        std::fs::write(&path, "{\"counts\": {}, \"extra\": 1}").map_err(|e| e.to_string())?;
        let res = load(&path);
        let _ = std::fs::remove_file(&path);
        assert!(res.is_err());
        Ok(())
    }
}
