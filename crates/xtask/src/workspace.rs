//! Which crates the auditor scans, and with which rule families.
//!
//! Scope is part of the tool (reviewed like code), not runtime config:
//!
//! * **generation-path** (D-rules): every crate whose code can run while a
//!   sample is being synthesized — nondeterminism anywhere in this set can
//!   leak into dataset bytes or telemetry counters. `bench` is included
//!   because its binaries re-synthesize the datasets (its throughput timer
//!   is allowlisted, not exempted).
//! * **panic-scope** (P-rules): executor and pipeline library crates, where
//!   an invalid sampled program must become a `Discard` reason (paper
//!   §III-B), never a process abort. `bench` binaries are CLI tools and may
//!   panic on misuse, so they are outside P-scope.
//!
//! `vendor/*` (third-party shims) and `xtask` itself are never scanned.
//! Only `src/` trees are scanned: integration tests, benches, and examples
//! are not shipped in the generation path.

use std::path::{Path, PathBuf};

pub struct CrateScope {
    pub name: &'static str,
    /// Source directory relative to the workspace root.
    pub src_rel: &'static str,
    pub generation_path: bool,
    pub panic_scope: bool,
}

pub const SCOPES: &[CrateScope] = &[
    CrateScope { name: "uctr-repro", src_rel: "src", generation_path: true, panic_scope: true },
    CrateScope {
        name: "tabular",
        src_rel: "crates/tabular/src",
        generation_path: true,
        panic_scope: true,
    },
    CrateScope {
        name: "sqlexec",
        src_rel: "crates/sqlexec/src",
        generation_path: true,
        panic_scope: true,
    },
    CrateScope {
        name: "logicforms",
        src_rel: "crates/logicforms/src",
        generation_path: true,
        panic_scope: true,
    },
    CrateScope {
        name: "arithexpr",
        src_rel: "crates/arithexpr/src",
        generation_path: true,
        panic_scope: true,
    },
    CrateScope {
        name: "nlgen",
        src_rel: "crates/nlgen/src",
        generation_path: true,
        panic_scope: true,
    },
    CrateScope {
        name: "textops",
        src_rel: "crates/textops/src",
        generation_path: true,
        panic_scope: true,
    },
    CrateScope {
        name: "corpora",
        src_rel: "crates/corpora/src",
        generation_path: true,
        panic_scope: true,
    },
    CrateScope {
        name: "uctr",
        src_rel: "crates/uctr/src",
        generation_path: true,
        panic_scope: true,
    },
    CrateScope {
        name: "models",
        src_rel: "crates/models/src",
        generation_path: true,
        panic_scope: true,
    },
    CrateScope {
        name: "bench",
        src_rel: "crates/bench/src",
        generation_path: true,
        panic_scope: false,
    },
];

/// All `.rs` files under `dir`, recursively, sorted for determinism.
pub fn rs_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    collect(dir, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders a path relative to the workspace root with forward slashes.
pub fn rel_display(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}
