//! # xtask — workspace-native static analysis for UCTR
//!
//! `cargo run -p xtask -- lint` audits the generation-path crates for two
//! disciplines the golden-pipeline byte-identity tests can only check
//! dynamically:
//!
//! * **determinism** — no per-process-seeded hash containers, OS entropy,
//!   wall clocks, or environment reads where samples are synthesized
//!   (rules D001–D003);
//! * **panic discipline** — invalid sampled programs must flow into the
//!   structured `*InstantiateError`/`Discard` machinery instead of
//!   panicking mid-funnel (rules P001–P002, paper §III-B).
//!
//! Suppressions live in `ci/lint_allowlist.toml` (justification required);
//! per-crate per-rule counts are ratcheted in `ci/lint_ratchet.json` and
//! compared two-sided in CI. See `DESIGN.md` §6.
//!
//! `cargo run -p xtask -- audit-templates` statically typechecks the
//! builtin program-template bank (plus optional `--mined` corpora) with
//! the uctr analysis layer and ratchets per-kind diagnostic counts in
//! `ci/template_health.json`. See `DESIGN.md` §7 and [`audit`].
//!
//! `cargo run -p xtask -- audit-equivalence` rebuilds the mined corpus,
//! reports canonical-form equivalence classes and subsumption edges, and
//! differentially verifies every canonical merge the miner performed —
//! ratcheted under the `equivalence` group of the same health file, with
//! a hard zero gate on unverified merges. See [`equivalence`].

pub mod allowlist;
pub mod audit;
pub mod equivalence;
pub mod lint;
pub mod ratchet;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod workspace;

use std::path::Path;

/// Convenience for tests and the CLI: parse the allowlist at `path`
/// (missing file = empty allowlist) and run the full audit.
pub fn run_with_allowlist(root: &Path, allowlist_path: &Path) -> Result<lint::LintOutcome, String> {
    let entries = if allowlist_path.exists() {
        let text = std::fs::read_to_string(allowlist_path)
            .map_err(|e| format!("cannot read {}: {e}", allowlist_path.display()))?;
        allowlist::parse(&text)?
    } else {
        Vec::new()
    };
    lint::run(root, &entries)
}
