//! Orchestration: walk the scoped crates, scan, apply the allowlist, count.

use std::collections::BTreeMap;
use std::path::Path;

use crate::allowlist::AllowEntry;
use crate::ratchet::Counts;
use crate::rules::{scan_masked, Violation};
use crate::scanner::mask;
use crate::workspace::{rel_display, rs_files, SCOPES};

pub struct LintOutcome {
    /// Every hit, allowlisted ones flagged, ordered by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Active (non-allowlisted) counts per crate per rule.
    pub counts: Counts,
    /// Allowlist entries that suppressed nothing (likely stale).
    pub unused_allow: Vec<AllowEntry>,
}

impl LintOutcome {
    pub fn active_total(&self) -> i64 {
        self.counts.values().flat_map(|r| r.values()).sum()
    }

    pub fn allowlisted_total(&self) -> i64 {
        self.violations.iter().filter(|v| v.allowlisted.is_some()).count() as i64
    }
}

/// Runs the full audit over the workspace rooted at `root`.
pub fn run(root: &Path, allowlist: &[AllowEntry]) -> Result<LintOutcome, String> {
    let mut violations: Vec<Violation> = Vec::new();
    for scope in SCOPES {
        let dir = root.join(scope.src_rel);
        if !dir.is_dir() {
            return Err(format!(
                "scoped crate `{}` has no source dir at {}",
                scope.name,
                dir.display()
            ));
        }
        for file in rs_files(&dir)? {
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let masked = mask(&src);
            let rel = rel_display(root, &file);
            violations.extend(scan_masked(
                &masked,
                &src,
                scope.name,
                &rel,
                scope.generation_path,
                scope.panic_scope,
            ));
        }
    }
    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });

    let mut used = vec![false; allowlist.len()];
    for v in &mut violations {
        for (i, entry) in allowlist.iter().enumerate() {
            if entry.matches(v) {
                v.allowlisted = Some(entry.justification.clone());
                used[i] = true;
                break;
            }
        }
    }

    let mut counts: Counts = BTreeMap::new();
    for scope in SCOPES {
        // Seed every scoped crate so the report shows explicit zeros.
        counts.entry(scope.name.to_string()).or_default();
    }
    for v in violations.iter().filter(|v| v.allowlisted.is_none()) {
        *counts
            .entry(v.krate.clone())
            .or_default()
            .entry(v.rule.name().to_string())
            .or_insert(0) += 1;
    }

    let unused_allow =
        allowlist.iter().zip(&used).filter(|(_, &u)| !u).map(|(e, _)| e.clone()).collect();

    Ok(LintOutcome { violations, counts, unused_allow })
}
