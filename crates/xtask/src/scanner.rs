//! Comment-, string-, and raw-string-aware masking for Rust source files.
//!
//! The lint rules in [`crate::rules`] are plain token/substring patterns; to
//! keep them honest without a full parser (the build environment has no
//! crates.io access, so `syn` is not an option) every scanned file is first
//! *masked*: bytes inside comments, string literals, raw strings, and char
//! literals are replaced with spaces while newlines and all code bytes keep
//! their exact byte positions. Pattern hits on the masked text therefore
//! carry exact line/column information and can never come from a comment or
//! the inside of a literal. String *delimiters* (quotes and raw-string
//! hashes) are kept so rules can anchor on them (e.g. `.expect("`).

/// A masked view of one source file.
pub struct Masked {
    /// Same byte length as the input; see module docs for what survives.
    pub text: String,
    /// Byte ranges covered by `#[cfg(test)]` items and `#[test]` functions.
    pub test_regions: Vec<(usize, usize)>,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
}

impl Masked {
    /// Converts a byte offset into 1-based `(line, column)`.
    pub fn position(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// True if the byte offset falls inside a detected test region.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| offset >= s && offset < e)
    }
}

/// Masks one source file and locates its test regions.
pub fn mask(src: &str) -> Masked {
    let text = mask_text(src);
    let test_regions = find_test_regions(text.as_bytes());
    let mut line_starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    Masked { text, test_regions, line_starts }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn blank(out: &mut [u8], start: usize, end: usize) {
    let end = end.min(out.len());
    for slot in &mut out[start..end] {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

fn mask_text(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => i = mask_cooked_string(b, &mut out, i),
            b'r' | b'b' if i == 0 || !is_ident_byte(b[i - 1]) => {
                if let Some((quote, hashes, raw)) = string_prefix(b, i) {
                    if raw {
                        i = mask_raw_string(b, &mut out, quote, hashes);
                    } else {
                        i = mask_cooked_string(b, &mut out, quote);
                    }
                } else {
                    i += 1;
                }
            }
            b'\'' => i = mask_char_or_lifetime(b, &mut out, i),
            _ => i += 1,
        }
    }
    // Whole literals and comments are always blanked as units, so no UTF-8
    // sequence is ever split.
    String::from_utf8(out).expect("masking preserves UTF-8 validity")
}

/// At `b[i]` ∈ {`r`, `b`}: does a raw/byte string literal start here?
/// Returns `(index_of_opening_quote, n_hashes, is_raw)`.
fn string_prefix(b: &[u8], i: usize) -> Option<(usize, usize, bool)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let mut raw = false;
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
    }
    if j < b.len() && b[j] == b'"' && (raw || b[i] == b'b') {
        Some((j, hashes, raw))
    } else {
        None
    }
}

/// Masks a `"..."` (or `b"..."`) body; `open` is the opening quote. Returns
/// the index just past the closing quote. Quote delimiters are kept.
fn mask_cooked_string(b: &[u8], out: &mut [u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                blank(out, open + 1, i);
                return i + 1;
            }
            _ => i += 1,
        }
    }
    blank(out, open + 1, b.len());
    b.len()
}

/// Masks a raw string body; `open` is the opening quote after `r#...`.
fn mask_raw_string(b: &[u8], out: &mut [u8], open: usize, hashes: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
        {
            blank(out, open + 1, i);
            return i + 1 + hashes;
        }
        i += 1;
    }
    blank(out, open + 1, b.len());
    b.len()
}

/// At a `'`: masks a char literal, or steps over a lifetime tick.
fn mask_char_or_lifetime(b: &[u8], out: &mut [u8], i: usize) -> usize {
    let Some(&next) = b.get(i + 1) else { return i + 1 };
    if next == b'\\' {
        // Escaped char literal: skip the escaped byte, then scan for the
        // closing quote (covers `'\''` and `'\u{...}'`).
        let mut j = i + 3;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        blank(out, i, (j + 1).min(b.len()));
        return j + 1;
    }
    if next == b'\'' {
        return i + 2; // `''` — not valid Rust, step over defensively
    }
    // One char (1–4 UTF-8 bytes) followed by a quote → char literal;
    // anything else (`'a>`, `'static`, `'_,`) is a lifetime.
    let ch_len = match next {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    };
    if b.get(i + 1 + ch_len) == Some(&b'\'') {
        blank(out, i, i + 2 + ch_len);
        i + 2 + ch_len
    } else {
        i + 1
    }
}

// --- test-region detection -------------------------------------------------

enum TestAttr {
    CfgTest,
    Test,
}

/// Finds byte ranges introduced by `#[cfg(test)]` or `#[test]`: the range
/// spans from the attribute to the closing brace of the annotated item.
fn find_test_regions(b: &[u8]) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] != b'#' {
            i += 1;
            continue;
        }
        let Some((attr_end, _kind)) = parse_test_attr(b, i) else {
            i += 1;
            continue;
        };
        // Skip whitespace and any further attributes down to the item.
        let mut j = attr_end;
        loop {
            j = skip_ws(b, j);
            if j < b.len() && b[j] == b'#' {
                j = skip_attr(b, j);
            } else {
                break;
            }
        }
        // The item body is the next `{ ... }`; a `;` first means a bodyless
        // item (e.g. `mod tests;`) and the region ends there.
        let mut k = j;
        while k < b.len() && b[k] != b'{' && b[k] != b';' {
            k += 1;
        }
        let end = if k < b.len() && b[k] == b'{' { match_brace(b, k) } else { k.min(b.len()) };
        regions.push((i, end));
        i = end.max(i + 1);
    }
    regions
}

/// Parses `#[cfg(test)]` or `#[test]` starting at `i` (whitespace allowed
/// between tokens). Returns the index just past `]` and the attribute kind.
fn parse_test_attr(b: &[u8], i: usize) -> Option<(usize, TestAttr)> {
    let mut j = skip_ws(b, i + 1);
    if b.get(j) != Some(&b'[') {
        return None;
    }
    j = skip_ws(b, j + 1);
    if let Some(after) = eat_word(b, j, b"cfg") {
        j = skip_ws(b, after);
        if b.get(j) != Some(&b'(') {
            return None;
        }
        j = skip_ws(b, j + 1);
        let after_test = eat_word(b, j, b"test")?;
        j = skip_ws(b, after_test);
        if b.get(j) != Some(&b')') {
            return None;
        }
        j = skip_ws(b, j + 1);
        if b.get(j) != Some(&b']') {
            return None;
        }
        Some((j + 1, TestAttr::CfgTest))
    } else if let Some(after) = eat_word(b, j, b"test") {
        j = skip_ws(b, after);
        if b.get(j) != Some(&b']') {
            return None;
        }
        Some((j + 1, TestAttr::Test))
    } else {
        None
    }
}

fn eat_word(b: &[u8], i: usize, word: &[u8]) -> Option<usize> {
    if b.len() >= i + word.len() && &b[i..i + word.len()] == word {
        let end = i + word.len();
        if b.get(end).is_none_or(|&c| !is_ident_byte(c)) {
            return Some(end);
        }
    }
    None
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Skips a balanced `#[...]` attribute starting at `#`.
fn skip_attr(b: &[u8], i: usize) -> usize {
    let mut j = skip_ws(b, i + 1);
    if b.get(j) != Some(&b'[') {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < b.len() {
        match b[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    b.len()
}

/// Given `b[open] == b'{'` in masked text, returns the index just past the
/// matching close brace (or `b.len()` if unbalanced).
fn match_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}
