//! Cross-template equivalence audit (`cargo run -p xtask -- audit-equivalence`).
//!
//! Rebuilds the deterministic mined corpus, asks [`uctr::analysis::EquivalenceReport`]
//! for the canonical-form equivalence classes over the resulting bank, the
//! differential verification of every miner merge, and the subsumption
//! preorder over class representatives. The scalar results are ratcheted
//! two-sided under the `equivalence` counts group of
//! `ci/template_health.json` — the same file `audit-templates` maintains,
//! which ignores this group and leaves it intact on `--write`.
//!
//! On top of the ratchet sits one **hard gate**: `unverified_merges` must
//! be zero. A merge the differential witness could not confirm (any
//! disagreement, or zero productive cells) fails the audit regardless of
//! what the health file records.

use std::collections::BTreeMap;

use serde::Value;
use uctr::analysis::EquivalenceReport;
use uctr::KindSlot;

use crate::ratchet::Counts;
use crate::report::RatchetStatus;

/// The counts group inside `ci/template_health.json` owned by this audit.
pub const GROUP: &str = "equivalence";

/// The kind prefixes canonical keys carry, in `KindSlot` order.
const CANON_PREFIXES: [&str; 3] = ["sql:", "lf:", "ae:"];

/// Classes per kind, recovered from the kind-prefixed canonical keys.
pub fn classes_per_kind(report: &EquivalenceReport) -> [usize; 3] {
    let mut out = [0usize; 3];
    for class in &report.classes {
        for (slot, prefix) in CANON_PREFIXES.iter().enumerate() {
            if class.canonical.starts_with(prefix) {
                out[slot] += 1;
            }
        }
    }
    out
}

/// The ratchet key space for the `equivalence` group. Every value is a
/// deterministic function of the mined corpus, so the two-sided compare
/// doubles as a determinism gate on the whole analyzer stack.
pub fn counts(report: &EquivalenceReport) -> Counts {
    let per_kind = classes_per_kind(report);
    let mut group = BTreeMap::new();
    group.insert("classes".to_string(), report.class_count() as i64);
    group.insert("merged_classes".to_string(), report.merged_classes() as i64);
    group.insert("verified_merges".to_string(), report.verified_merges as i64);
    group.insert("subsumption_edges".to_string(), report.subsumption_edges as i64);
    for kind in [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith] {
        group.insert(format!("classes_{}", kind.name()), per_kind[kind as usize] as i64);
        group.insert(
            format!("pruned_{}", kind.name()),
            report.pruned_per_kind[kind as usize] as i64,
        );
    }
    let mut counts = Counts::new();
    counts.insert(GROUP.to_string(), group);
    counts
}

/// Builds the machine-readable JSON report (stable key order).
/// `rep_signatures[i]` is the signature of bank template `i`.
pub fn json_report(
    report: &EquivalenceReport,
    rep_signatures: &[String],
    ratchet: Option<&RatchetStatus>,
) -> String {
    let per_kind = classes_per_kind(report);
    let kinds = Value::Obj(
        [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith]
            .iter()
            .map(|&kind| {
                (
                    kind.name().to_string(),
                    Value::Obj(vec![
                        ("classes".to_string(), Value::Int(per_kind[kind as usize] as i64)),
                        (
                            "pruned".to_string(),
                            Value::Int(report.pruned_per_kind[kind as usize] as i64),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    // Only the multi-member classes carry information worth serializing;
    // singletons are the bank itself.
    let merged = Value::Arr(
        report
            .classes
            .iter()
            .filter(|c| !c.pruned.is_empty())
            .map(|c| {
                Value::Obj(vec![
                    (
                        "representative".to_string(),
                        Value::Str(
                            rep_signatures
                                .get(c.representative)
                                .cloned()
                                .unwrap_or_else(|| format!("#{}", c.representative)),
                        ),
                    ),
                    ("canonical".to_string(), Value::Str(c.canonical.clone())),
                    (
                        "pruned".to_string(),
                        Value::Arr(c.pruned.iter().map(|s| Value::Str(s.clone())).collect()),
                    ),
                ])
            })
            .collect(),
    );
    let mut root = vec![
        ("tool".to_string(), Value::Str("xtask audit-equivalence".to_string())),
        ("schema_version".to_string(), Value::Int(1)),
        ("classes".to_string(), Value::Int(report.class_count() as i64)),
        ("merged_classes".to_string(), Value::Int(report.merged_classes() as i64)),
        ("pruned_total".to_string(), Value::Int(report.pruned_total() as i64)),
        ("verified_merges".to_string(), Value::Int(report.verified_merges as i64)),
        ("unverified_merges".to_string(), Value::Int(report.unverified_merges as i64)),
        ("subsumption_edges".to_string(), Value::Int(report.subsumption_edges as i64)),
        ("kinds".to_string(), kinds),
        ("merged".to_string(), merged),
        (
            "failures".to_string(),
            Value::Arr(report.failures.iter().map(|f| Value::Str(f.clone())).collect()),
        ),
    ];
    if let Some(status) = ratchet {
        root.push((
            "ratchet".to_string(),
            Value::Obj(vec![
                ("path".to_string(), Value::Str(status.path.clone())),
                (
                    "status".to_string(),
                    Value::Str(
                        if !status.regressions.is_empty() {
                            "regressions"
                        } else if !status.stale.is_empty() {
                            "stale"
                        } else {
                            "ok"
                        }
                        .to_string(),
                    ),
                ),
            ]),
        ));
    }
    let mut text =
        serde_json::to_string_pretty(&Value::Obj(root)).expect("report JSON always renders");
    text.push('\n');
    text
}

/// Renders the class/pruned table for `$GITHUB_STEP_SUMMARY`.
pub fn markdown_summary(report: &EquivalenceReport, ratchet: Option<&RatchetStatus>) -> String {
    let per_kind = classes_per_kind(report);
    let mut md =
        String::from("## xtask audit-equivalence — canonical classes & subsumption pruning\n\n");
    md.push_str("| kind | classes | pruned equivalents |\n|---|---:|---:|\n");
    for kind in [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith] {
        md.push_str(&format!(
            "| `{}` | {} | {} |\n",
            kind.name(),
            per_kind[kind as usize],
            report.pruned_per_kind[kind as usize]
        ));
    }
    md.push_str(&format!(
        "\n{} class(es), {} absorbed at least one pruned template; {} template(s) pruned, \
         {} merge(s) differentially verified, {} subsumption edge(s).\n",
        report.class_count(),
        report.merged_classes(),
        report.pruned_total(),
        report.verified_merges,
        report.subsumption_edges,
    ));
    if report.unverified_merges == 0 {
        md.push_str("\nDifferential witness gate: **ok** — every merge verified.\n");
    } else {
        md.push_str(&format!(
            "\nDifferential witness gate: **FAILED** — {} unverified merge(s):\n\n",
            report.unverified_merges
        ));
        for f in &report.failures {
            md.push_str(&format!("- `{f}`\n"));
        }
    }
    if let Some(status) = ratchet {
        if status.regressions.is_empty() && status.stale.is_empty() {
            md.push_str(&format!(
                "\nHealth file `{}` (group `{GROUP}`): **ok** — counts match exactly.\n",
                status.path
            ));
        } else {
            md.push_str(&format!(
                "\nHealth file `{}` (group `{GROUP}`): **FAILED**\n\n",
                status.path
            ));
            for d in &status.regressions {
                md.push_str(&format!(
                    "- regression: `{}`/`{}` was {}, now {}\n",
                    d.krate, d.rule, d.recorded, d.current
                ));
            }
            for d in &status.stale {
                md.push_str(&format!(
                    "- stale: `{}`/`{}` was {}, now {} (re-run with --write)\n",
                    d.krate, d.rule, d.recorded, d.current
                ));
            }
        }
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use uctr::analysis::EquivalenceClass;

    fn sample_report() -> EquivalenceReport {
        EquivalenceReport {
            classes: vec![
                EquivalenceClass {
                    representative: 0,
                    canonical: "sql: select c1 from w".to_string(),
                    pruned: vec![],
                },
                EquivalenceClass {
                    representative: 1,
                    canonical: "ae: add( cell1 , cell2 )".to_string(),
                    pruned: vec!["add( the B of A , the D of C )".to_string()],
                },
            ],
            pruned_per_kind: [0, 0, 1],
            verified_merges: 1,
            unverified_merges: 0,
            failures: vec![],
            subsumption_edges: 1,
        }
    }

    #[test]
    fn counts_cover_every_ratchet_key_under_the_equivalence_group() {
        let c = counts(&sample_report());
        assert_eq!(c.len(), 1, "exactly one group");
        let group = &c[GROUP];
        assert_eq!(group["classes"], 2);
        assert_eq!(group["classes_sql"], 1);
        assert_eq!(group["classes_arith"], 1);
        assert_eq!(group["classes_logic"], 0);
        assert_eq!(group["merged_classes"], 1);
        assert_eq!(group["pruned_arith"], 1);
        assert_eq!(group["pruned_sql"], 0);
        assert_eq!(group["verified_merges"], 1);
        assert_eq!(group["subsumption_edges"], 1);
    }

    #[test]
    fn json_report_names_representatives_and_serializes_merged_classes_only() {
        let reps = vec!["select c1 from w".to_string(), "add( cell1 , cell2 )".to_string()];
        let json = json_report(&sample_report(), &reps, None);
        assert!(json.contains("\"tool\": \"xtask audit-equivalence\""));
        assert!(json.contains("\"unverified_merges\": 0"));
        assert!(json.contains("add( cell1 , cell2 )"), "merged class representative is named");
        assert!(!json.contains("select c1 from w\","), "singleton classes are not serialized");
    }

    #[test]
    fn markdown_summary_renders_the_gate_verdict() {
        let ok = markdown_summary(&sample_report(), None);
        assert!(ok.contains("| `arith` | 1 | 1 |"));
        assert!(ok.contains("Differential witness gate: **ok**"));

        let mut bad = sample_report();
        bad.unverified_merges = 1;
        bad.failures.push("arith: a => b: table 0 seed 0 mismatch".to_string());
        let md = markdown_summary(&bad, None);
        assert!(md.contains("**FAILED** — 1 unverified merge(s)"));
        assert!(md.contains("table 0 seed 0 mismatch"));
    }
}
