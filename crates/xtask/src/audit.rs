//! Static template health audit (`cargo run -p xtask -- audit-templates`).
//!
//! Runs the uctr template typechecker ([`uctr::analyze_text`]) over the
//! builtin template bank plus any `--mined` corpus files, without touching
//! a table: every template is parsed, typechecked, and reduced to its
//! [`uctr::SchemaRequirement`]. Diagnostic counts per `(kind, code)` are
//! ratcheted in `ci/template_health.json` with the same two-sided compare
//! as the lint ratchet (`crate::ratchet`): a new diagnostic is a
//! regression, a fixed one must be locked in with `--write`.
//!
//! Mined corpus files are plain text, one template per line in the form
//! `kind: template-source` (kind ∈ `sql` | `logic` | `arith`); blank lines
//! and `#` comments are ignored.
//!
//! Beyond the typecheck, the audit surfaces the abstract interpreter's
//! degeneracy convictions (the **A-rule family**, counted into the same
//! two-sided ratchet key space as the type diagnostics):
//!
//! * **A001** — constant output: the program's answer or label is fixed
//!   before any table is read (always-true/always-false claim, echo
//!   select, provably empty result set);
//! * **A002** — dead branch: one side of a conjunction/disjunction or an
//!   intermediate comparison is statically decided;
//! * **A003** — vacuous predicate: an atom that reads no data (self
//!   comparison, literal-vs-literal).

use std::collections::BTreeMap;

use serde::Value;
use uctr::{analyze_text, AnalyzedTemplate, KindSlot, SchemaRequirement};

use crate::ratchet::Counts;
use crate::report::RatchetStatus;

/// One analyzed template with its provenance.
pub struct AuditedTemplate {
    /// `builtin`, or the mined corpus path it was read from.
    pub source: String,
    pub analysis: AnalyzedTemplate,
}

/// The full audit result: every template plus the ratchet key space
/// (kind name → diagnostic code → count).
pub struct AuditOutcome {
    pub templates: Vec<AuditedTemplate>,
    pub counts: Counts,
}

impl AuditOutcome {
    pub fn total(&self) -> usize {
        self.templates.len()
    }

    pub fn clean_total(&self) -> usize {
        self.templates.iter().filter(|t| t.analysis.is_clean()).count()
    }

    pub fn degenerate_total(&self) -> usize {
        self.templates.iter().filter(|t| t.analysis.is_degenerate()).count()
    }

    pub fn diagnostics_total(&self) -> i64 {
        self.counts.values().flat_map(|per_code| per_code.values()).sum()
    }
}

/// The group label under which the builtin bank is audited; everything
/// else is a mined corpus.
pub const BUILTIN_SOURCE: &str = "builtin";

/// Per-kind counts of *clean, non-degenerate* mined (non-builtin)
/// templates, keyed for the grow-only `floors` section of
/// `ci/template_health.json` (group `mined`, key = kind name). Ill-typed
/// and A-rule-convicted mined templates are excluded — they are already
/// ratcheted downward through the diagnostic counts.
pub fn mined_counts(outcome: &AuditOutcome) -> Counts {
    let mut counts = Counts::new();
    for t in &outcome.templates {
        if t.source == BUILTIN_SOURCE || !t.analysis.is_clean() || t.analysis.is_degenerate() {
            continue;
        }
        *counts
            .entry("mined".to_string())
            .or_default()
            .entry(t.analysis.kind.name().to_string())
            .or_insert(0) += 1;
    }
    counts
}

/// The builtin bank as `(kind, source)` pairs — the same sources
/// `TemplateBank::builtin_checked` admits.
pub fn builtin_templates() -> Vec<(KindSlot, String)> {
    let mut out = Vec::new();
    for (kind, sources) in [
        (KindSlot::Sql, uctr::BUILTIN_SQL),
        (KindSlot::Logic, uctr::BUILTIN_LOGIC),
        (KindSlot::Arith, uctr::BUILTIN_ARITH),
    ] {
        out.extend(sources.iter().map(|s| (kind, (*s).to_string())));
    }
    out
}

/// Parses a mined corpus file (`kind: template` per line).
pub fn parse_mined(text: &str) -> Result<Vec<(KindSlot, String)>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kind, template) = line
            .split_once(':')
            .ok_or_else(|| format!("line {}: expected `kind: template`", idx + 1))?;
        let kind = match kind.trim() {
            "sql" => KindSlot::Sql,
            "logic" => KindSlot::Logic,
            "arith" => KindSlot::Arith,
            other => {
                return Err(format!(
                    "line {}: unknown kind `{other}` (expected sql, logic, or arith)",
                    idx + 1
                ))
            }
        };
        out.push((kind, template.trim().to_string()));
    }
    Ok(out)
}

/// Analyzes every template in every `(source-label, templates)` group.
pub fn audit(groups: &[(String, Vec<(KindSlot, String)>)]) -> AuditOutcome {
    let mut templates = Vec::new();
    let mut counts: Counts = BTreeMap::new();
    for (source, entries) in groups {
        for (kind, text) in entries {
            let analysis = analyze_text(*kind, text);
            let per_code = counts.entry(kind.name().to_string()).or_default();
            for issue in analysis.issues.iter().chain(&analysis.degeneracies) {
                *per_code.entry(issue.code.to_string()).or_insert(0) += 1;
            }
            templates.push(AuditedTemplate { source: source.clone(), analysis });
        }
    }
    AuditOutcome { templates, counts }
}

/// Per-kind rollup used by both report emitters.
struct KindStats {
    kind: &'static str,
    total: usize,
    clean: usize,
    degenerate: usize,
    diagnostics: i64,
    need_numbers: usize,
}

fn kind_stats(outcome: &AuditOutcome) -> Vec<KindStats> {
    [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith]
        .into_iter()
        .map(|kind| {
            let of_kind: Vec<_> =
                outcome.templates.iter().filter(|t| t.analysis.kind == kind).collect();
            KindStats {
                kind: kind.name(),
                total: of_kind.len(),
                clean: of_kind.iter().filter(|t| t.analysis.is_clean()).count(),
                degenerate: of_kind.iter().filter(|t| t.analysis.is_degenerate()).count(),
                diagnostics: outcome
                    .counts
                    .get(kind.name())
                    .map(|per_code| per_code.values().sum())
                    .unwrap_or(0),
                need_numbers: of_kind
                    .iter()
                    .filter(|t| needs_numbers(&t.analysis.requirement))
                    .count(),
            }
        })
        .filter(|s| s.total > 0)
        .collect()
}

/// The abstract-interpretation rule family, in report order.
pub const A_RULES: [&str; 3] = ["A001", "A002", "A003"];

fn needs_numbers(req: &SchemaRequirement) -> bool {
    req.needs_number_column || req.min_number_cols > 0
}

/// Builds the machine-readable JSON report (stable key order).
pub fn json_report(outcome: &AuditOutcome, ratchet: Option<&RatchetStatus>) -> String {
    let counts = Value::Obj(
        outcome
            .counts
            .iter()
            .map(|(kind, per_code)| {
                (
                    kind.clone(),
                    Value::Obj(
                        per_code.iter().map(|(code, &n)| (code.clone(), Value::Int(n))).collect(),
                    ),
                )
            })
            .collect(),
    );
    let templates = Value::Arr(
        outcome
            .templates
            .iter()
            .map(|t| {
                let req = &t.analysis.requirement;
                let issue_objs = |issues: &[uctr::TemplateIssue]| {
                    Value::Arr(
                        issues
                            .iter()
                            .map(|i| {
                                Value::Obj(vec![
                                    ("code".to_string(), Value::Str(i.code.to_string())),
                                    ("locus".to_string(), Value::Str(i.locus.clone())),
                                    ("message".to_string(), Value::Str(i.message.clone())),
                                ])
                            })
                            .collect(),
                    )
                };
                Value::Obj(vec![
                    ("source".to_string(), Value::Str(t.source.clone())),
                    ("kind".to_string(), Value::Str(t.analysis.kind.name().to_string())),
                    ("template".to_string(), Value::Str(t.analysis.signature.clone())),
                    ("clean".to_string(), Value::Bool(t.analysis.is_clean())),
                    ("degenerate".to_string(), Value::Bool(t.analysis.is_degenerate())),
                    ("survival".to_string(), Value::Str(format!("{:.4}", t.analysis.survival))),
                    (
                        "requirement".to_string(),
                        Value::Obj(vec![
                            ("min_rows".to_string(), Value::Int(req.min_rows as i64)),
                            ("min_cols".to_string(), Value::Int(req.min_cols as i64)),
                            ("min_number_cols".to_string(), Value::Int(req.min_number_cols as i64)),
                            ("min_date_cols".to_string(), Value::Int(req.min_date_cols as i64)),
                            ("min_text_cols".to_string(), Value::Int(req.min_text_cols as i64)),
                            (
                                "min_addressable_cells".to_string(),
                                Value::Int(req.min_addressable_cells as i64),
                            ),
                            (
                                "min_col_numeric_values".to_string(),
                                Value::Int(req.min_col_numeric_values as i64),
                            ),
                            (
                                "needs_number_column".to_string(),
                                Value::Bool(req.needs_number_column),
                            ),
                        ]),
                    ),
                    ("issues".to_string(), issue_objs(&t.analysis.issues)),
                    ("degeneracies".to_string(), issue_objs(&t.analysis.degeneracies)),
                ])
            })
            .collect(),
    );
    let mut root = vec![
        ("tool".to_string(), Value::Str("xtask audit-templates".to_string())),
        ("schema_version".to_string(), Value::Int(1)),
        ("templates_total".to_string(), Value::Int(outcome.total() as i64)),
        ("templates_clean".to_string(), Value::Int(outcome.clean_total() as i64)),
        ("diagnostics_total".to_string(), Value::Int(outcome.diagnostics_total())),
        ("counts".to_string(), counts),
        ("templates".to_string(), templates),
    ];
    if let Some(status) = ratchet {
        root.push((
            "ratchet".to_string(),
            Value::Obj(vec![
                ("path".to_string(), Value::Str(status.path.clone())),
                (
                    "status".to_string(),
                    Value::Str(
                        if !status.regressions.is_empty() {
                            "regressions"
                        } else if !status.stale.is_empty() {
                            "stale"
                        } else {
                            "ok"
                        }
                        .to_string(),
                    ),
                ),
            ]),
        ));
    }
    let mut text =
        serde_json::to_string_pretty(&Value::Obj(root)).expect("report JSON always renders");
    text.push('\n');
    text
}

/// Renders the per-kind health table for `$GITHUB_STEP_SUMMARY`.
pub fn markdown_summary(outcome: &AuditOutcome, ratchet: Option<&RatchetStatus>) -> String {
    let mut md =
        String::from("## xtask audit-templates — template typecheck & schema feasibility\n\n");
    md.push_str("| kind | templates | clean | degenerate | diagnostics | need numeric column |\n");
    md.push_str("|---|---:|---:|---:|---:|---:|\n");
    for s in kind_stats(outcome) {
        md.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} |\n",
            s.kind, s.total, s.clean, s.degenerate, s.diagnostics, s.need_numbers
        ));
    }
    md.push_str(&format!(
        "\n{} template(s) analyzed, {} clean, {} degenerate, {} diagnostic(s).\n",
        outcome.total(),
        outcome.clean_total(),
        outcome.degenerate_total(),
        outcome.diagnostics_total()
    ));
    // The A-rule family always renders, zeros included: a reviewer should
    // see "A002: 0" rather than wonder whether the rule ran.
    md.push_str("\n### Abstract-interpretation rules\n\n");
    md.push_str("| rule | meaning | count |\n|---|---|---:|\n");
    let a_rule_total = |code: &str| -> i64 {
        outcome.counts.values().filter_map(|per_code| per_code.get(code)).sum()
    };
    for (code, meaning) in A_RULES.iter().zip([
        "constant output / decided claim / empty result",
        "dead branch",
        "vacuous predicate",
    ]) {
        md.push_str(&format!("| `{code}` | {meaning} | {} |\n", a_rule_total(code)));
    }
    if outcome.diagnostics_total() > 0 {
        md.push_str("\n| kind | code | count |\n|---|---|---:|\n");
        for (kind, per_code) in &outcome.counts {
            for (code, n) in per_code {
                if *n != 0 {
                    md.push_str(&format!("| `{kind}` | `{code}` | {n} |\n"));
                }
            }
        }
    }
    if let Some(status) = ratchet {
        if status.regressions.is_empty() && status.stale.is_empty() {
            md.push_str(&format!(
                "\nHealth file `{}`: **ok** — counts match exactly.\n",
                status.path
            ));
        } else {
            md.push_str(&format!("\nHealth file `{}`: **FAILED**\n\n", status.path));
            for d in &status.regressions {
                md.push_str(&format!(
                    "- regression: `{}`/`{}` rose {} → {}\n",
                    d.krate, d.rule, d.recorded, d.current
                ));
            }
            for d in &status.stale {
                md.push_str(&format!(
                    "- stale: `{}`/`{}` fell {} → {} (re-run with --write)\n",
                    d.krate, d.rule, d.recorded, d.current
                ));
            }
        }
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_bank_audits_clean() {
        let outcome = audit(&[("builtin".to_string(), builtin_templates())]);
        assert_eq!(outcome.clean_total(), outcome.total());
        assert_eq!(outcome.diagnostics_total(), 0);
        assert!(outcome.total() > 40, "builtin bank shrank to {}", outcome.total());
    }

    #[test]
    fn mined_lines_parse_and_reject() {
        let good = "# comment\n\nsql: select count ( * ) from w\nlogic: eq { count { all_rows } ; val1 }\narith: add( val1 , val2 )\n";
        let parsed = parse_mined(good).unwrap_or_else(|e| panic!("parse_mined: {e}"));
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, KindSlot::Sql);
        assert_eq!(parsed[2].1, "add( val1 , val2 )");
        assert!(parse_mined("prose without a kind prefix\n").is_err());
        assert!(parse_mined("prolog: fact(x)\n").is_err());
    }

    #[test]
    fn ill_typed_mined_templates_are_counted_by_code() {
        let mined = vec![
            (KindSlot::Logic, "count { all_rows }".to_string()), // non-boolean root
            (KindSlot::Arith, "add( val1".to_string()),          // parse error
        ];
        let outcome = audit(&[("mined.txt".to_string(), mined)]);
        assert_eq!(outcome.total(), 2);
        assert_eq!(outcome.clean_total(), 0);
        let logic = outcome.counts.get("logic").and_then(|c| c.get("non-boolean-root"));
        assert_eq!(logic.copied(), Some(1), "{:?}", outcome.counts);
        let arith = outcome.counts.get("arith").and_then(|c| c.get(uctr::PARSE_ERROR));
        assert_eq!(arith.copied(), Some(1), "{:?}", outcome.counts);
    }

    #[test]
    fn mined_counts_exclude_builtins_and_ill_typed_templates() {
        let mined = vec![
            (KindSlot::Sql, "select c1 from w".to_string()),
            (KindSlot::Arith, "table_sum( c1 )".to_string()),
            (KindSlot::Logic, "count { all_rows }".to_string()), // ill-typed
        ];
        let outcome = audit(&[
            (BUILTIN_SOURCE.to_string(), builtin_templates()),
            ("mined.txt".to_string(), mined),
        ]);
        let counts = mined_counts(&outcome);
        let mined = counts.get("mined").cloned().unwrap_or_default();
        assert_eq!(mined.get("sql").copied(), Some(1));
        assert_eq!(mined.get("arith").copied(), Some(1));
        assert_eq!(mined.get("logic").copied(), None, "ill-typed templates are not counted");
    }

    #[test]
    fn reports_render_without_ratchet() {
        let outcome = audit(&[("builtin".to_string(), builtin_templates())]);
        let json = json_report(&outcome, None);
        assert!(json.contains("\"templates_total\""));
        assert!(json.contains("\"needs_number_column\""));
        assert!(json.contains("\"min_col_numeric_values\""));
        assert!(json.contains("\"survival\""));
        let md = markdown_summary(&outcome, None);
        assert!(md.contains("| `sql` |"), "{md}");
        assert!(md.contains("clean"), "{md}");
        // The A-rule table renders with explicit zero rows.
        for code in A_RULES {
            assert!(md.contains(&format!("| `{code}` |")), "{md}");
        }
    }

    #[test]
    fn builtin_bank_has_no_degeneracies() {
        let outcome = audit(&[("builtin".to_string(), builtin_templates())]);
        for t in &outcome.templates {
            assert!(
                !t.analysis.is_degenerate(),
                "builtin template convicted: {} {:?}",
                t.analysis.signature,
                t.analysis.degeneracies
            );
        }
        assert_eq!(outcome.degenerate_total(), 0);
    }

    #[test]
    fn degenerate_mined_templates_are_counted_under_a_rules() {
        let mined = vec![
            (KindSlot::Sql, "select c1 from w where c1 = val1".to_string()), // echo: A001
            (
                KindSlot::Logic,
                "greater { max { all_rows ; c1 } ; max { all_rows ; c1 } }".to_string(),
            ), // self-comparison: always false
            (KindSlot::Arith, "subtract( the c1 of r1 , the c1 of r1 )".to_string()), // const 0
        ];
        let outcome = audit(&[("mined.txt".to_string(), mined)]);
        assert_eq!(outcome.degenerate_total(), 3, "{:?}", outcome.counts);
        // Degeneracies never contaminate the typecheck clean count.
        assert_eq!(outcome.clean_total(), 3);
        for kind in ["sql", "logic", "arith"] {
            let a001 = outcome.counts.get(kind).and_then(|c| c.get("A001"));
            assert!(a001.is_some(), "{kind} missing A001: {:?}", outcome.counts);
        }
        // Convicted templates are excluded from the grow-only mined floors.
        assert!(!mined_counts(&outcome).contains_key("mined"), "{:?}", mined_counts(&outcome));
        let json = json_report(&outcome, None);
        assert!(json.contains("\"degenerate\": true"), "{json}");
        let md = markdown_summary(&outcome, None);
        assert!(md.contains("| `A001` |"), "{md}");
    }
}
