//! CLI for the workspace auditors. See `xtask --help`.

// This is the workspace's CLI tool: printing reports is its interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::ratchet;
use xtask::report::{json_report, markdown_summary, RatchetStatus};

const USAGE: &str = "\
xtask — workspace-native static analysis for UCTR

USAGE:
    cargo run -p xtask -- lint [OPTIONS]
    cargo run -p xtask -- audit-templates [OPTIONS]
    cargo run -p xtask -- audit-equivalence [OPTIONS]
    cargo run -p xtask -- mine [OPTIONS]

LINT OPTIONS:
    --root <DIR>            workspace root (default: auto-detected)
    --allowlist <FILE>      suppression list (default: ci/lint_allowlist.toml)
    --check-ratchet <FILE>  fail unless counts match the recorded ratchet
    --write-ratchet <FILE>  rewrite the ratchet file from current counts
    --json <FILE>           write the machine-readable report
    --md <FILE>             write a markdown summary table (for CI job summaries)
    --quiet                 suppress per-violation lines

AUDIT-TEMPLATES OPTIONS:
    --root <DIR>            workspace root (default: auto-detected)
    --mined <FILE>          also audit a mined corpus (`kind: template` lines;
                            repeatable). With --check, the per-kind clean
                            mined counts are compared against the grow-only
                            `floors` section of the health file; with
                            --write, the floors are rewritten from them.
    --health <FILE>         health ratchet file (default: ci/template_health.json)
    --check                 fail unless diagnostic counts match the health file
    --write                 rewrite the health file from current counts
    --json <FILE>           write the machine-readable report (per template:
                            issues, A-rule degeneracies, survival estimate,
                            tightened schema requirement)
    --md <FILE>             write a markdown summary table (for CI job
                            summaries), incl. the A-rule count table
                            (A001 degeneracy, A002 dead branch, A003
                            vacuous predicate)
    --quiet                 suppress per-diagnostic lines

AUDIT-EQUIVALENCE OPTIONS:
    --root <DIR>            workspace root (default: auto-detected)
    --health <FILE>         health ratchet file (default: ci/template_health.json);
                            this audit owns only its `equivalence` counts group —
                            audit-templates ignores that group and preserves it
    --seed <N>              synthetic-corpus seed (default: 2023)
    --seeds <N>             differential-witness seeds per table (default: 32)
    --check                 fail unless the `equivalence` counts match the
                            health file exactly (two-sided)
    --write                 rewrite the `equivalence` group from current counts,
                            leaving every other group and the floors untouched
    --json <FILE>           write the machine-readable report (classes per kind,
                            merged classes with their pruned members, witness
                            failures, subsumption edge count)
    --md <FILE>             write a markdown summary table (for CI job summaries)
    --quiet                 suppress per-merge lines

    Regardless of --check, the audit FAILS if any canonical merge lacks a
    differential witness (unverified_merges must be zero).

MINE OPTIONS:
    --root <DIR>            workspace root (default: auto-detected)
    --out <FILE>            mined corpus output (default: ci/mined_templates.txt)
    --seed <N>              synthetic-corpus seed (default: 2023)
    --check                 do not write; fail if the regenerated corpus
                            differs from the committed file (determinism gate)

EXIT CODES:
    0  clean (or counts match the ratchet exactly)
    1  ratchet regression/staleness, or an invalid allowlist
    2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run: fn(&[String]) -> Result<bool, String> = match args.first().map(String::as_str) {
        Some("lint") => run_lint_cli,
        Some("audit-templates") => run_audit_cli,
        Some("audit-equivalence") => run_equiv_cli,
        Some("mine") => run_mine_cli,
        Some("-h" | "--help") | None => {
            print!("{USAGE}");
            return ExitCode::from(u8::from(args.is_empty()) * 2);
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args[1..]) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Workspace root: two levels up from this crate's manifest.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap_or_else(|_| {
        // Fall back to the cwd `cargo run` was invoked from.
        PathBuf::from(".")
    })
}

fn resolve(root: &Path, path: &Path) -> PathBuf {
    if path.is_absolute() || path.exists() {
        path.to_path_buf()
    } else {
        root.join(path)
    }
}

// ---------------------------------------------------------------- lint ----

struct LintOpts {
    root: PathBuf,
    allowlist: PathBuf,
    check_ratchet: Option<PathBuf>,
    write_ratchet: Option<PathBuf>,
    json: Option<PathBuf>,
    md: Option<PathBuf>,
    quiet: bool,
}

fn run_lint_cli(args: &[String]) -> Result<bool, String> {
    let opts = parse_lint_opts(args).map_err(|e| format!("{e}\n\n{USAGE}"))?;
    run_lint(&opts)
}

fn parse_lint_opts(args: &[String]) -> Result<LintOpts, String> {
    let mut opts = LintOpts {
        root: default_root(),
        allowlist: PathBuf::new(),
        check_ratchet: None,
        write_ratchet: None,
        json: None,
        md: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut path_arg = |name: &str| {
            it.next().map(PathBuf::from).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => opts.root = path_arg("--root")?,
            "--allowlist" => opts.allowlist = path_arg("--allowlist")?,
            "--check-ratchet" => opts.check_ratchet = Some(path_arg("--check-ratchet")?),
            "--write-ratchet" => opts.write_ratchet = Some(path_arg("--write-ratchet")?),
            "--json" => opts.json = Some(path_arg("--json")?),
            "--md" => opts.md = Some(path_arg("--md")?),
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.allowlist.as_os_str().is_empty() {
        opts.allowlist = opts.root.join("ci/lint_allowlist.toml");
    }
    Ok(opts)
}

fn run_lint(opts: &LintOpts) -> Result<bool, String> {
    let outcome = xtask::run_with_allowlist(&opts.root, &opts.allowlist)?;

    if !opts.quiet {
        for v in &outcome.violations {
            match &v.allowlisted {
                None => println!(
                    "{}:{}:{}: {} [{}] {}{}",
                    v.path,
                    v.line,
                    v.col,
                    v.rule.name(),
                    v.severity.name(),
                    v.matched,
                    if v.in_test { " (in test code)" } else { "" },
                ),
                Some(just) => println!(
                    "{}:{}:{}: {} allowlisted: {}",
                    v.path,
                    v.line,
                    v.col,
                    v.rule.name(),
                    just
                ),
            }
        }
    }
    for entry in &outcome.unused_allow {
        eprintln!(
            "warning: allowlist entry at line {} ({} {}) suppressed nothing — remove it?",
            entry.decl_line, entry.rule, entry.path
        );
    }

    let mut status: Option<RatchetStatus> = None;
    let mut clean = true;
    if let Some(path) = &opts.check_ratchet {
        let path = resolve(&opts.root, path);
        let recorded = ratchet::load(&path)?;
        let (regressions, stale) = ratchet::compare(&outcome.counts, &recorded);
        for d in &regressions {
            eprintln!(
                "ratchet REGRESSION: {}/{} rose {} -> {} — fix the new site(s) or add a \
                 justified entry to ci/lint_allowlist.toml",
                d.krate, d.rule, d.recorded, d.current
            );
        }
        for d in &stale {
            eprintln!(
                "ratchet stale: {}/{} fell {} -> {} — lock in the improvement with \
                 `cargo run -p xtask -- lint --write-ratchet ci/lint_ratchet.json`",
                d.krate, d.rule, d.recorded, d.current
            );
        }
        clean = regressions.is_empty() && stale.is_empty();
        status = Some(RatchetStatus {
            path: xtask::workspace::rel_display(&opts.root, &path),
            regressions,
            stale,
        });
    }

    if let Some(path) = &opts.write_ratchet {
        let path = resolve(&opts.root, path);
        let (comment, floors) = match ratchet::load(&path) {
            Ok(existing) => (existing.comment, existing.floors),
            Err(_) => (default_ratchet_comment(), ratchet::Counts::new()),
        };
        let new = ratchet::Ratchet { comment, counts: outcome.counts.clone(), floors };
        std::fs::write(&path, ratchet::render(&new))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote ratchet {}", path.display());
    }

    if let Some(path) = &opts.json {
        std::fs::write(path, json_report(&outcome, status.as_ref()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.md {
        std::fs::write(path, markdown_summary(&outcome, status.as_ref()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    println!(
        "xtask lint: {} active violation(s), {} allowlisted{}",
        outcome.active_total(),
        outcome.allowlisted_total(),
        match (&opts.check_ratchet, clean) {
            (Some(_), true) => " — ratchet ok",
            (Some(_), false) => " — RATCHET FAILED",
            (None, _) => "",
        }
    );
    Ok(clean)
}

fn default_ratchet_comment() -> String {
    "Per-crate per-rule violation counts measured by `cargo run -p xtask -- lint`. \
     CI compares two-sided: counts above these values are regressions; counts below \
     mean sites were fixed and this file must be regenerated with --write-ratchet so \
     the improvement sticks. Missing entries are zero."
        .to_string()
}

// ----------------------------------------------------- audit-templates ----

struct AuditOpts {
    root: PathBuf,
    mined: Vec<PathBuf>,
    health: PathBuf,
    check: bool,
    write: bool,
    json: Option<PathBuf>,
    md: Option<PathBuf>,
    quiet: bool,
}

fn run_audit_cli(args: &[String]) -> Result<bool, String> {
    let opts = parse_audit_opts(args).map_err(|e| format!("{e}\n\n{USAGE}"))?;
    run_audit(&opts)
}

fn parse_audit_opts(args: &[String]) -> Result<AuditOpts, String> {
    let mut opts = AuditOpts {
        root: default_root(),
        mined: Vec::new(),
        health: PathBuf::from("ci/template_health.json"),
        check: false,
        write: false,
        json: None,
        md: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut path_arg = |name: &str| {
            it.next().map(PathBuf::from).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => opts.root = path_arg("--root")?,
            "--mined" => opts.mined.push(path_arg("--mined")?),
            "--health" => opts.health = path_arg("--health")?,
            "--check" => opts.check = true,
            "--write" => opts.write = true,
            "--json" => opts.json = Some(path_arg("--json")?),
            "--md" => opts.md = Some(path_arg("--md")?),
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn run_audit(opts: &AuditOpts) -> Result<bool, String> {
    use xtask::audit;

    let mut groups = vec![("builtin".to_string(), audit::builtin_templates())];
    for path in &opts.mined {
        let path = resolve(&opts.root, path);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let entries = audit::parse_mined(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        groups.push((xtask::workspace::rel_display(&opts.root, &path), entries));
    }
    let outcome = audit::audit(&groups);

    if !opts.quiet {
        for t in &outcome.templates {
            for issue in t.analysis.issues.iter().chain(&t.analysis.degeneracies) {
                println!(
                    "{}: {}:{}:{}: {} ({})",
                    t.source,
                    t.analysis.kind.name(),
                    t.analysis.signature,
                    issue.locus,
                    issue.message,
                    issue.code,
                );
            }
        }
    }

    let health_path = resolve(&opts.root, &opts.health);
    let mut status: Option<RatchetStatus> = None;
    let mut clean = true;
    if opts.check {
        let mut recorded = ratchet::load(&health_path)?;
        // The `equivalence` group belongs to `audit-equivalence`; this
        // audit neither produces nor compares it.
        recorded.counts.remove(xtask::equivalence::GROUP);
        let (mut regressions, mut stale) = ratchet::compare(&outcome.counts, &recorded);
        for d in &regressions {
            eprintln!(
                "template health REGRESSION: {}/{} rose {} -> {} — fix the template(s) or \
                 regenerate with `cargo run -p xtask -- audit-templates --write`",
                d.krate, d.rule, d.recorded, d.current
            );
        }
        for d in &stale {
            eprintln!(
                "template health stale: {}/{} fell {} -> {} — lock in the improvement with \
                 `cargo run -p xtask -- audit-templates --write`",
                d.krate, d.rule, d.recorded, d.current
            );
        }
        if !opts.mined.is_empty() {
            let mined = audit::mined_counts(&outcome);
            let (floor_regressions, floor_stale) = ratchet::compare_floors(&mined, &recorded);
            for d in &floor_regressions {
                eprintln!(
                    "mined-template floor REGRESSION: {}/{} fell {} -> {} — the mined corpus \
                     may only grow; restore the lost templates or justify the drop by \
                     regenerating with `cargo run -p xtask -- audit-templates --mined ... --write`",
                    d.krate, d.rule, d.recorded, d.current
                );
            }
            for d in &floor_stale {
                eprintln!(
                    "mined-template floor stale: {}/{} rose {} -> {} — lock in the gain with \
                     `cargo run -p xtask -- audit-templates --mined ... --write`",
                    d.krate, d.rule, d.recorded, d.current
                );
            }
            regressions.extend(floor_regressions);
            stale.extend(floor_stale);
        }
        clean = regressions.is_empty() && stale.is_empty();
        status = Some(RatchetStatus {
            path: xtask::workspace::rel_display(&opts.root, &health_path),
            regressions,
            stale,
        });
    }

    if opts.write {
        let (comment, existing_floors, equivalence) = match ratchet::load(&health_path) {
            Ok(existing) => {
                let equiv = existing.counts.get(xtask::equivalence::GROUP).cloned();
                (existing.comment, existing.floors, equiv)
            }
            Err(_) => (default_health_comment(), ratchet::Counts::new(), None),
        };
        let floors =
            if opts.mined.is_empty() { existing_floors } else { audit::mined_counts(&outcome) };
        let mut counts = outcome.counts.clone();
        if let Some(group) = equivalence {
            // Carry the other audit's group through unchanged.
            counts.insert(xtask::equivalence::GROUP.to_string(), group);
        }
        let new = ratchet::Ratchet { comment, counts, floors };
        std::fs::write(&health_path, ratchet::render(&new))
            .map_err(|e| format!("cannot write {}: {e}", health_path.display()))?;
        println!("wrote template health {}", health_path.display());
    }

    if let Some(path) = &opts.json {
        std::fs::write(path, audit::json_report(&outcome, status.as_ref()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.md {
        std::fs::write(path, audit::markdown_summary(&outcome, status.as_ref()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    println!(
        "xtask audit-templates: {} template(s), {} clean, {} degenerate, {} diagnostic(s){}",
        outcome.total(),
        outcome.clean_total(),
        outcome.degenerate_total(),
        outcome.diagnostics_total(),
        match (opts.check, clean) {
            (true, true) => " — health ok",
            (true, false) => " — HEALTH CHECK FAILED",
            (false, _) => "",
        }
    );
    Ok(clean)
}

// --------------------------------------------------- audit-equivalence ----

struct EquivOpts {
    root: PathBuf,
    health: PathBuf,
    seed: u64,
    seeds: u32,
    check: bool,
    write: bool,
    json: Option<PathBuf>,
    md: Option<PathBuf>,
    quiet: bool,
}

fn run_equiv_cli(args: &[String]) -> Result<bool, String> {
    let opts = parse_equiv_opts(args).map_err(|e| format!("{e}\n\n{USAGE}"))?;
    run_equiv(&opts)
}

fn parse_equiv_opts(args: &[String]) -> Result<EquivOpts, String> {
    let mut opts = EquivOpts {
        root: default_root(),
        health: PathBuf::from("ci/template_health.json"),
        seed: uctr::mining::SYNTHETIC_SEED,
        seeds: uctr::analysis::WITNESS_SEEDS,
        check: false,
        write: false,
        json: None,
        md: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_arg =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(value_arg("--root")?),
            "--health" => opts.health = PathBuf::from(value_arg("--health")?),
            "--seed" => {
                opts.seed = value_arg("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed must be an integer: {e}"))?;
            }
            "--seeds" => {
                opts.seeds = value_arg("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds must be an integer: {e}"))?;
            }
            "--check" => opts.check = true,
            "--write" => opts.write = true,
            "--json" => opts.json = Some(PathBuf::from(value_arg("--json")?)),
            "--md" => opts.md = Some(PathBuf::from(value_arg("--md")?)),
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn run_equiv(opts: &EquivOpts) -> Result<bool, String> {
    use xtask::equivalence;

    let miner = mine_corpus(opts.seed);
    let report = uctr::analysis::EquivalenceReport::over(miner.bank(), miner.merges(), opts.seeds);
    let rep_signatures: Vec<String> =
        miner.bank().templates().iter().map(|t| t.as_program().signature()).collect();

    if !opts.quiet {
        for class in report.classes.iter().filter(|c| !c.pruned.is_empty()) {
            println!(
                "merged: {} <= {} pruned equivalent(s): {}",
                rep_signatures.get(class.representative).map_or("?", String::as_str),
                class.pruned.len(),
                class.pruned.join(" | "),
            );
        }
    }
    // The hard gate prints its evidence unconditionally: an unverified
    // merge is a soundness bug in the canonicalizer, not a count drift.
    for failure in &report.failures {
        eprintln!("UNVERIFIED MERGE: {failure}");
    }
    let gate_ok = report.unverified_merges == 0;

    let current = equivalence::counts(&report);
    let health_path = resolve(&opts.root, &opts.health);
    let mut status: Option<RatchetStatus> = None;
    let mut clean = true;
    if opts.check {
        let recorded = ratchet::load(&health_path)?;
        // Compare only this audit's group, two-sided; the rest of the
        // file belongs to audit-templates.
        let mut recorded_group = ratchet::Counts::new();
        if let Some(group) = recorded.counts.get(equivalence::GROUP) {
            recorded_group.insert(equivalence::GROUP.to_string(), group.clone());
        }
        let recorded = ratchet::Ratchet {
            comment: recorded.comment,
            counts: recorded_group,
            floors: ratchet::Counts::new(),
        };
        let (regressions, stale) = ratchet::compare(&current, &recorded);
        for d in &regressions {
            eprintln!(
                "equivalence REGRESSION: {}/{} rose {} -> {} — the canonical structure of the \
                 mined bank changed; inspect the merge log, then regenerate with \
                 `cargo run -p xtask -- audit-equivalence --write`",
                d.krate, d.rule, d.recorded, d.current
            );
        }
        for d in &stale {
            eprintln!(
                "equivalence stale: {}/{} fell {} -> {} — lock in the change with \
                 `cargo run -p xtask -- audit-equivalence --write`",
                d.krate, d.rule, d.recorded, d.current
            );
        }
        clean = regressions.is_empty() && stale.is_empty();
        status = Some(RatchetStatus {
            path: xtask::workspace::rel_display(&opts.root, &health_path),
            regressions,
            stale,
        });
    }

    if opts.write {
        let mut existing = match ratchet::load(&health_path) {
            Ok(existing) => existing,
            Err(_) => ratchet::Ratchet {
                comment: default_health_comment(),
                counts: ratchet::Counts::new(),
                floors: ratchet::Counts::new(),
            },
        };
        existing.counts.extend(current.clone());
        std::fs::write(&health_path, ratchet::render(&existing))
            .map_err(|e| format!("cannot write {}: {e}", health_path.display()))?;
        println!("wrote equivalence counts into {}", health_path.display());
    }

    if let Some(path) = &opts.json {
        std::fs::write(path, equivalence::json_report(&report, &rep_signatures, status.as_ref()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.md {
        std::fs::write(path, equivalence::markdown_summary(&report, status.as_ref()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    println!(
        "xtask audit-equivalence: {} class(es) ({} merged), {} pruned, {} verified merge(s), \
         {} unverified, {} subsumption edge(s){}",
        report.class_count(),
        report.merged_classes(),
        report.pruned_total(),
        report.verified_merges,
        report.unverified_merges,
        report.subsumption_edges,
        match (opts.check, clean, gate_ok) {
            (_, _, false) => " — WITNESS GATE FAILED",
            (true, true, true) => " — equivalence ok",
            (true, false, true) => " — EQUIVALENCE CHECK FAILED",
            (false, _, true) => "",
        }
    );
    Ok(clean && gate_ok)
}

// ------------------------------------------------------------------ mine ----

struct MineOpts {
    root: PathBuf,
    out: PathBuf,
    seed: u64,
    check: bool,
}

fn run_mine_cli(args: &[String]) -> Result<bool, String> {
    let opts = parse_mine_opts(args).map_err(|e| format!("{e}\n\n{USAGE}"))?;
    run_mine(&opts)
}

fn parse_mine_opts(args: &[String]) -> Result<MineOpts, String> {
    let mut opts = MineOpts {
        root: default_root(),
        out: PathBuf::from("ci/mined_templates.txt"),
        seed: uctr::mining::SYNTHETIC_SEED,
        check: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_arg =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(value_arg("--root")?),
            "--out" => opts.out = PathBuf::from(value_arg("--out")?),
            "--seed" => {
                opts.seed = value_arg("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed must be an integer: {e}"))?;
            }
            "--check" => opts.check = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Mines the full deterministic corpus: every gold split of the four tiny
/// benchmark generators, then the synthetic seed corpus. Fixed seeds end to
/// end, so two runs of `mine` produce byte-identical output — which is
/// exactly what `--check` gates in CI.
fn mine_corpus(seed: u64) -> uctr::mining::Miner {
    use corpora::{feverous_like, semtab_like, tatqa_like, wikisql_like, CorpusConfig};

    let mut miner = uctr::mining::Miner::new();
    let cfg = CorpusConfig::tiny();
    for bench in [wikisql_like(cfg), feverous_like(cfg), tatqa_like(cfg), semtab_like(cfg)] {
        miner.mine_samples(&bench.gold.train);
        miner.mine_samples(&bench.gold.dev);
        miner.mine_samples(&bench.gold.test);
    }
    miner.mine_synthetic_corpus(seed);
    miner
}

fn run_mine(opts: &MineOpts) -> Result<bool, String> {
    use uctr::telemetry::KindSlot;

    let miner = mine_corpus(opts.seed);
    let stats = miner.stats();
    for kind in [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith] {
        let k = stats.kind(kind);
        println!(
            "xtask mine: {:<5} {} mined, {} duplicate(s), {} equivalent pruned, {} rejected, \
             {} degenerate, {} over budget, {} parse failure(s)",
            kind.name(),
            k.mined,
            k.duplicates,
            k.equivalent,
            k.rejected,
            k.degenerate,
            k.over_budget,
            k.parse_failures,
        );
    }
    println!("xtask mine: {} template(s) total (seed {})", stats.mined_total(), opts.seed);

    let lines = miner.corpus_lines();
    let out = resolve(&opts.root, &opts.out);
    if opts.check {
        let committed = std::fs::read_to_string(&out)
            .map_err(|e| format!("cannot read {}: {e}", out.display()))?;
        if committed == lines {
            println!("xtask mine: {} is up to date — determinism ok", out.display());
            Ok(true)
        } else {
            eprintln!(
                "xtask mine: {} DIFFERS from the regenerated corpus — rerun \
                 `cargo run -p xtask -- mine` and commit the result",
                out.display()
            );
            Ok(false)
        }
    } else {
        std::fs::write(&out, &lines).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!("wrote mined corpus {}", out.display());
        Ok(true)
    }
}

fn default_health_comment() -> String {
    "Per-kind per-diagnostic-code counts over the builtin template bank, measured by \
     `cargo run -p xtask -- audit-templates`. CI compares two-sided: counts above these \
     values mean an ill-typed template slipped in; counts below mean templates were \
     fixed and this file must be regenerated with --write. Missing entries are zero. \
     The `equivalence` group is owned by `cargo run -p xtask -- audit-equivalence` \
     (canonical classes, pruned equivalents, differential-witness and subsumption \
     counts over the mined bank) and is ignored/preserved by audit-templates."
        .to_string()
}
