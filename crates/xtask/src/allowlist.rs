//! Parser for `ci/lint_allowlist.toml` — the justified-suppression list.
//!
//! The build environment has no crates.io access, so this is a deliberate
//! TOML *subset* parser: `#` comments, blank lines, `[[allow]]` table
//! headers, and `key = "basic string"` pairs (with `\"`, `\\`, `\n`, `\t`
//! escapes). Anything else is a hard error — the allowlist is a reviewed,
//! machine-checked artifact, not a config playground.
//!
//! Every entry must carry `rule`, `path`, and a non-trivial
//! `justification`; `pattern` optionally narrows the suppression to lines
//! containing a substring.

use crate::rules::Violation;

#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Rule id the suppression applies to (e.g. `"D002"`).
    pub rule: String,
    /// Workspace-relative file path the suppression applies to.
    pub path: String,
    /// Optional substring the offending source line must contain.
    pub pattern: Option<String>,
    /// Human rationale; required, at least 10 characters.
    pub justification: String,
    /// 1-based line of the `[[allow]]` header (for diagnostics).
    pub decl_line: usize,
}

impl AllowEntry {
    pub fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule.name()
            && self.path == v.path
            && self.pattern.as_ref().is_none_or(|p| v.excerpt.contains(p.as_str()))
    }
}

/// Parses the allowlist file contents. Returns entries in file order.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(AllowEntry { decl_line: lineno, ..AllowEntry::default() });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("allowlist line {lineno}: only [[allow]] tables are supported"));
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("allowlist line {lineno}: expected `key = \"value\"`"));
        };
        let key = line[..eq].trim();
        let value = parse_basic_string(line[eq + 1..].trim())
            .map_err(|e| format!("allowlist line {lineno}: {e}"))?;
        let Some(entry) = entries.last_mut() else {
            return Err(format!("allowlist line {lineno}: key `{key}` before any [[allow]] table"));
        };
        match key {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "pattern" => entry.pattern = Some(value),
            "justification" => entry.justification = value,
            other => {
                return Err(format!(
                    "allowlist line {lineno}: unknown key `{other}` \
                     (expected rule/path/pattern/justification)"
                ))
            }
        }
    }
    for e in &entries {
        if e.rule.is_empty() || e.path.is_empty() {
            return Err(format!(
                "allowlist entry at line {}: `rule` and `path` are required",
                e.decl_line
            ));
        }
        if e.justification.trim().len() < 10 {
            return Err(format!(
                "allowlist entry at line {}: a real `justification` (>= 10 chars) is required",
                e.decl_line
            ));
        }
    }
    Ok(entries)
}

pub(crate) fn parse_basic_string(s: &str) -> Result<String, String> {
    let b = s.as_bytes();
    if b.first() != Some(&b'"') {
        return Err("value must be a double-quoted string".to_string());
    }
    let mut out = String::new();
    let mut chars = s[1..].chars();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("unsupported escape `\\{other:?}`")),
            },
            Some(c) => out.push(c),
        }
    }
    let rest: &str = chars.as_str().trim();
    if !rest.is_empty() && !rest.starts_with('#') {
        return Err(format!("trailing content after string: `{rest}`"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{rule_info, RuleId, Violation};

    fn violation(rule: RuleId, path: &str, excerpt: &str) -> Violation {
        Violation {
            rule,
            severity: rule_info(rule).severity,
            krate: "demo".to_string(),
            path: path.to_string(),
            line: 1,
            col: 1,
            matched: String::new(),
            excerpt: excerpt.to_string(),
            in_test: false,
            allowlisted: None,
        }
    }

    #[test]
    fn parses_entries_in_order() -> Result<(), String> {
        let entries = parse(
            "# header comment\n\
             [[allow]]\n\
             rule = \"D002\"\n\
             path = \"crates/a/src/lib.rs\"\n\
             pattern = \"Instant::now\"\n\
             justification = \"timing is observability-only\"\n\
             \n\
             [[allow]]\n\
             rule = \"P001\"\n\
             path = \"crates/b/src/lib.rs\"\n\
             justification = \"documented startup invariant\"\n",
        )?;
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "D002");
        assert_eq!(entries[0].pattern.as_deref(), Some("Instant::now"));
        assert_eq!(entries[1].decl_line, 8);
        assert_eq!(entries[1].pattern, None);
        Ok(())
    }

    #[test]
    fn rejects_trivial_justification() {
        let err = parse("[[allow]]\nrule = \"D001\"\npath = \"x.rs\"\njustification = \"ok\"\n")
            .unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys_and_tables() {
        assert!(parse("[[allow]]\nrule = \"D001\"\nseverity = \"deny\"\n").is_err());
        assert!(parse("[other]\n").is_err());
        assert!(parse("rule = \"D001\"\n").is_err(), "key before any [[allow]] table");
    }

    #[test]
    fn basic_string_escapes() -> Result<(), String> {
        assert_eq!(parse_basic_string("\"a\\\"b\\\\c\\n\"")?, "a\"b\\c\n");
        assert!(parse_basic_string("\"unterminated").is_err());
        assert!(parse_basic_string("bare").is_err());
        assert!(parse_basic_string("\"x\" trailing").is_err());
        Ok(())
    }

    #[test]
    fn matching_is_rule_path_and_pattern() {
        let entry = AllowEntry {
            rule: "D002".to_string(),
            path: "crates/a/src/lib.rs".to_string(),
            pattern: Some("Instant::now".to_string()),
            justification: "timing is observability-only".to_string(),
            decl_line: 1,
        };
        let hit = violation(RuleId::D002, "crates/a/src/lib.rs", "let t = Instant::now();");
        assert!(entry.matches(&hit));
        // Wrong rule, wrong path, or missing pattern substring -> no match.
        assert!(!entry.matches(&violation(RuleId::D003, "crates/a/src/lib.rs", "Instant::now")));
        assert!(!entry.matches(&violation(RuleId::D002, "crates/b/src/lib.rs", "Instant::now")));
        assert!(!entry.matches(&violation(RuleId::D002, "crates/a/src/lib.rs", "thread_rng()")));
    }
}
