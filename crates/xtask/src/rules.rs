//! The determinism / panic-discipline rule set.
//!
//! Every rule is a set of token-anchored patterns applied to a masked source
//! view (see [`crate::scanner`]), so comments and string contents can never
//! trigger a hit. Rules carry a severity and a scope:
//!
//! | id   | severity | scope           | what it catches                                  |
//! |------|----------|-----------------|--------------------------------------------------|
//! | D001 | deny     | generation-path | `HashMap`/`HashSet` (iteration order is seeded   |
//! |      |          |                 | per-process; use `rustc_hash::Fx*`)              |
//! | D002 | deny     | generation-path | `thread_rng`, `rand::random`, `SystemTime::now`, |
//! |      |          |                 | `Instant::now` (OS entropy / wall clock)         |
//! | D003 | deny     | generation-path | env/date inputs: `env::var`, `env!`,             |
//! |      |          |                 | `option_env!`, `Utc::now`, `Local::now`, …       |
//! | P001 | deny     | panic-scope     | `panic!`, `unreachable!`, `todo!`, `dbg!`        |
//! |      |          |                 | outside test regions                             |
//! | P002 | warn     | panic-scope     | `.unwrap()` and `.expect("…")` anywhere in       |
//! |      |          |                 | `src/` (test regions flagged, still counted)     |
//!
//! Adding a rule: add an [`RuleId`] variant, describe it in `ALL_RULES`,
//! emit matches for it in [`scan_masked`], cover it with a fixture in
//! `crates/xtask/tests/`, and re-ratchet `ci/lint_ratchet.json` via
//! `cargo run -p xtask -- lint --write-ratchet ci/lint_ratchet.json`.

use crate::scanner::Masked;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    D001,
    D002,
    D003,
    P001,
    P002,
}

impl RuleId {
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::P001 => "P001",
            RuleId::P002 => "P002",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Never acceptable in scope without an allowlist entry.
    Deny,
    /// Discouraged; held down by the ratchet rather than forbidden.
    Warn,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

pub struct RuleInfo {
    pub id: RuleId,
    pub severity: Severity,
    pub summary: &'static str,
}

pub const ALL_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: RuleId::D001,
        severity: Severity::Deny,
        summary: "std HashMap/HashSet in a generation-path crate: iteration order is \
                  per-process-seeded; use rustc_hash::FxHashMap/FxHashSet",
    },
    RuleInfo {
        id: RuleId::D002,
        severity: Severity::Deny,
        summary: "entropy or wall-clock source (thread_rng, rand::random, SystemTime::now, \
                  Instant::now) in a generation-path crate",
    },
    RuleInfo {
        id: RuleId::D003,
        severity: Severity::Deny,
        summary: "environment- or date-dependent input (env::var, env!, option_env!, \
                  Utc::now, Local::now, OffsetDateTime::now_utc) in a generation-path crate",
    },
    RuleInfo {
        id: RuleId::P001,
        severity: Severity::Deny,
        summary: "panic!/unreachable!/todo!/dbg! in non-test executor/pipeline code: invalid \
                  programs must map to a Discard reason, not a process abort",
    },
    RuleInfo {
        id: RuleId::P002,
        severity: Severity::Warn,
        summary: ".unwrap()/.expect(\"…\") in library code: prefer `?` into the structured \
                  instantiate/exec error types",
    },
];

pub fn rule_info(id: RuleId) -> &'static RuleInfo {
    ALL_RULES.iter().find(|r| r.id == id).expect("every RuleId is described in ALL_RULES")
}

/// One pattern hit.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: RuleId,
    pub severity: Severity,
    pub krate: String,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// The offending token/pattern.
    pub matched: String,
    /// Trimmed original source line.
    pub excerpt: String,
    /// Hit inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Suppressed by `ci/lint_allowlist.toml`; justification attached.
    pub allowlisted: Option<String>,
}

/// Scans one masked file. `generation_path` enables D-rules, `panic_scope`
/// enables P-rules.
pub fn scan_masked(
    masked: &Masked,
    src: &str,
    krate: &str,
    path: &str,
    generation_path: bool,
    panic_scope: bool,
) -> Vec<Violation> {
    let mut out: Vec<(usize, RuleId, String)> = Vec::new();
    let text = masked.text.as_str();

    if generation_path {
        for ident in ["HashMap", "HashSet"] {
            for pos in find_path_token(text, ident) {
                out.push((pos, RuleId::D001, ident.to_string()));
            }
        }
        for pat in ["thread_rng", "rand::random", "SystemTime::now", "Instant::now"] {
            for pos in find_path_token(text, pat) {
                out.push((pos, RuleId::D002, pat.to_string()));
            }
        }
        for pat in ["env::var", "env::vars", "Utc::now", "Local::now", "OffsetDateTime::now_utc"] {
            for pos in find_path_token(text, pat) {
                out.push((pos, RuleId::D003, pat.to_string()));
            }
        }
        for mac in ["env", "option_env"] {
            for pos in find_macro(text, mac) {
                out.push((pos, RuleId::D003, format!("{mac}!")));
            }
        }
    }

    if panic_scope {
        for mac in ["panic", "unreachable", "todo", "dbg"] {
            for pos in find_macro(text, mac) {
                if !masked.in_test_region(pos) {
                    out.push((pos, RuleId::P001, format!("{mac}!")));
                }
            }
        }
        for pos in find_unwrap(text) {
            out.push((pos, RuleId::P002, ".unwrap()".to_string()));
        }
        for pos in find_expect_literal(text) {
            out.push((pos, RuleId::P002, ".expect(\"…\")".to_string()));
        }
    }

    out.sort_by_key(|v| (v.0, v.1));
    let lines: Vec<&str> = src.lines().collect();
    out.into_iter()
        .map(|(pos, rule, matched)| {
            let (line, col) = masked.position(pos);
            Violation {
                rule,
                severity: rule_info(rule).severity,
                krate: krate.to_string(),
                path: path.to_string(),
                line,
                col,
                matched,
                excerpt: lines.get(line - 1).map_or(String::new(), |l| l.trim().to_string()),
                in_test: masked.in_test_region(pos),
                allowlisted: None,
            }
        })
        .collect()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds `pat` (an identifier or a contiguous `A::b` path) at identifier
/// boundaries: the byte before must not be an identifier byte (a preceding
/// `::` is fine, so `std::time::Instant::now` matches `Instant::now`), and
/// the byte after the final segment must not extend the identifier.
fn find_path_token(text: &str, pat: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let b = text.as_bytes();
    let pb = pat.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = text[from..].find(pat) {
        let i = from + rel;
        from = i + 1;
        if i > 0 && is_ident_byte(b[i - 1]) {
            continue;
        }
        let end = i + pb.len();
        if b.get(end).is_some_and(|&c| is_ident_byte(c)) {
            continue;
        }
        hits.push(i);
    }
    hits
}

/// Finds macro invocations `name!` at identifier boundaries.
fn find_macro(text: &str, name: &str) -> Vec<usize> {
    let b = text.as_bytes();
    find_path_token(text, name)
        .into_iter()
        .filter(|&i| b.get(i + name.len()) == Some(&b'!'))
        .collect()
}

/// Finds `.unwrap()` (whitespace tolerated inside the call parens).
fn find_unwrap(text: &str) -> Vec<usize> {
    let b = text.as_bytes();
    find_path_token(text, "unwrap")
        .into_iter()
        .filter(|&i| {
            if i == 0 || b[i - 1] != b'.' {
                return false;
            }
            let j = skip_ws(b, i + "unwrap".len());
            if b.get(j) != Some(&b'(') {
                return false;
            }
            b.get(skip_ws(b, j + 1)) == Some(&b')')
        })
        .collect()
}

/// Finds `.expect(` whose first argument is a (possibly raw) string literal.
/// `.expect(&Token::RParen)`-style calls to same-named inherent methods are
/// deliberately not matched.
fn find_expect_literal(text: &str) -> Vec<usize> {
    let b = text.as_bytes();
    find_path_token(text, "expect")
        .into_iter()
        .filter(|&i| {
            if i == 0 || b[i - 1] != b'.' {
                return false;
            }
            let j = skip_ws(b, i + "expect".len());
            if b.get(j) != Some(&b'(') {
                return false;
            }
            let mut k = skip_ws(b, j + 1);
            // Accept `"`, `r"`, `r#"` — masking keeps these delimiters.
            if b.get(k) == Some(&b'r') {
                k += 1;
                while b.get(k) == Some(&b'#') {
                    k += 1;
                }
            }
            b.get(k) == Some(&b'"')
        })
        .collect()
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}
