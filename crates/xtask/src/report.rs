//! Machine-readable (JSON) and job-summary (markdown) report emitters.

use serde::Value;

use crate::lint::LintOutcome;
use crate::ratchet::Diff;
use crate::rules::{RuleId, ALL_RULES};

/// Ratchet comparison outcome carried into the report.
pub struct RatchetStatus {
    pub path: String,
    pub regressions: Vec<Diff>,
    pub stale: Vec<Diff>,
}

/// Builds the full JSON report (stable key order).
pub fn json_report(outcome: &LintOutcome, ratchet: Option<&RatchetStatus>) -> String {
    let rules = Value::Obj(
        ALL_RULES
            .iter()
            .map(|r| {
                (
                    r.id.name().to_string(),
                    Value::Obj(vec![
                        ("severity".to_string(), Value::Str(r.severity.name().to_string())),
                        ("summary".to_string(), Value::Str(r.summary.to_string())),
                    ]),
                )
            })
            .collect(),
    );
    let counts = Value::Obj(
        outcome
            .counts
            .iter()
            .map(|(krate, per_rule)| {
                (
                    krate.clone(),
                    Value::Obj(
                        per_rule.iter().map(|(rule, &n)| (rule.clone(), Value::Int(n))).collect(),
                    ),
                )
            })
            .collect(),
    );
    let violations = Value::Arr(
        outcome
            .violations
            .iter()
            .map(|v| {
                let mut fields = vec![
                    ("rule".to_string(), Value::Str(v.rule.name().to_string())),
                    ("severity".to_string(), Value::Str(v.severity.name().to_string())),
                    ("crate".to_string(), Value::Str(v.krate.clone())),
                    ("path".to_string(), Value::Str(v.path.clone())),
                    ("line".to_string(), Value::Int(v.line as i64)),
                    ("col".to_string(), Value::Int(v.col as i64)),
                    ("matched".to_string(), Value::Str(v.matched.clone())),
                    ("in_test".to_string(), Value::Bool(v.in_test)),
                    ("excerpt".to_string(), Value::Str(v.excerpt.clone())),
                ];
                if let Some(just) = &v.allowlisted {
                    fields.push(("allowlisted".to_string(), Value::Bool(true)));
                    fields.push(("justification".to_string(), Value::Str(just.clone())));
                }
                Value::Obj(fields)
            })
            .collect(),
    );
    let mut root = vec![
        ("tool".to_string(), Value::Str("xtask lint".to_string())),
        ("schema_version".to_string(), Value::Int(1)),
        ("rules".to_string(), rules),
        ("counts".to_string(), counts),
        ("active_violations".to_string(), Value::Int(outcome.active_total())),
        ("allowlisted_violations".to_string(), Value::Int(outcome.allowlisted_total())),
        ("violations".to_string(), violations),
    ];
    if let Some(status) = ratchet {
        root.push((
            "ratchet".to_string(),
            Value::Obj(vec![
                ("path".to_string(), Value::Str(status.path.clone())),
                (
                    "status".to_string(),
                    Value::Str(
                        if !status.regressions.is_empty() {
                            "regressions"
                        } else if !status.stale.is_empty() {
                            "stale"
                        } else {
                            "ok"
                        }
                        .to_string(),
                    ),
                ),
                ("regressions".to_string(), diffs_json(&status.regressions)),
                ("stale".to_string(), diffs_json(&status.stale)),
            ]),
        ));
    }
    let mut text =
        serde_json::to_string_pretty(&Value::Obj(root)).expect("report JSON always renders");
    text.push('\n');
    text
}

fn diffs_json(diffs: &[Diff]) -> Value {
    Value::Arr(
        diffs
            .iter()
            .map(|d| {
                Value::Obj(vec![
                    ("crate".to_string(), Value::Str(d.krate.clone())),
                    ("rule".to_string(), Value::Str(d.rule.clone())),
                    ("recorded".to_string(), Value::Int(d.recorded)),
                    ("current".to_string(), Value::Int(d.current)),
                ])
            })
            .collect(),
    )
}

/// Renders the per-crate rule-count table for `$GITHUB_STEP_SUMMARY`.
pub fn markdown_summary(outcome: &LintOutcome, ratchet: Option<&RatchetStatus>) -> String {
    let rule_names: Vec<&str> = ALL_RULES.iter().map(|r| r.id.name()).collect();
    let mut md = String::from("## xtask lint — determinism & panic-discipline audit\n\n");
    md.push_str("| crate |");
    for r in &rule_names {
        md.push_str(&format!(" {r} |"));
    }
    md.push_str(" total |\n|---|");
    for _ in &rule_names {
        md.push_str("---:|");
    }
    md.push_str("---:|\n");
    for (krate, per_rule) in &outcome.counts {
        let total: i64 = per_rule.values().sum();
        md.push_str(&format!("| `{krate}` |"));
        for r in &rule_names {
            md.push_str(&format!(" {} |", per_rule.get(*r).copied().unwrap_or(0)));
        }
        md.push_str(&format!(" {total} |\n"));
    }
    md.push_str(&format!(
        "\n{} active violation(s), {} allowlisted.\n",
        outcome.active_total(),
        outcome.allowlisted_total()
    ));
    if let Some(status) = ratchet {
        if status.regressions.is_empty() && status.stale.is_empty() {
            md.push_str(&format!("\nRatchet `{}`: **ok** — counts match exactly.\n", status.path));
        } else {
            md.push_str(&format!("\nRatchet `{}`: **FAILED**\n\n", status.path));
            for d in &status.regressions {
                md.push_str(&format!(
                    "- regression: `{}`/{} rose {} → {}\n",
                    d.krate, d.rule, d.recorded, d.current
                ));
            }
            for d in &status.stale {
                md.push_str(&format!(
                    "- stale: `{}`/{} fell {} → {} (re-run with --write-ratchet)\n",
                    d.krate, d.rule, d.recorded, d.current
                ));
            }
        }
    }
    md
}

/// Ensures the markdown table covers every rule id (compile-time reminder
/// to keep `ALL_RULES` in sync when adding rules).
pub fn all_rule_ids() -> Vec<RuleId> {
    ALL_RULES.iter().map(|r| r.id).collect()
}
