//! Fixture-driven scanner tests: zero false positives on tokens hidden in
//! comments/strings, exact line numbers on true positives (driven by
//! `//~ RULE` markers inside the fixtures), and test-region exemptions.

// Test assertions on known-good fixtures; aborting on a broken fixture is
// the point.
#![allow(clippy::unwrap_used)]

use xtask::rules::{scan_masked, RuleId, Violation};
use xtask::scanner::mask;

const HIDDEN: &str = include_str!("fixtures/hidden_in_text.rs");
const MARKED: &str = include_str!("fixtures/true_positives.rs");
const REGIONS: &str = include_str!("fixtures/test_regions.rs");

fn scan(src: &str, generation_path: bool, panic_scope: bool) -> Vec<Violation> {
    let masked = mask(src);
    scan_masked(&masked, src, "fixture", "tests/fixtures/x.rs", generation_path, panic_scope)
}

/// Collects `(line, rule)` expectations from `//~ RULE [RULE …]` markers.
fn expected_markers(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split_whitespace() {
                out.push((idx + 1, rule.to_string()));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn hidden_tokens_produce_zero_hits() {
    let hits = scan(HIDDEN, true, true);
    let shown: Vec<_> = hits.iter().map(|v| (v.line, v.rule.name(), v.excerpt.clone())).collect();
    assert!(hits.is_empty(), "false positives: {shown:?}");
}

#[test]
fn marked_lines_hit_at_exact_lines() {
    let mut got: Vec<(usize, String)> =
        scan(MARKED, true, true).iter().map(|v| (v.line, v.rule.name().to_string())).collect();
    got.sort();
    assert_eq!(got, expected_markers(MARKED));
}

#[test]
fn scopes_gate_rule_families() {
    // D-rules only fire in generation-path crates, P-rules only in
    // panic-scope crates.
    assert!(scan(MARKED, false, true).iter().all(|v| v.rule.name().starts_with('P')));
    assert!(scan(MARKED, true, false).iter().all(|v| v.rule.name().starts_with('D')));
    assert!(scan(MARKED, false, false).is_empty());
}

#[test]
fn panic_rule_exempts_test_regions() {
    let hits = scan(REGIONS, true, true);
    let lib_line = REGIONS.lines().position(|l| l.contains("LIBRARY_PANIC_MARKER")).unwrap() + 1;
    let p001: Vec<usize> = hits.iter().filter(|v| v.rule == RuleId::P001).map(|v| v.line).collect();
    assert_eq!(p001, vec![lib_line], "only the library panic may trip P001");
    let p002: Vec<bool> =
        hits.iter().filter(|v| v.rule == RuleId::P002).map(|v| v.in_test).collect();
    assert_eq!(p002, vec![true], "the test-module unwrap is reported and flagged in_test");
}

#[test]
fn violations_carry_source_excerpts() {
    let hits = scan(MARKED, true, true);
    let unwrap_hit =
        hits.iter().find(|v| v.rule == RuleId::P002 && v.excerpt.contains("o.unwrap()")).unwrap();
    assert!(unwrap_hit.col > 1);
    assert_eq!(unwrap_hit.matched, ".unwrap()");
}
