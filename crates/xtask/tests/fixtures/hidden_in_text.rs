//! Fixture: the scanner must report ZERO hits for this file — every
//! dangerous-looking token sits inside a comment, a string literal, a raw
//! string, a byte string, a char literal, or a longer identifier.
//!
//! This file is fixture *text* loaded with `include_str!`; it is never
//! compiled, so it only needs to be lexically plausible Rust.

// panic!("in a line comment") plus .unwrap() and std::collections::HashMap
/* block comment: thread_rng() /* nested: unreachable!() */ still hidden */
/// doc comment: std::collections::HashSet and Instant::now() and todo!()

pub fn hidden() -> usize {
    let s = "panic!(\"in a string\") .unwrap() HashMap";
    let e = "escaped quote \\\" then .expect(\"still a string\")";
    let r = r#"raw: thread_rng() SystemTime::now() dbg!(x)"#;
    let b = b"byte string: rand::random() env::var";
    let rb = br#"raw byte string: unreachable!() HashSet"#;
    let q = '"'; // a char holding a quote must not open a string
    let lifetime: &'static str = "env!(\"HIDDEN\") option_env!(\"ALSO\")";
    s.len() + e.len() + r.len() + b.len() + rb.len() + lifetime.len() + q.len_utf8()
}

/// Identifier boundaries: none of these contain a match.
pub struct MyHashMapLike;

pub fn boundaries(o: Option<u32>) -> u32 {
    let a = o.unwrap_or(7); // unwrap_or is not .unwrap()
    let b = unwrap(); // free call without a receiver dot
    let c = parser_expect(&a); // helper named like the method
    a + b + c
}

fn unwrap() -> u32 {
    7
}

fn parser_expect(x: &u32) -> u32 {
    // `.expect(` with a non-literal argument models sqlexec's own
    // `self.expect(&Token::RParen)` parser method: not a P002 hit.
    let p = Parser;
    p.expect(x)
}

struct Parser;

impl Parser {
    fn expect(&self, x: &u32) -> u32 {
        *x
    }
}
