//! Fixture: every tilde-marker (two slashes, a tilde, then rule names)
//! denotes a hit the scanner must report at exactly that line (one name
//! per expected hit, so a line with two
//! `HashMap` tokens carries two markers). The markers live in comments,
//! which the scanner masks out, so they can never produce hits themselves.
//!
//! Fixture text only — never compiled.

use std::collections::HashMap; //~ D001
use std::collections::HashSet; //~ D001

fn containers() {
    let m: HashMap<u32, u32> = HashMap::new(); //~ D001 D001
    let s: HashSet<u32> = HashSet::new(); //~ D001 D001
    let _ = (m, s);
}

fn entropy_and_clocks() {
    let mut rng = rand::thread_rng(); //~ D002
    let x: u8 = rand::random(); //~ D002
    let t = std::time::SystemTime::now(); //~ D002
    let i = std::time::Instant::now(); //~ D002
    let _ = (rng, x, t, i);
}

fn environment() {
    let v = std::env::var("HOME"); //~ D003
    let c = env!("CARGO"); //~ D003
    let o = option_env!("OPT"); //~ D003
    let _ = (v, c, o);
}

fn panics(n: u32) -> u32 {
    match n {
        0 => panic!("zero"), //~ P001
        1 => unreachable!(), //~ P001
        2 => todo!(), //~ P001
        _ => {
            dbg!(n); //~ P001
            n
        }
    }
}

fn unwraps(o: Option<u32>, r: Result<u32, String>, r2: Result<u32, String>) -> u32 {
    let a = o.unwrap(); //~ P002
    let b = r.expect("fixture message"); //~ P002
    let c = Some(1).unwrap(); //~ P002
    let d = r2.expect(r#"raw-string message"#); //~ P002
    a + b + c + d
}
