//! Fixture: P001 is exempt inside `#[cfg(test)]` / `#[test]` regions (panic
//! in a test is idiomatic), while P002 still reports there with the
//! `in_test` flag set.
//!
//! Fixture text only — never compiled.

pub fn library_code(n: u32) -> u32 {
    if n > 100 {
        panic!("LIBRARY_PANIC_MARKER");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exercises() {
        if library_code(1) == 0 {
            panic!("panicking inside a test module is exempt from P001");
        }
        let v = Some(1).unwrap(); // P002, flagged in_test
        assert_eq!(v, 1);
    }
}

#[test]
fn top_level_test_fn() {
    unreachable!("a #[test] fn outside a cfg(test) module is also exempt");
}
