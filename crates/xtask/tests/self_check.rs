//! Workspace self-check: a live lint run must agree with the committed
//! ratchet and allowlist. This is the same comparison the CI `lint-audit`
//! job performs, so `cargo test` catches a stale `ci/lint_ratchet.json`
//! before CI does.

// Aborting the self-check on unreadable committed artifacts is the point.
#![allow(clippy::unwrap_used)]

use std::path::Path;

#[test]
fn workspace_lint_matches_committed_ratchet() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = xtask::run_with_allowlist(&root, &root.join("ci/lint_allowlist.toml")).unwrap();
    let ratchet = xtask::ratchet::load(&root.join("ci/lint_ratchet.json")).unwrap();
    let (regressions, stale) = xtask::ratchet::compare(&outcome.counts, &ratchet);
    assert!(
        regressions.is_empty(),
        "new lint violations vs ci/lint_ratchet.json (fix them or add a justified \
         ci/lint_allowlist.toml entry): {regressions:?}"
    );
    assert!(
        stale.is_empty(),
        "ci/lint_ratchet.json is stale — sites were fixed; regenerate with \
         `cargo run -p xtask -- lint --write-ratchet ci/lint_ratchet.json`: {stale:?}"
    );
    assert!(
        outcome.unused_allow.is_empty(),
        "allowlist entries that no longer suppress anything: {:?}",
        outcome.unused_allow
    );
}

#[test]
fn deny_rules_hold_at_zero_outside_the_allowlist() {
    // The two allowlisted wall-clock reads are the only sanctioned D-rule
    // sites in the whole workspace; everything else must be clean.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = xtask::run_with_allowlist(&root, &root.join("ci/lint_allowlist.toml")).unwrap();
    for (krate, rules) in &outcome.counts {
        for rule in ["D001", "D002", "D003"] {
            assert_eq!(
                rules.get(rule).copied().unwrap_or(0),
                0,
                "determinism rule {rule} must stay at zero in `{krate}`"
            );
        }
    }
}

#[test]
fn builtin_templates_match_committed_health_file() {
    // Same comparison as the CI `audit-templates --check` step: the builtin
    // bank's static diagnostics must agree with ci/template_health.json.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome =
        xtask::audit::audit(&[("builtin".to_string(), xtask::audit::builtin_templates())]);
    let health = xtask::ratchet::load(&root.join("ci/template_health.json")).unwrap();
    let (regressions, stale) = xtask::ratchet::compare(&outcome.counts, &health);
    assert!(
        regressions.is_empty(),
        "builtin templates picked up new diagnostics vs ci/template_health.json: {regressions:?}"
    );
    assert!(
        stale.is_empty(),
        "ci/template_health.json is stale — regenerate with \
         `cargo run -p xtask -- audit-templates --write`: {stale:?}"
    );
}
