//! Workspace self-check: a live lint run must agree with the committed
//! ratchet and allowlist. This is the same comparison the CI `lint-audit`
//! job performs, so `cargo test` catches a stale `ci/lint_ratchet.json`
//! before CI does.

// Aborting the self-check on unreadable committed artifacts is the point.
#![allow(clippy::unwrap_used)]

use std::path::Path;

#[test]
fn workspace_lint_matches_committed_ratchet() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = xtask::run_with_allowlist(&root, &root.join("ci/lint_allowlist.toml")).unwrap();
    let ratchet = xtask::ratchet::load(&root.join("ci/lint_ratchet.json")).unwrap();
    let (regressions, stale) = xtask::ratchet::compare(&outcome.counts, &ratchet);
    assert!(
        regressions.is_empty(),
        "new lint violations vs ci/lint_ratchet.json (fix them or add a justified \
         ci/lint_allowlist.toml entry): {regressions:?}"
    );
    assert!(
        stale.is_empty(),
        "ci/lint_ratchet.json is stale — sites were fixed; regenerate with \
         `cargo run -p xtask -- lint --write-ratchet ci/lint_ratchet.json`: {stale:?}"
    );
    assert!(
        outcome.unused_allow.is_empty(),
        "allowlist entries that no longer suppress anything: {:?}",
        outcome.unused_allow
    );
}

#[test]
fn deny_rules_hold_at_zero_outside_the_allowlist() {
    // The two allowlisted wall-clock reads are the only sanctioned D-rule
    // sites in the whole workspace; everything else must be clean.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = xtask::run_with_allowlist(&root, &root.join("ci/lint_allowlist.toml")).unwrap();
    for (krate, rules) in &outcome.counts {
        for rule in ["D001", "D002", "D003"] {
            assert_eq!(
                rules.get(rule).copied().unwrap_or(0),
                0,
                "determinism rule {rule} must stay at zero in `{krate}`"
            );
        }
    }
}

#[test]
fn builtin_templates_match_committed_health_file() {
    // Same comparison as the CI `audit-templates --check` step: the builtin
    // bank's static diagnostics must agree with ci/template_health.json.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome =
        xtask::audit::audit(&[("builtin".to_string(), xtask::audit::builtin_templates())]);
    let mut health = xtask::ratchet::load(&root.join("ci/template_health.json")).unwrap();
    // The `equivalence` group is audit-equivalence's; this comparison
    // covers only the typecheck diagnostics.
    health.counts.remove(xtask::equivalence::GROUP);
    let (regressions, stale) = xtask::ratchet::compare(&outcome.counts, &health);
    assert!(
        regressions.is_empty(),
        "builtin templates picked up new diagnostics vs ci/template_health.json: {regressions:?}"
    );
    assert!(
        stale.is_empty(),
        "ci/template_health.json is stale — regenerate with \
         `cargo run -p xtask -- audit-templates --write`: {stale:?}"
    );
}

#[test]
fn committed_mined_corpus_is_audit_clean_and_matches_the_floors() {
    // Same comparison as the CI `mine-and-audit` job: the committed mined
    // corpus must parse, audit with zero diagnostics, and cover the
    // grow-only per-kind floors recorded in ci/template_health.json.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("ci/mined_templates.txt")).unwrap();
    let entries = xtask::audit::parse_mined(&text).unwrap();
    assert!(entries.len() >= 1000, "mined corpus shrank below 1000 templates: {}", entries.len());
    let outcome = xtask::audit::audit(&[
        ("builtin".to_string(), xtask::audit::builtin_templates()),
        ("ci/mined_templates.txt".to_string(), entries),
    ]);
    assert_eq!(
        outcome.diagnostics_total(),
        0,
        "committed mined corpus must audit clean: {:?}",
        outcome.counts
    );
    let health = xtask::ratchet::load(&root.join("ci/template_health.json")).unwrap();
    let mined = xtask::audit::mined_counts(&outcome);
    let (regressions, stale) = xtask::ratchet::compare_floors(&mined, &health);
    assert!(
        regressions.is_empty(),
        "mined corpus fell below its grow-only floors — the corpus may only grow: {regressions:?}"
    );
    assert!(
        stale.is_empty(),
        "ci/template_health.json floors are stale — lock in the gain with \
         `cargo run -p xtask -- audit-templates --mined ci/mined_templates.txt --write`: {stale:?}"
    );
}
