//! # logicforms — the Logic2Text logical-form DSL for UCTR
//!
//! Parser, evaluator and template machinery for the logical-form programs
//! UCTR uses to synthesize fact-verification claims (paper §II-C, §IV-B):
//! filter / superlative / ordinal / aggregation / majority / unique /
//! comparative operators executed against a [`tabular::Table`], with
//! truth-targeted template instantiation so sampled claims come with gold
//! Supported/Refuted labels.
//!
//! ```
//! use tabular::Table;
//! use logicforms::{parse, evaluate_truth};
//!
//! let t = Table::from_strings("teams", &[
//!     vec!["team", "points"],
//!     vec!["Reds", "77"],
//!     vec!["Blues", "64"],
//! ]).unwrap();
//! let claim = parse("eq { hop { argmax { all_rows ; points } ; team } ; Reds }").unwrap();
//! assert!(evaluate_truth(&claim, &t).unwrap());
//! ```

pub mod absint;
pub mod analysis;
pub mod ast;
pub mod canon;
pub mod exec;
pub mod parser;
pub mod template;

pub use ast::{LfExpr, LfOp, LogicType};
pub use canon::{canonical_expr, canonical_form};
pub use exec::{
    evaluate, evaluate_in, evaluate_truth, evaluate_truth_in, evaluate_truth_with, evaluate_with,
    LfError, LfOutcome, LfValue,
};
pub use parser::{parse, LfParseError};
pub use template::{abstract_form, InstantiatedClaim, LfInstantiateError, LfScratch, LfTemplate};
