//! Logical-form evaluator.
//!
//! Evaluates an [`LfExpr`] against a table. Fact-verification programs have
//! boolean roots; intermediate nodes evaluate to row sets ("views"), single
//! rows, or scalars. Like the SQL executor, evaluation records the
//! highlighted cells that took part in the reasoning, which the
//! Table-To-Text operator consumes.

use crate::ast::{LfExpr, LfOp};
use std::fmt;
use tabular::{kernels, nearly_equal, ExecContext, KernelScratch, Table, Value};

/// Runtime value of a logical-form node.
#[derive(Debug, Clone, PartialEq)]
pub enum LfValue {
    /// A subset of row indexes.
    View(Vec<usize>),
    /// A single row index.
    Row(usize),
    /// A scalar.
    Scalar(Value),
    /// A truth value.
    Bool(bool),
}

impl LfValue {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            LfValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            LfValue::Scalar(v) => Some(v),
            _ => None,
        }
    }
}

/// Evaluation error.
#[derive(Debug, Clone, PartialEq)]
pub enum LfError {
    UnknownColumn(String),
    /// An argument had the wrong runtime type for its operator.
    TypeMismatch {
        op: LfOp,
        expected: &'static str,
    },
    /// A row/ordinal lookup found nothing (empty view, n out of range).
    Empty {
        op: LfOp,
    },
    /// The expression still contains template holes.
    Uninstantiated,
    /// A numeric operation met a non-numeric value.
    NonNumeric {
        op: LfOp,
    },
    /// An evaluator invariant was violated (never expected on any input; a
    /// `Discard`-able stand-in for what would otherwise be a panic).
    Internal {
        op: LfOp,
    },
}

impl fmt::Display for LfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            LfError::TypeMismatch { op, expected } => {
                write!(f, "`{op}` expected {expected}")
            }
            LfError::Empty { op } => write!(f, "`{op}` on empty input"),
            LfError::Uninstantiated => write!(f, "logical form still contains template holes"),
            LfError::NonNumeric { op } => write!(f, "`{op}` needs numeric values"),
            LfError::Internal { op } => write!(f, "`{op}` evaluator invariant violated"),
        }
    }
}

impl std::error::Error for LfError {}

/// Evaluation outcome with the cells used.
#[derive(Debug, Clone, PartialEq)]
pub struct LfOutcome {
    pub value: LfValue,
    pub highlighted: Vec<(usize, usize)>,
}

/// Evaluates a fully instantiated logical form on a table.
pub fn evaluate(expr: &LfExpr, table: &Table) -> Result<LfOutcome, LfError> {
    evaluate_impl(expr, table, None, &mut KernelScratch::default())
}

/// [`evaluate`] using a prebuilt [`ExecContext`] so numeric aggregations
/// read cached cell parses instead of re-running [`Value::as_number`] per
/// cell. Result-identical to [`evaluate`].
pub fn evaluate_in(expr: &LfExpr, table: &Table, ctx: &ExecContext) -> Result<LfOutcome, LfError> {
    evaluate_impl(expr, table, Some(ctx), &mut KernelScratch::default())
}

/// [`evaluate_in`] reusing caller-owned kernel buffers (views, numeric
/// gathers, highlight accumulation), so the hot generation loop evaluates
/// without per-expression allocations. Result-identical to [`evaluate`].
pub fn evaluate_with(
    expr: &LfExpr,
    table: &Table,
    ctx: &ExecContext,
    kern: &mut KernelScratch,
) -> Result<LfOutcome, LfError> {
    evaluate_impl(expr, table, Some(ctx), kern)
}

pub(crate) fn evaluate_impl(
    expr: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    kern: &mut KernelScratch,
) -> Result<LfOutcome, LfError> {
    if expr.has_holes() {
        return Err(LfError::Uninstantiated);
    }
    let mut hl = std::mem::take(&mut kern.hl);
    hl.clear();
    let value = match eval(expr, table, ctx, kern, &mut hl) {
        Ok(v) => v,
        Err(e) => {
            kern.hl = hl;
            return Err(e);
        }
    };
    // Same sorted distinct set a hash-set collect + sort produced.
    hl.sort_unstable();
    hl.dedup();
    let highlighted = hl.clone();
    kern.hl = hl;
    Ok(LfOutcome { value, highlighted })
}

/// Evaluates a boolean-rooted program to its truth value.
pub fn evaluate_truth(expr: &LfExpr, table: &Table) -> Result<bool, LfError> {
    evaluate_truth_impl(expr, table, None, &mut KernelScratch::default())
}

/// [`evaluate_truth`] over a prebuilt [`ExecContext`].
pub fn evaluate_truth_in(expr: &LfExpr, table: &Table, ctx: &ExecContext) -> Result<bool, LfError> {
    evaluate_truth_impl(expr, table, Some(ctx), &mut KernelScratch::default())
}

/// [`evaluate_truth_in`] reusing caller-owned kernel buffers. The truth
/// path never materializes the highlight set, so the 16-retry
/// truth-targeting loop of template instantiation runs allocation-free.
pub fn evaluate_truth_with(
    expr: &LfExpr,
    table: &Table,
    ctx: &ExecContext,
    kern: &mut KernelScratch,
) -> Result<bool, LfError> {
    evaluate_truth_impl(expr, table, Some(ctx), kern)
}

pub(crate) fn evaluate_truth_impl(
    expr: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    kern: &mut KernelScratch,
) -> Result<bool, LfError> {
    if expr.has_holes() {
        return Err(LfError::Uninstantiated);
    }
    let mut hl = std::mem::take(&mut kern.hl);
    hl.clear();
    let res = eval(expr, table, ctx, kern, &mut hl);
    kern.hl = hl;
    truth_of(res?)
}

fn truth_of(value: LfValue) -> Result<bool, LfError> {
    value
        .as_bool()
        .ok_or(LfError::TypeMismatch { op: LfOp::Eq, expected: "a boolean-rooted program" })
}

fn column_index(table: &Table, e: &LfExpr) -> Result<usize, LfError> {
    match e {
        LfExpr::Column(name) | LfExpr::Const(name) => {
            table.column_index(name).ok_or_else(|| LfError::UnknownColumn(name.clone()))
        }
        _ => Err(LfError::TypeMismatch { op: LfOp::Hop, expected: "a column name" }),
    }
}

/// The cached numeric reading of a cell: `ctx.number_at` mirrors
/// `Value::as_number` cell-for-cell, so either source is exact.
#[inline]
fn cell_number(ctx: Option<&ExecContext>, cell: &Value, ri: usize, col: usize) -> Option<f64> {
    match ctx {
        Some(ctx) => ctx.number_at(ri, col),
        None => cell.as_number(),
    }
}

fn eval(
    e: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    kern: &mut KernelScratch,
    hl: &mut Vec<(usize, usize)>,
) -> Result<LfValue, LfError> {
    use LfOp::*;
    match e {
        LfExpr::AllRows => {
            let mut rows = kern.take_rows();
            rows.extend(0..table.n_rows());
            Ok(LfValue::View(rows))
        }
        LfExpr::Column(name) => Ok(LfValue::Scalar(Value::text(name.clone()))),
        LfExpr::Const(text) => Ok(LfValue::Scalar(Value::parse(text))),
        LfExpr::ColumnHole(_) | LfExpr::ValueHole(_) => Err(LfError::Uninstantiated),
        LfExpr::Apply(op, args) => match op {
            FilterEq | FilterNotEq | FilterGreater | FilterLess | FilterGreaterEq
            | FilterLessEq => {
                let mut view = eval_view(&args[0], table, ctx, kern, hl)?;
                let col = column_index(table, &args[1])?;
                let rhs = eval_scalar(&args[2], table, ctx, kern, hl)?;
                // The comparison value is fixed across the whole view; parse
                // its numeric reading once instead of per row.
                let rhs_num = rhs.as_number();
                // In-place retain visits rows in view order, so highlight
                // pushes and the surviving row order match the historical
                // keep-vector loop exactly.
                view.retain(|&ri| {
                    let Some(cell) = table.cell(ri, col) else { return false };
                    if cell.is_null() {
                        return false;
                    }
                    hl.push((ri, col));
                    match op {
                        FilterEq => cell.loosely_equals(&rhs),
                        FilterNotEq => !cell.loosely_equals(&rhs),
                        FilterGreater => {
                            num_cmp(cell_number(ctx, cell, ri, col), rhs_num, |a, b| a > b)
                        }
                        FilterLess => {
                            num_cmp(cell_number(ctx, cell, ri, col), rhs_num, |a, b| a < b)
                        }
                        FilterGreaterEq => {
                            num_cmp(cell_number(ctx, cell, ri, col), rhs_num, |a, b| a >= b)
                        }
                        FilterLessEq => {
                            num_cmp(cell_number(ctx, cell, ri, col), rhs_num, |a, b| a <= b)
                        }
                        _ => false,
                    }
                });
                Ok(LfValue::View(view))
            }
            FilterAll => {
                let mut view = eval_view(&args[0], table, ctx, kern, hl)?;
                let col = column_index(table, &args[1])?;
                view.retain(|&ri| {
                    let non_null = table.cell(ri, col).is_some_and(|v| !v.is_null());
                    if non_null {
                        hl.push((ri, col));
                    }
                    non_null
                });
                Ok(LfValue::View(view))
            }
            Argmax | Argmin | NthArgmax | NthArgmin => {
                let view = eval_view(&args[0], table, ctx, kern, hl)?;
                let col = column_index(table, &args[1])?;
                let descending = matches!(op, Argmax | NthArgmax);
                if let Some(ctx) = ctx.filter(|c| c.all_number(col)) {
                    // Kernel path: every non-null cell is a number, so the
                    // `Value`-keyed stable sort is the numeric stable sort
                    // and null-skipping equals number-skipping.
                    let mut keys = std::mem::take(&mut kern.keys);
                    keys.clear();
                    for &ri in &view {
                        if let Some(n) = ctx.number_at(ri, col) {
                            hl.push((ri, col));
                            keys.push((n, ri));
                        }
                    }
                    kern.put_rows(view);
                    if keys.is_empty() {
                        kern.keys = keys;
                        return Err(LfError::Empty { op: *op });
                    }
                    let row = match op {
                        Argmax => kernels::argmax_pairs(keys.iter().map(|&(n, ri)| (ri, n))),
                        Argmin => kernels::argmin_pairs(keys.iter().map(|&(n, ri)| (ri, n))),
                        _ => {
                            let n = match eval_ordinal(&args[2], table, Some(ctx), kern, hl) {
                                Ok(n) => n,
                                Err(e) => {
                                    kern.keys = keys;
                                    return Err(e);
                                }
                            };
                            let mut sorted = std::mem::take(&mut kern.nums);
                            // Reuse the f64 buffer as sort input? No — keys
                            // carry (value, row); sort keys directly.
                            sorted.clear();
                            kern.nums = sorted;
                            kernels::nth_arg_pairs(
                                keys.iter().map(|&(n, ri)| (ri, n)),
                                n,
                                descending,
                                &mut kern.keys,
                            )
                        }
                    };
                    if matches!(op, Argmax | Argmin) {
                        kern.keys = keys;
                    }
                    return row.map(LfValue::Row).ok_or(LfError::Empty { op: *op });
                }
                // Per-cell fallback: mixed or non-numeric column. Sort keys
                // borrow the cells instead of cloning them.
                let mut keyed: Vec<(&Value, usize)> = Vec::with_capacity(view.len());
                for &ri in &view {
                    if let Some(v) = table.cell(ri, col) {
                        if !v.is_null() {
                            hl.push((ri, col));
                            keyed.push((v, ri));
                        }
                    }
                }
                kern.put_rows(view);
                if keyed.is_empty() {
                    return Err(LfError::Empty { op: *op });
                }
                keyed.sort_by(|a, b| if descending { b.0.cmp(a.0) } else { a.0.cmp(b.0) });
                let n = match op {
                    Argmax | Argmin => 1usize,
                    _ => eval_ordinal(&args[2], table, ctx, kern, hl)?,
                };
                keyed
                    .get(n.checked_sub(1).ok_or(LfError::Empty { op: *op })?)
                    .map(|(_, ri)| LfValue::Row(*ri))
                    .ok_or(LfError::Empty { op: *op })
            }
            Count => {
                let view = eval_view(&args[0], table, ctx, kern, hl)?;
                let len = view.len();
                kern.put_rows(view);
                Ok(LfValue::Scalar(Value::Number(len as f64)))
            }
            Only => {
                let view = eval_view(&args[0], table, ctx, kern, hl)?;
                let len = view.len();
                kern.put_rows(view);
                Ok(LfValue::Bool(len == 1))
            }
            Max | Min | Sum | Avg | NthMax | NthMin => {
                let view = eval_view(&args[0], table, ctx, kern, hl)?;
                let col = column_index(table, &args[1])?;
                let mut nums = std::mem::take(&mut kern.nums);
                nums.clear();
                for &ri in &view {
                    let n = match ctx {
                        Some(ctx) => ctx.number_at(ri, col),
                        None => table.cell(ri, col).and_then(Value::as_number),
                    };
                    if let Some(n) = n {
                        hl.push((ri, col));
                        nums.push(n);
                    }
                }
                kern.put_rows(view);
                if nums.is_empty() {
                    kern.nums = nums;
                    return Err(LfError::Empty { op: *op });
                }
                let v = match op {
                    Max => Ok(kernels::fold_max(&nums)),
                    Min => Ok(kernels::fold_min(&nums)),
                    Sum => Ok(kernels::sum(&nums)),
                    Avg => Ok(kernels::sum(&nums) / nums.len() as f64),
                    NthMax | NthMin => eval_ordinal(&args[2], table, ctx, kern, hl).and_then(|n| {
                        kernels::sort_total(&mut nums);
                        if matches!(op, NthMax) {
                            nums.reverse();
                        }
                        n.checked_sub(1)
                            .and_then(|i| nums.get(i).copied())
                            .ok_or(LfError::Empty { op: *op })
                    }),
                    _ => Err(LfError::Internal { op: *op }),
                };
                kern.nums = nums;
                Ok(LfValue::Scalar(Value::number(v?)))
            }
            Hop => {
                let row = match eval(&args[0], table, ctx, kern, hl)? {
                    LfValue::Row(r) => r,
                    LfValue::View(v) => {
                        let first = v.first().copied();
                        kern.put_rows(v);
                        first.ok_or(LfError::Empty { op: *op })?
                    }
                    _ => return Err(LfError::TypeMismatch { op: *op, expected: "a row" }),
                };
                let col = column_index(table, &args[1])?;
                hl.push((row, col));
                Ok(LfValue::Scalar(table.cell(row, col).cloned().unwrap_or(Value::Null)))
            }
            Diff => {
                let a = eval_scalar(&args[0], table, ctx, kern, hl)?;
                let b = eval_scalar(&args[1], table, ctx, kern, hl)?;
                match (a.as_number(), b.as_number()) {
                    (Some(x), Some(y)) => Ok(LfValue::Scalar(Value::number(x - y))),
                    _ => Err(LfError::NonNumeric { op: *op }),
                }
            }
            Eq | NotEq | RoundEq | Greater | Less => {
                let a = eval_scalar(&args[0], table, ctx, kern, hl)?;
                let b = eval_scalar(&args[1], table, ctx, kern, hl)?;
                let res = match op {
                    Eq => a.loosely_equals(&b),
                    NotEq => !a.loosely_equals(&b),
                    RoundEq => match (a.as_number(), b.as_number()) {
                        (Some(x), Some(y)) => {
                            let scale = x.abs().max(y.abs()).max(1.0);
                            (x - y).abs() <= 0.01 * scale
                        }
                        _ => a.loosely_equals(&b),
                    },
                    Greater => num_cmp(a.as_number(), b.as_number(), |x, y| x > y),
                    Less => num_cmp(a.as_number(), b.as_number(), |x, y| x < y),
                    _ => return Err(LfError::Internal { op: *op }),
                };
                Ok(LfValue::Bool(res))
            }
            And => {
                let a = eval(&args[0], table, ctx, kern, hl)?
                    .as_bool()
                    .ok_or(LfError::TypeMismatch { op: *op, expected: "booleans" })?;
                let b = eval(&args[1], table, ctx, kern, hl)?
                    .as_bool()
                    .ok_or(LfError::TypeMismatch { op: *op, expected: "booleans" })?;
                Ok(LfValue::Bool(a && b))
            }
            AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq | MostEq
            | MostNotEq | MostGreater | MostLess | MostGreaterEq | MostLessEq => {
                let view = eval_view(&args[0], table, ctx, kern, hl)?;
                let col = column_index(table, &args[1])?;
                let rhs = eval_scalar(&args[2], table, ctx, kern, hl)?;
                if view.is_empty() {
                    kern.put_rows(view);
                    return Err(LfError::Empty { op: *op });
                }
                let rhs_num = rhs.as_number();
                let mut matches = 0usize;
                let total = view.len();
                for &ri in &view {
                    let cell = table.cell(ri, col).unwrap_or(&Value::Null);
                    hl.push((ri, col));
                    let m = match op {
                        AllEq | MostEq => cell.loosely_equals(&rhs),
                        AllNotEq | MostNotEq => !cell.is_null() && !cell.loosely_equals(&rhs),
                        AllGreater | MostGreater => {
                            num_cmp(cell_number(ctx, cell, ri, col), rhs_num, |a, b| a > b)
                        }
                        AllLess | MostLess => {
                            num_cmp(cell_number(ctx, cell, ri, col), rhs_num, |a, b| a < b)
                        }
                        AllGreaterEq | MostGreaterEq => {
                            num_cmp(cell_number(ctx, cell, ri, col), rhs_num, |a, b| a >= b)
                        }
                        AllLessEq | MostLessEq => {
                            num_cmp(cell_number(ctx, cell, ri, col), rhs_num, |a, b| a <= b)
                        }
                        _ => return Err(LfError::Internal { op: *op }),
                    };
                    if m {
                        matches += 1;
                    }
                }
                kern.put_rows(view);
                let is_all = matches!(
                    op,
                    AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq
                );
                Ok(LfValue::Bool(if is_all { matches == total } else { 2 * matches > total }))
            }
        },
    }
}

fn eval_view(
    e: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    kern: &mut KernelScratch,
    hl: &mut Vec<(usize, usize)>,
) -> Result<Vec<usize>, LfError> {
    match eval(e, table, ctx, kern, hl)? {
        LfValue::View(v) => Ok(v),
        LfValue::Row(r) => {
            let mut rows = kern.take_rows();
            rows.push(r);
            Ok(rows)
        }
        _ => Err(LfError::TypeMismatch { op: LfOp::Count, expected: "a view" }),
    }
}

fn eval_scalar(
    e: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    kern: &mut KernelScratch,
    hl: &mut Vec<(usize, usize)>,
) -> Result<Value, LfError> {
    match eval(e, table, ctx, kern, hl)? {
        LfValue::Scalar(v) => Ok(v),
        LfValue::Bool(b) => Ok(Value::Bool(b)),
        _ => Err(LfError::TypeMismatch { op: LfOp::Eq, expected: "a scalar" }),
    }
}

fn eval_ordinal(
    e: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    kern: &mut KernelScratch,
    hl: &mut Vec<(usize, usize)>,
) -> Result<usize, LfError> {
    let v = eval_scalar(e, table, ctx, kern, hl)?;
    v.as_number()
        .filter(|n| *n >= 1.0 && n.fract() == 0.0)
        .map(|n| n as usize)
        .ok_or(LfError::TypeMismatch { op: LfOp::NthMax, expected: "a positive integer ordinal" })
}

/// The executors' near-equality comparison rule over pre-extracted numeric
/// readings: near-equal pairs collapse to "equal" before the strict
/// comparison runs, and non-numeric operands never match.
fn num_cmp(a: Option<f64>, b: Option<f64>, f: impl Fn(f64, f64) -> bool) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => {
            if nearly_equal(x, y) {
                // treat near-equal as equal for strict comparisons
                f(0.0, 0.0)
            } else {
                f(x, y)
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn table() -> Table {
        Table::from_strings(
            "Printers",
            &[
                vec!["model", "material", "speed", "price"],
                vec!["P100", "PLA", "60", "199"],
                vec!["P200", "ABS", "80", "299"],
                vec!["P300", "PLA", "95", "399"],
                vec!["P400", "PETG", "95", "349"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    fn truth(form: &str) -> bool {
        let expr = parse(form).unwrap_or_else(|e| panic!("test form: {e}"));
        evaluate_truth(&expr, &table()).unwrap_or_else(|e| panic!("test eval: {e}"))
    }

    #[test]
    fn count_claims() {
        assert!(truth("eq { count { filter_eq { all_rows ; material ; PLA } } ; 2 }"));
        assert!(!truth("eq { count { filter_eq { all_rows ; material ; PLA } } ; 3 }"));
    }

    #[test]
    fn superlative_claims() {
        assert!(truth("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }"));
        assert!(truth("eq { hop { argmin { all_rows ; price } ; model } ; P100 }"));
        assert!(!truth("eq { hop { argmax { all_rows ; price } ; model } ; P100 }"));
    }

    #[test]
    fn argmax_tie_breaks_to_first() {
        // speed 95 appears twice (P300, P400); argmax picks the first.
        assert!(truth("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }"));
    }

    #[test]
    fn ordinal_claims() {
        assert!(truth("eq { hop { nth_argmax { all_rows ; price ; 2 } ; model } ; P400 }"));
        assert!(truth("eq { nth_max { all_rows ; price ; 3 } ; 299 }"));
        assert!(truth("eq { nth_min { all_rows ; speed ; 1 } ; 60 }"));
    }

    #[test]
    fn aggregation_claims() {
        assert!(truth("round_eq { avg { all_rows ; price } ; 311.5 }"));
        assert!(truth("eq { sum { all_rows ; speed } ; 330 }"));
        assert!(truth("eq { max { all_rows ; price } ; 399 }"));
        assert!(truth("eq { min { all_rows ; speed } ; 60 }"));
    }

    #[test]
    fn majority_claims() {
        assert!(truth("most_greater { all_rows ; speed ; 70 }"));
        assert!(!truth("all_greater { all_rows ; speed ; 70 }"));
        assert!(truth("all_greater { all_rows ; price ; 100 }"));
        assert!(truth("most_eq { filter_eq { all_rows ; material ; PLA } ; material ; PLA }"));
    }

    #[test]
    fn unique_claims() {
        assert!(truth("only { filter_eq { all_rows ; material ; ABS } }"));
        assert!(!truth("only { filter_eq { all_rows ; material ; PLA } }"));
    }

    #[test]
    fn comparative_claims() {
        assert!(truth(
            "greater { hop { filter_eq { all_rows ; model ; P200 } ; price } ; hop { filter_eq { all_rows ; model ; P100 } ; price } }"
        ));
        assert!(truth(
            "eq { diff { hop { filter_eq { all_rows ; model ; P300 } ; price } ; hop { filter_eq { all_rows ; model ; P200 } ; price } } ; 100 }"
        ));
    }

    #[test]
    fn conjunction_claims() {
        assert!(truth(
            "and { eq { count { all_rows } ; 4 } ; greater { max { all_rows ; speed } ; 90 } }"
        ));
        assert!(!truth(
            "and { eq { count { all_rows } ; 4 } ; greater { max { all_rows ; speed } ; 100 } }"
        ));
    }

    #[test]
    fn filter_chains() {
        assert!(truth(
            "eq { count { filter_greater { filter_eq { all_rows ; material ; PLA } ; price ; 200 } } ; 1 }"
        ));
    }

    #[test]
    fn empty_superlative_is_error() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { hop { argmax { filter_eq { all_rows ; material ; WOOD } ; price } ; model } ; P1 }")?;
        assert!(matches!(evaluate_truth(&e, &table()), Err(LfError::Empty { .. })));
        Ok(())
    }

    #[test]
    fn unknown_column_is_error() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { max { all_rows ; bogus } ; 1 }")?;
        assert!(matches!(evaluate_truth(&e, &table()), Err(LfError::UnknownColumn(_))));
        Ok(())
    }

    #[test]
    fn template_is_uninstantiated() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { count { filter_eq { all_rows ; c1 ; val1 } } ; val2 }")?;
        assert!(matches!(evaluate_truth(&e, &table()), Err(LfError::Uninstantiated)));
        Ok(())
    }

    #[test]
    fn highlights_cover_reasoning_cells() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }")?;
        let out = evaluate(&e, &table())?;
        // speed column scanned for all rows; model of the argmax row read.
        assert!(out.highlighted.contains(&(0, 2)));
        assert!(out.highlighted.contains(&(3, 2)));
        assert!(out.highlighted.contains(&(2, 0)));
        Ok(())
    }

    #[test]
    fn non_boolean_root_rejected_by_truth() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("count { all_rows }")?;
        assert!(evaluate_truth(&e, &table()).is_err());
        // but plain evaluate returns the scalar
        let out = evaluate(&e, &table())?;
        assert_eq!(out.value, LfValue::Scalar(Value::Number(4.0)));
        Ok(())
    }

    #[test]
    fn ordinal_out_of_range_is_error() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { nth_max { all_rows ; price ; 9 } ; 1 }")?;
        assert!(matches!(evaluate_truth(&e, &table()), Err(LfError::Empty { .. })));
        Ok(())
    }
}
