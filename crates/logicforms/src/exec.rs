//! Logical-form evaluator.
//!
//! Evaluates an [`LfExpr`] against a table. Fact-verification programs have
//! boolean roots; intermediate nodes evaluate to row sets ("views"), single
//! rows, or scalars. Like the SQL executor, evaluation records the
//! highlighted cells that took part in the reasoning, which the
//! Table-To-Text operator consumes.

use crate::ast::{LfExpr, LfOp};
use rustc_hash::FxHashSet;
use std::fmt;
use tabular::{nearly_equal, ExecContext, Table, Value};

/// Runtime value of a logical-form node.
#[derive(Debug, Clone, PartialEq)]
pub enum LfValue {
    /// A subset of row indexes.
    View(Vec<usize>),
    /// A single row index.
    Row(usize),
    /// A scalar.
    Scalar(Value),
    /// A truth value.
    Bool(bool),
}

impl LfValue {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            LfValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            LfValue::Scalar(v) => Some(v),
            _ => None,
        }
    }
}

/// Evaluation error.
#[derive(Debug, Clone, PartialEq)]
pub enum LfError {
    UnknownColumn(String),
    /// An argument had the wrong runtime type for its operator.
    TypeMismatch {
        op: LfOp,
        expected: &'static str,
    },
    /// A row/ordinal lookup found nothing (empty view, n out of range).
    Empty {
        op: LfOp,
    },
    /// The expression still contains template holes.
    Uninstantiated,
    /// A numeric operation met a non-numeric value.
    NonNumeric {
        op: LfOp,
    },
    /// An evaluator invariant was violated (never expected on any input; a
    /// `Discard`-able stand-in for what would otherwise be a panic).
    Internal {
        op: LfOp,
    },
}

impl fmt::Display for LfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            LfError::TypeMismatch { op, expected } => {
                write!(f, "`{op}` expected {expected}")
            }
            LfError::Empty { op } => write!(f, "`{op}` on empty input"),
            LfError::Uninstantiated => write!(f, "logical form still contains template holes"),
            LfError::NonNumeric { op } => write!(f, "`{op}` needs numeric values"),
            LfError::Internal { op } => write!(f, "`{op}` evaluator invariant violated"),
        }
    }
}

impl std::error::Error for LfError {}

/// Evaluation outcome with the cells used.
#[derive(Debug, Clone, PartialEq)]
pub struct LfOutcome {
    pub value: LfValue,
    pub highlighted: Vec<(usize, usize)>,
}

/// Evaluates a fully instantiated logical form on a table.
pub fn evaluate(expr: &LfExpr, table: &Table) -> Result<LfOutcome, LfError> {
    evaluate_impl(expr, table, None)
}

/// [`evaluate`] using a prebuilt [`ExecContext`] so numeric aggregations
/// read cached cell parses instead of re-running [`Value::as_number`] per
/// cell. Result-identical to [`evaluate`].
pub fn evaluate_in(expr: &LfExpr, table: &Table, ctx: &ExecContext) -> Result<LfOutcome, LfError> {
    evaluate_impl(expr, table, Some(ctx))
}

pub(crate) fn evaluate_impl(
    expr: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
) -> Result<LfOutcome, LfError> {
    if expr.has_holes() {
        return Err(LfError::Uninstantiated);
    }
    let mut hl = FxHashSet::default();
    let value = eval(expr, table, ctx, &mut hl)?;
    let mut highlighted: Vec<(usize, usize)> = hl.into_iter().collect();
    highlighted.sort_unstable();
    Ok(LfOutcome { value, highlighted })
}

/// Evaluates a boolean-rooted program to its truth value.
pub fn evaluate_truth(expr: &LfExpr, table: &Table) -> Result<bool, LfError> {
    truth_of(evaluate(expr, table)?)
}

/// [`evaluate_truth`] over a prebuilt [`ExecContext`].
pub fn evaluate_truth_in(expr: &LfExpr, table: &Table, ctx: &ExecContext) -> Result<bool, LfError> {
    truth_of(evaluate_in(expr, table, ctx)?)
}

pub(crate) fn evaluate_truth_impl(
    expr: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
) -> Result<bool, LfError> {
    truth_of(evaluate_impl(expr, table, ctx)?)
}

fn truth_of(out: LfOutcome) -> Result<bool, LfError> {
    out.value
        .as_bool()
        .ok_or(LfError::TypeMismatch { op: LfOp::Eq, expected: "a boolean-rooted program" })
}

fn column_index(table: &Table, e: &LfExpr) -> Result<usize, LfError> {
    match e {
        LfExpr::Column(name) | LfExpr::Const(name) => {
            table.column_index(name).ok_or_else(|| LfError::UnknownColumn(name.clone()))
        }
        _ => Err(LfError::TypeMismatch { op: LfOp::Hop, expected: "a column name" }),
    }
}

fn eval(
    e: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    hl: &mut FxHashSet<(usize, usize)>,
) -> Result<LfValue, LfError> {
    use LfOp::*;
    match e {
        LfExpr::AllRows => Ok(LfValue::View((0..table.n_rows()).collect())),
        LfExpr::Column(name) => Ok(LfValue::Scalar(Value::text(name.clone()))),
        LfExpr::Const(text) => Ok(LfValue::Scalar(Value::parse(text))),
        LfExpr::ColumnHole(_) | LfExpr::ValueHole(_) => Err(LfError::Uninstantiated),
        LfExpr::Apply(op, args) => match op {
            FilterEq | FilterNotEq | FilterGreater | FilterLess | FilterGreaterEq
            | FilterLessEq => {
                let view = eval_view(&args[0], table, ctx, hl)?;
                let col = column_index(table, &args[1])?;
                let rhs = eval_scalar(&args[2], table, ctx, hl)?;
                let mut keep = Vec::new();
                for ri in view {
                    let cell = table.cell(ri, col).cloned().unwrap_or(Value::Null);
                    if cell.is_null() {
                        continue;
                    }
                    hl.insert((ri, col));
                    let matched = match op {
                        FilterEq => cell.loosely_equals(&rhs),
                        FilterNotEq => !cell.loosely_equals(&rhs),
                        FilterGreater => num_cmp(&cell, &rhs, |a, b| a > b),
                        FilterLess => num_cmp(&cell, &rhs, |a, b| a < b),
                        FilterGreaterEq => num_cmp(&cell, &rhs, |a, b| a >= b),
                        FilterLessEq => num_cmp(&cell, &rhs, |a, b| a <= b),
                        _ => return Err(LfError::Internal { op: *op }),
                    };
                    if matched {
                        keep.push(ri);
                    }
                }
                Ok(LfValue::View(keep))
            }
            FilterAll => {
                let view = eval_view(&args[0], table, ctx, hl)?;
                let col = column_index(table, &args[1])?;
                let keep: Vec<usize> = view
                    .into_iter()
                    .filter(|&ri| {
                        let non_null = table.cell(ri, col).is_some_and(|v| !v.is_null());
                        if non_null {
                            hl.insert((ri, col));
                        }
                        non_null
                    })
                    .collect();
                Ok(LfValue::View(keep))
            }
            Argmax | Argmin | NthArgmax | NthArgmin => {
                let view = eval_view(&args[0], table, ctx, hl)?;
                let col = column_index(table, &args[1])?;
                let mut keyed: Vec<(Value, usize)> = view
                    .into_iter()
                    .filter_map(|ri| {
                        let v = table.cell(ri, col)?.clone();
                        if v.is_null() {
                            None
                        } else {
                            hl.insert((ri, col));
                            Some((v, ri))
                        }
                    })
                    .collect();
                if keyed.is_empty() {
                    return Err(LfError::Empty { op: *op });
                }
                let descending = matches!(op, Argmax | NthArgmax);
                keyed.sort_by(|a, b| if descending { b.0.cmp(&a.0) } else { a.0.cmp(&b.0) });
                let n = match op {
                    Argmax | Argmin => 1usize,
                    _ => eval_ordinal(&args[2], table, ctx, hl)?,
                };
                keyed
                    .get(n.checked_sub(1).ok_or(LfError::Empty { op: *op })?)
                    .map(|(_, ri)| LfValue::Row(*ri))
                    .ok_or(LfError::Empty { op: *op })
            }
            Count => {
                let view = eval_view(&args[0], table, ctx, hl)?;
                Ok(LfValue::Scalar(Value::Number(view.len() as f64)))
            }
            Only => {
                let view = eval_view(&args[0], table, ctx, hl)?;
                Ok(LfValue::Bool(view.len() == 1))
            }
            Max | Min | Sum | Avg | NthMax | NthMin => {
                let view = eval_view(&args[0], table, ctx, hl)?;
                let col = column_index(table, &args[1])?;
                let mut nums: Vec<f64> = Vec::with_capacity(view.len());
                for ri in view {
                    let n = match ctx {
                        Some(ctx) => ctx.number_at(ri, col),
                        None => table.cell(ri, col).and_then(Value::as_number),
                    };
                    if let Some(n) = n {
                        hl.insert((ri, col));
                        nums.push(n);
                    }
                }
                if nums.is_empty() {
                    return Err(LfError::Empty { op: *op });
                }
                let v = match op {
                    Max => nums.iter().cloned().fold(f64::MIN, f64::max),
                    Min => nums.iter().cloned().fold(f64::MAX, f64::min),
                    Sum => nums.iter().sum(),
                    Avg => nums.iter().sum::<f64>() / nums.len() as f64,
                    NthMax | NthMin => {
                        let n = eval_ordinal(&args[2], table, ctx, hl)?;
                        nums.sort_by(f64::total_cmp);
                        if matches!(op, NthMax) {
                            nums.reverse();
                        }
                        *nums
                            .get(n.checked_sub(1).ok_or(LfError::Empty { op: *op })?)
                            .ok_or(LfError::Empty { op: *op })?
                    }
                    _ => return Err(LfError::Internal { op: *op }),
                };
                Ok(LfValue::Scalar(Value::number(v)))
            }
            Hop => {
                let row = match eval(&args[0], table, ctx, hl)? {
                    LfValue::Row(r) => r,
                    LfValue::View(v) if !v.is_empty() => v[0],
                    LfValue::View(_) => return Err(LfError::Empty { op: *op }),
                    _ => return Err(LfError::TypeMismatch { op: *op, expected: "a row" }),
                };
                let col = column_index(table, &args[1])?;
                hl.insert((row, col));
                Ok(LfValue::Scalar(table.cell(row, col).cloned().unwrap_or(Value::Null)))
            }
            Diff => {
                let a = eval_scalar(&args[0], table, ctx, hl)?;
                let b = eval_scalar(&args[1], table, ctx, hl)?;
                match (a.as_number(), b.as_number()) {
                    (Some(x), Some(y)) => Ok(LfValue::Scalar(Value::number(x - y))),
                    _ => Err(LfError::NonNumeric { op: *op }),
                }
            }
            Eq | NotEq | RoundEq | Greater | Less => {
                let a = eval_scalar(&args[0], table, ctx, hl)?;
                let b = eval_scalar(&args[1], table, ctx, hl)?;
                let res = match op {
                    Eq => a.loosely_equals(&b),
                    NotEq => !a.loosely_equals(&b),
                    RoundEq => match (a.as_number(), b.as_number()) {
                        (Some(x), Some(y)) => {
                            let scale = x.abs().max(y.abs()).max(1.0);
                            (x - y).abs() <= 0.01 * scale
                        }
                        _ => a.loosely_equals(&b),
                    },
                    Greater => num_cmp(&a, &b, |x, y| x > y),
                    Less => num_cmp(&a, &b, |x, y| x < y),
                    _ => return Err(LfError::Internal { op: *op }),
                };
                Ok(LfValue::Bool(res))
            }
            And => {
                let a = eval(&args[0], table, ctx, hl)?
                    .as_bool()
                    .ok_or(LfError::TypeMismatch { op: *op, expected: "booleans" })?;
                let b = eval(&args[1], table, ctx, hl)?
                    .as_bool()
                    .ok_or(LfError::TypeMismatch { op: *op, expected: "booleans" })?;
                Ok(LfValue::Bool(a && b))
            }
            AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq | MostEq
            | MostNotEq | MostGreater | MostLess | MostGreaterEq | MostLessEq => {
                let view = eval_view(&args[0], table, ctx, hl)?;
                let col = column_index(table, &args[1])?;
                let rhs = eval_scalar(&args[2], table, ctx, hl)?;
                if view.is_empty() {
                    return Err(LfError::Empty { op: *op });
                }
                let mut matches = 0usize;
                let total = view.len();
                for ri in view {
                    let cell = table.cell(ri, col).cloned().unwrap_or(Value::Null);
                    hl.insert((ri, col));
                    let m = match op {
                        AllEq | MostEq => cell.loosely_equals(&rhs),
                        AllNotEq | MostNotEq => !cell.is_null() && !cell.loosely_equals(&rhs),
                        AllGreater | MostGreater => num_cmp(&cell, &rhs, |a, b| a > b),
                        AllLess | MostLess => num_cmp(&cell, &rhs, |a, b| a < b),
                        AllGreaterEq | MostGreaterEq => num_cmp(&cell, &rhs, |a, b| a >= b),
                        AllLessEq | MostLessEq => num_cmp(&cell, &rhs, |a, b| a <= b),
                        _ => return Err(LfError::Internal { op: *op }),
                    };
                    if m {
                        matches += 1;
                    }
                }
                let is_all = matches!(
                    op,
                    AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq
                );
                Ok(LfValue::Bool(if is_all { matches == total } else { 2 * matches > total }))
            }
        },
    }
}

fn eval_view(
    e: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    hl: &mut FxHashSet<(usize, usize)>,
) -> Result<Vec<usize>, LfError> {
    match eval(e, table, ctx, hl)? {
        LfValue::View(v) => Ok(v),
        LfValue::Row(r) => Ok(vec![r]),
        _ => Err(LfError::TypeMismatch { op: LfOp::Count, expected: "a view" }),
    }
}

fn eval_scalar(
    e: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    hl: &mut FxHashSet<(usize, usize)>,
) -> Result<Value, LfError> {
    match eval(e, table, ctx, hl)? {
        LfValue::Scalar(v) => Ok(v),
        LfValue::Bool(b) => Ok(Value::Bool(b)),
        _ => Err(LfError::TypeMismatch { op: LfOp::Eq, expected: "a scalar" }),
    }
}

fn eval_ordinal(
    e: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    hl: &mut FxHashSet<(usize, usize)>,
) -> Result<usize, LfError> {
    let v = eval_scalar(e, table, ctx, hl)?;
    v.as_number()
        .filter(|n| *n >= 1.0 && n.fract() == 0.0)
        .map(|n| n as usize)
        .ok_or(LfError::TypeMismatch { op: LfOp::NthMax, expected: "a positive integer ordinal" })
}

fn num_cmp(a: &Value, b: &Value, f: impl Fn(f64, f64) -> bool) -> bool {
    match (a.as_number(), b.as_number()) {
        (Some(x), Some(y)) => {
            if nearly_equal(x, y) {
                // treat near-equal as equal for strict comparisons
                f(0.0, 0.0)
            } else {
                f(x, y)
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn table() -> Table {
        Table::from_strings(
            "Printers",
            &[
                vec!["model", "material", "speed", "price"],
                vec!["P100", "PLA", "60", "199"],
                vec!["P200", "ABS", "80", "299"],
                vec!["P300", "PLA", "95", "399"],
                vec!["P400", "PETG", "95", "349"],
            ],
        )
        .unwrap()
    }

    fn truth(form: &str) -> bool {
        evaluate_truth(&parse(form).unwrap(), &table()).unwrap()
    }

    #[test]
    fn count_claims() {
        assert!(truth("eq { count { filter_eq { all_rows ; material ; PLA } } ; 2 }"));
        assert!(!truth("eq { count { filter_eq { all_rows ; material ; PLA } } ; 3 }"));
    }

    #[test]
    fn superlative_claims() {
        assert!(truth("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }"));
        assert!(truth("eq { hop { argmin { all_rows ; price } ; model } ; P100 }"));
        assert!(!truth("eq { hop { argmax { all_rows ; price } ; model } ; P100 }"));
    }

    #[test]
    fn argmax_tie_breaks_to_first() {
        // speed 95 appears twice (P300, P400); argmax picks the first.
        assert!(truth("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }"));
    }

    #[test]
    fn ordinal_claims() {
        assert!(truth("eq { hop { nth_argmax { all_rows ; price ; 2 } ; model } ; P400 }"));
        assert!(truth("eq { nth_max { all_rows ; price ; 3 } ; 299 }"));
        assert!(truth("eq { nth_min { all_rows ; speed ; 1 } ; 60 }"));
    }

    #[test]
    fn aggregation_claims() {
        assert!(truth("round_eq { avg { all_rows ; price } ; 311.5 }"));
        assert!(truth("eq { sum { all_rows ; speed } ; 330 }"));
        assert!(truth("eq { max { all_rows ; price } ; 399 }"));
        assert!(truth("eq { min { all_rows ; speed } ; 60 }"));
    }

    #[test]
    fn majority_claims() {
        assert!(truth("most_greater { all_rows ; speed ; 70 }"));
        assert!(!truth("all_greater { all_rows ; speed ; 70 }"));
        assert!(truth("all_greater { all_rows ; price ; 100 }"));
        assert!(truth("most_eq { filter_eq { all_rows ; material ; PLA } ; material ; PLA }"));
    }

    #[test]
    fn unique_claims() {
        assert!(truth("only { filter_eq { all_rows ; material ; ABS } }"));
        assert!(!truth("only { filter_eq { all_rows ; material ; PLA } }"));
    }

    #[test]
    fn comparative_claims() {
        assert!(truth(
            "greater { hop { filter_eq { all_rows ; model ; P200 } ; price } ; hop { filter_eq { all_rows ; model ; P100 } ; price } }"
        ));
        assert!(truth(
            "eq { diff { hop { filter_eq { all_rows ; model ; P300 } ; price } ; hop { filter_eq { all_rows ; model ; P200 } ; price } } ; 100 }"
        ));
    }

    #[test]
    fn conjunction_claims() {
        assert!(truth(
            "and { eq { count { all_rows } ; 4 } ; greater { max { all_rows ; speed } ; 90 } }"
        ));
        assert!(!truth(
            "and { eq { count { all_rows } ; 4 } ; greater { max { all_rows ; speed } ; 100 } }"
        ));
    }

    #[test]
    fn filter_chains() {
        assert!(truth(
            "eq { count { filter_greater { filter_eq { all_rows ; material ; PLA } ; price ; 200 } } ; 1 }"
        ));
    }

    #[test]
    fn empty_superlative_is_error() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { hop { argmax { filter_eq { all_rows ; material ; WOOD } ; price } ; model } ; P1 }")?;
        assert!(matches!(evaluate_truth(&e, &table()), Err(LfError::Empty { .. })));
        Ok(())
    }

    #[test]
    fn unknown_column_is_error() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { max { all_rows ; bogus } ; 1 }")?;
        assert!(matches!(evaluate_truth(&e, &table()), Err(LfError::UnknownColumn(_))));
        Ok(())
    }

    #[test]
    fn template_is_uninstantiated() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { count { filter_eq { all_rows ; c1 ; val1 } } ; val2 }")?;
        assert!(matches!(evaluate_truth(&e, &table()), Err(LfError::Uninstantiated)));
        Ok(())
    }

    #[test]
    fn highlights_cover_reasoning_cells() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }")?;
        let out = evaluate(&e, &table())?;
        // speed column scanned for all rows; model of the argmax row read.
        assert!(out.highlighted.contains(&(0, 2)));
        assert!(out.highlighted.contains(&(3, 2)));
        assert!(out.highlighted.contains(&(2, 0)));
        Ok(())
    }

    #[test]
    fn non_boolean_root_rejected_by_truth() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("count { all_rows }")?;
        assert!(evaluate_truth(&e, &table()).is_err());
        // but plain evaluate returns the scalar
        let out = evaluate(&e, &table())?;
        assert_eq!(out.value, LfValue::Scalar(Value::Number(4.0)));
        Ok(())
    }

    #[test]
    fn ordinal_out_of_range_is_error() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { nth_max { all_rows ; price ; 9 } ; 1 }")?;
        assert!(matches!(evaluate_truth(&e, &table()), Err(LfError::Empty { .. })));
        Ok(())
    }
}
