//! Logical-form AST (the Logic2Text DSL of Chen et al. \[7\]).
//!
//! A logical form is a nested application `func { arg1 ; arg2 ; ... }`
//! executed against a table; the root of a fact-verification program always
//! evaluates to a boolean (the claim's truth value). The operator inventory
//! covers the reasoning types the paper lists (§II-C): count, superlative,
//! comparative, aggregation, majority, unique, and ordinal.

use std::fmt;

/// All supported logical-form operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LfOp {
    // --- view producers (table subsets) ---
    /// `filter_eq { view ; col ; val }` — rows whose `col` equals `val`.
    FilterEq,
    /// `filter_not_eq { view ; col ; val }`
    FilterNotEq,
    /// `filter_greater { view ; col ; val }`
    FilterGreater,
    /// `filter_less { view ; col ; val }`
    FilterLess,
    /// `filter_greater_eq { view ; col ; val }`
    FilterGreaterEq,
    /// `filter_less_eq { view ; col ; val }`
    FilterLessEq,
    /// `filter_all { view ; col }` — rows with a non-empty `col`.
    FilterAll,

    // --- row producers ---
    /// `argmax { view ; col }` — the row with the maximum `col`.
    Argmax,
    /// `argmin { view ; col }`
    Argmin,
    /// `nth_argmax { view ; col ; n }` — row with the n-th largest `col` (1-based).
    NthArgmax,
    /// `nth_argmin { view ; col ; n }`
    NthArgmin,

    // --- scalar producers ---
    /// `count { view }` — number of rows.
    Count,
    /// `max { view ; col }` — maximum value.
    Max,
    /// `min { view ; col }`
    Min,
    /// `sum { view ; col }`
    Sum,
    /// `avg { view ; col }`
    Avg,
    /// `nth_max { view ; col ; n }` — n-th largest value.
    NthMax,
    /// `nth_min { view ; col ; n }`
    NthMin,
    /// `hop { row ; col }` — value of `col` in `row`.
    Hop,
    /// `diff { a ; b }` — numeric difference `a - b`.
    Diff,

    // --- boolean producers ---
    /// `eq { a ; b }` — loose equality.
    Eq,
    /// `not_eq { a ; b }`
    NotEq,
    /// `round_eq { a ; b }` — numeric equality with 1% tolerance.
    RoundEq,
    /// `greater { a ; b }`
    Greater,
    /// `less { a ; b }`
    Less,
    /// `and { a ; b }` — boolean conjunction.
    And,
    /// `only { view }` — view has exactly one row (the *unique* type).
    Only,

    // --- majority family (view ; col ; val -> bool) ---
    /// `all_eq { view ; col ; val }` — every row's `col` equals `val`.
    AllEq,
    AllNotEq,
    AllGreater,
    AllLess,
    AllGreaterEq,
    AllLessEq,
    /// `most_eq { view ; col ; val }` — a strict majority of rows match.
    MostEq,
    MostNotEq,
    MostGreater,
    MostLess,
    MostGreaterEq,
    MostLessEq,
}

impl LfOp {
    /// Canonical surface name.
    pub fn name(self) -> &'static str {
        use LfOp::*;
        match self {
            FilterEq => "filter_eq",
            FilterNotEq => "filter_not_eq",
            FilterGreater => "filter_greater",
            FilterLess => "filter_less",
            FilterGreaterEq => "filter_greater_eq",
            FilterLessEq => "filter_less_eq",
            FilterAll => "filter_all",
            Argmax => "argmax",
            Argmin => "argmin",
            NthArgmax => "nth_argmax",
            NthArgmin => "nth_argmin",
            Count => "count",
            Max => "max",
            Min => "min",
            Sum => "sum",
            Avg => "avg",
            NthMax => "nth_max",
            NthMin => "nth_min",
            Hop => "hop",
            Diff => "diff",
            Eq => "eq",
            NotEq => "not_eq",
            RoundEq => "round_eq",
            Greater => "greater",
            Less => "less",
            And => "and",
            Only => "only",
            AllEq => "all_eq",
            AllNotEq => "all_not_eq",
            AllGreater => "all_greater",
            AllLess => "all_less",
            AllGreaterEq => "all_greater_eq",
            AllLessEq => "all_less_eq",
            MostEq => "most_eq",
            MostNotEq => "most_not_eq",
            MostGreater => "most_greater",
            MostLess => "most_less",
            MostGreaterEq => "most_greater_eq",
            MostLessEq => "most_less_eq",
        }
    }

    /// Parses a surface name.
    pub fn from_name(name: &str) -> Option<LfOp> {
        use LfOp::*;
        Some(match name {
            "filter_eq" => FilterEq,
            "filter_not_eq" => FilterNotEq,
            "filter_greater" => FilterGreater,
            "filter_less" => FilterLess,
            "filter_greater_eq" => FilterGreaterEq,
            "filter_less_eq" => FilterLessEq,
            "filter_all" => FilterAll,
            "argmax" => Argmax,
            "argmin" => Argmin,
            "nth_argmax" => NthArgmax,
            "nth_argmin" => NthArgmin,
            "count" => Count,
            "max" => Max,
            "min" => Min,
            "sum" => Sum,
            "avg" => Avg,
            "nth_max" => NthMax,
            "nth_min" => NthMin,
            "hop" => Hop,
            "diff" => Diff,
            "eq" => Eq,
            "not_eq" => NotEq,
            "round_eq" => RoundEq,
            "greater" => Greater,
            "less" => Less,
            "and" => And,
            "only" => Only,
            "all_eq" => AllEq,
            "all_not_eq" => AllNotEq,
            "all_greater" => AllGreater,
            "all_less" => AllLess,
            "all_greater_eq" => AllGreaterEq,
            "all_less_eq" => AllLessEq,
            "most_eq" => MostEq,
            "most_not_eq" => MostNotEq,
            "most_greater" => MostGreater,
            "most_less" => MostLess,
            "most_greater_eq" => MostGreaterEq,
            "most_less_eq" => MostLessEq,
            _ => return None,
        })
    }

    /// Required argument count.
    pub fn arity(self) -> usize {
        use LfOp::*;
        match self {
            Count | Only => 1,
            FilterAll | Argmax | Argmin | Max | Min | Sum | Avg | Hop | Diff | Eq | NotEq
            | RoundEq | Greater | Less | And => 2,
            FilterEq | FilterNotEq | FilterGreater | FilterLess | FilterGreaterEq
            | FilterLessEq | NthArgmax | NthArgmin | NthMax | NthMin | AllEq | AllNotEq
            | AllGreater | AllLess | AllGreaterEq | AllLessEq | MostEq | MostNotEq
            | MostGreater | MostLess | MostGreaterEq | MostLessEq => 3,
        }
    }

    /// Whether this operator needs numeric column values.
    pub fn is_numeric(self) -> bool {
        use LfOp::*;
        matches!(
            self,
            FilterGreater
                | FilterLess
                | FilterGreaterEq
                | FilterLessEq
                | Argmax
                | Argmin
                | NthArgmax
                | NthArgmin
                | Max
                | Min
                | Sum
                | Avg
                | NthMax
                | NthMin
                | Diff
                | Greater
                | Less
                | RoundEq
                | AllGreater
                | AllLess
                | AllGreaterEq
                | AllLessEq
                | MostGreater
                | MostLess
                | MostGreaterEq
                | MostLessEq
        )
    }
}

impl fmt::Display for LfOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The coarse logic categories of Logic2Text, used to stratify template
/// sampling and to pick surface-realization grammars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicType {
    Count,
    Superlative,
    Ordinal,
    Comparative,
    Aggregation,
    Majority,
    Unique,
}

impl fmt::Display for LogicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogicType::Count => "count",
            LogicType::Superlative => "superlative",
            LogicType::Ordinal => "ordinal",
            LogicType::Comparative => "comparative",
            LogicType::Aggregation => "aggregation",
            LogicType::Majority => "majority",
            LogicType::Unique => "unique",
        };
        f.write_str(s)
    }
}

/// A node of a logical form: an operator application or a leaf symbol.
#[derive(Debug, Clone, PartialEq)]
pub enum LfExpr {
    /// `func { arg1 ; ... }`
    Apply(LfOp, Vec<LfExpr>),
    /// The whole table (`all_rows`).
    AllRows,
    /// A column-name leaf.
    Column(String),
    /// A constant leaf (cell value, number, string).
    Const(String),
    /// A column placeholder `c1` (templates only).
    ColumnHole(usize),
    /// A value placeholder `val1` (templates only), remembering which
    /// column hole it samples from.
    ValueHole(usize),
}

impl LfExpr {
    /// True if the tree contains any template hole.
    pub fn has_holes(&self) -> bool {
        match self {
            LfExpr::ColumnHole(_) | LfExpr::ValueHole(_) => true,
            LfExpr::Apply(_, args) => args.iter().any(LfExpr::has_holes),
            _ => false,
        }
    }

    /// The dominant logic category of this program (by root-ish inspection,
    /// following Logic2Text's own categorization).
    pub fn logic_type(&self) -> LogicType {
        fn contains(e: &LfExpr, pred: &impl Fn(LfOp) -> bool) -> bool {
            match e {
                LfExpr::Apply(op, args) => pred(*op) || args.iter().any(|a| contains(a, pred)),
                _ => false,
            }
        }
        use LfOp::*;
        if contains(self, &|op| matches!(op, NthArgmax | NthArgmin | NthMax | NthMin)) {
            LogicType::Ordinal
        } else if contains(self, &|op| matches!(op, Argmax | Argmin | Max | Min)) {
            LogicType::Superlative
        } else if contains(self, &|op| {
            matches!(
                op,
                AllEq
                    | AllNotEq
                    | AllGreater
                    | AllLess
                    | AllGreaterEq
                    | AllLessEq
                    | MostEq
                    | MostNotEq
                    | MostGreater
                    | MostLess
                    | MostGreaterEq
                    | MostLessEq
            )
        }) {
            LogicType::Majority
        } else if contains(self, &|op| matches!(op, Only)) {
            LogicType::Unique
        } else if contains(self, &|op| matches!(op, Count)) {
            LogicType::Count
        } else if contains(self, &|op| matches!(op, Sum | Avg)) {
            LogicType::Aggregation
        } else {
            LogicType::Comparative
        }
    }

    /// Visits every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&LfExpr)) {
        f(self);
        if let LfExpr::Apply(_, args) = self {
            for a in args {
                a.visit(f);
            }
        }
    }
}

impl fmt::Display for LfExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfExpr::Apply(op, args) => {
                write!(f, "{op} {{ ")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ; ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, " }}")
            }
            LfExpr::AllRows => write!(f, "all_rows"),
            LfExpr::Column(c) => write!(f, "{c}"),
            LfExpr::Const(v) => write!(f, "{v}"),
            LfExpr::ColumnHole(i) => write!(f, "c{i}"),
            LfExpr::ValueHole(i) => write!(f, "val{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_name_roundtrip() {
        for op in [
            LfOp::FilterEq,
            LfOp::Argmax,
            LfOp::NthMax,
            LfOp::MostGreaterEq,
            LfOp::Hop,
            LfOp::And,
            LfOp::Only,
        ] {
            assert_eq!(LfOp::from_name(op.name()), Some(op));
        }
        assert_eq!(LfOp::from_name("bogus"), None);
    }

    #[test]
    fn arity_spot_checks() {
        assert_eq!(LfOp::Count.arity(), 1);
        assert_eq!(LfOp::Hop.arity(), 2);
        assert_eq!(LfOp::FilterEq.arity(), 3);
        assert_eq!(LfOp::NthArgmax.arity(), 3);
    }

    #[test]
    fn display_nested() {
        let e = LfExpr::Apply(
            LfOp::Eq,
            vec![
                LfExpr::Apply(
                    LfOp::Hop,
                    vec![
                        LfExpr::Apply(
                            LfOp::Argmax,
                            vec![LfExpr::AllRows, LfExpr::Column("score".into())],
                        ),
                        LfExpr::Column("name".into()),
                    ],
                ),
                LfExpr::Const("alpha".into()),
            ],
        );
        assert_eq!(e.to_string(), "eq { hop { argmax { all_rows ; score } ; name } ; alpha }");
    }

    #[test]
    fn logic_type_classification() {
        use LfExpr::*;
        let count = Apply(
            LfOp::Eq,
            vec![
                Apply(
                    LfOp::Count,
                    vec![Apply(
                        LfOp::FilterEq,
                        vec![AllRows, Column("a".into()), Const("x".into())],
                    )],
                ),
                Const("3".into()),
            ],
        );
        assert_eq!(count.logic_type(), LogicType::Count);
        let superl = Apply(
            LfOp::Eq,
            vec![
                Apply(
                    LfOp::Hop,
                    vec![
                        Apply(LfOp::Argmax, vec![AllRows, Column("s".into())]),
                        Column("n".into()),
                    ],
                ),
                Const("x".into()),
            ],
        );
        assert_eq!(superl.logic_type(), LogicType::Superlative);
        let ordinal = Apply(
            LfOp::Eq,
            vec![
                Apply(LfOp::NthMax, vec![AllRows, Column("s".into()), Const("2".into())]),
                Const("5".into()),
            ],
        );
        assert_eq!(ordinal.logic_type(), LogicType::Ordinal);
    }

    #[test]
    fn has_holes_detection() {
        let t = LfExpr::Apply(
            LfOp::FilterEq,
            vec![LfExpr::AllRows, LfExpr::ColumnHole(1), LfExpr::ValueHole(1)],
        );
        assert!(t.has_holes());
        let c = LfExpr::Apply(
            LfOp::FilterEq,
            vec![LfExpr::AllRows, LfExpr::Column("a".into()), LfExpr::Const("x".into())],
        );
        assert!(!c.has_holes());
    }
}
