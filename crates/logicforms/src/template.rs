//! Logical-form templates: abstraction, sampling, and truth-targeted
//! instantiation.
//!
//! Fact-verification claims need a *label*, and the paper gets it from
//! execution (§IV-C): for a template `func { arg1 ; arg2 }` whose root is a
//! comparator and whose `arg2` is a single value, the sampler first
//! instantiates and executes `arg1`, then sets `arg2` from the result — the
//! exact result yields a *Supported* claim, a perturbed one a *Refuted*
//! claim. Non-root value holes (filter constants) are sampled from the
//! column they constrain, exactly as in the SQL sampler.

use crate::ast::{LfExpr, LfOp, LogicType};
use crate::exec::{evaluate_impl, evaluate_truth_impl, LfError, LfValue};
use crate::parser::{parse, LfParseError};
use rand::seq::SliceRandom;
use rand::Rng;
use rustc_hash::FxHashMap;
use tabular::{format_number, ColumnType, ExecContext, Table, Value};

/// Why truth-targeted instantiation failed — the structured discard reasons
/// the pipeline telemetry aggregates (instead of an opaque `None`). For the
/// retrying entry point the reported reason is the one from the *last*
/// attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LfInstantiateError {
    /// The table has no rows to sample from.
    EmptyTable,
    /// No table column satisfies a column hole's (numeric) constraint.
    NoCompatibleColumn,
    /// A constrained column has no admissible value to fill a hole from.
    NoValueCandidates,
    /// A hole sits in a position the sampler does not support, or
    /// substitution left holes behind.
    MalformedTemplate,
    /// Evaluating the partially instantiated program failed.
    ExecutionFailed,
    /// Execution produced a null / non-scalar result that cannot anchor a
    /// truth-targeted literal.
    DegenerateResult,
    /// Sampling never reached the desired truth value within the retry
    /// budget (paper §IV-C: such programs are discarded).
    TruthUnreachable,
}

impl std::fmt::Display for LfInstantiateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LfInstantiateError::EmptyTable => write!(f, "empty table"),
            LfInstantiateError::NoCompatibleColumn => write!(f, "no compatible column"),
            LfInstantiateError::NoValueCandidates => write!(f, "no value candidates"),
            LfInstantiateError::MalformedTemplate => write!(f, "malformed template"),
            LfInstantiateError::ExecutionFailed => write!(f, "execution failed"),
            LfInstantiateError::DegenerateResult => write!(f, "degenerate result"),
            LfInstantiateError::TruthUnreachable => write!(f, "desired truth unreachable"),
        }
    }
}

impl std::error::Error for LfInstantiateError {}

/// A reusable logical-form template.
#[derive(Debug, Clone, PartialEq)]
pub struct LfTemplate {
    expr: LfExpr,
}

/// Reusable sampling buffers for [`LfTemplate::try_instantiate_in_with`].
///
/// Truth-targeted instantiation retries up to 16 times per call, and each
/// attempt needs hole lists, a shuffled column pool, per-column "already
/// drawn" sets and candidate-index buffers. Holding them here lets the hot
/// generation loop reuse the allocations across attempts, templates and
/// samples. A default-constructed scratch is always valid; the buffers are
/// cleared on entry, never read.
#[derive(Debug, Clone, Default)]
pub struct LfScratch {
    holes: Vec<(usize, bool)>,
    available: Vec<usize>,
    cols: FxHashMap<usize, usize>,
    used: FxHashMap<usize, Vec<Value>>,
    candidates: Vec<usize>,
    /// Kernel buffers shared with the evaluator (views, numeric gathers,
    /// highlight accumulation) so truth-targeted execution inside the
    /// 16-attempt loop stops allocating per call.
    pub kern: tabular::KernelScratch,
}

/// Result of instantiating a template: the concrete program and the truth
/// value it executes to (= the claim's gold label).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantiatedClaim {
    pub expr: LfExpr,
    pub truth: bool,
}

impl LfTemplate {
    /// Parses template text such as
    /// `eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }`.
    pub fn parse(text: &str) -> Result<LfTemplate, LfParseError> {
        Ok(LfTemplate { expr: parse(text)? })
    }

    pub fn from_expr(expr: LfExpr) -> LfTemplate {
        LfTemplate { expr }
    }

    pub fn expr(&self) -> &LfExpr {
        &self.expr
    }

    /// Normalized signature for the redundancy filtration step.
    pub fn signature(&self) -> String {
        self.expr.to_string()
    }

    pub fn logic_type(&self) -> LogicType {
        self.expr.logic_type()
    }

    /// Distinct column holes with a numeric-type requirement inferred from
    /// the operators they appear under.
    pub fn column_holes(&self) -> Vec<(usize, bool)> {
        let mut holes: Vec<(usize, bool)> = Vec::new();
        self.column_holes_into(&mut holes);
        holes
    }

    /// Allocation-reusing core of [`LfTemplate::column_holes`]: clears
    /// `holes` and refills it in the same order.
    fn column_holes_into(&self, holes: &mut Vec<(usize, bool)>) {
        holes.clear();
        fn scan(e: &LfExpr, holes: &mut Vec<(usize, bool)>) {
            if let LfExpr::Apply(op, args) = e {
                for (slot, a) in args.iter().enumerate() {
                    if let LfExpr::ColumnHole(i) = a {
                        // Column slots sit at index 1 for every column-taking op.
                        let numeric = slot == 1 && op.is_numeric();
                        match holes.iter_mut().find(|(h, _)| h == i) {
                            Some((_, n)) => *n |= numeric,
                            None => holes.push((*i, numeric)),
                        }
                    } else {
                        scan(a, holes);
                    }
                }
            }
        }
        scan(&self.expr, holes);
    }

    /// Instantiates the template on `table`, aiming for the given truth
    /// value. Returns `None` when the table cannot support the template or
    /// sampling produced a degenerate program (paper: discarded); use
    /// [`LfTemplate::try_instantiate`] to learn why.
    pub fn instantiate(
        &self,
        table: &Table,
        rng: &mut impl Rng,
        desired: bool,
    ) -> Option<InstantiatedClaim> {
        self.try_instantiate(table, rng, desired).ok()
    }

    /// Like [`LfTemplate::instantiate`], but reports the failure reason of
    /// the last sampling attempt.
    pub fn try_instantiate(
        &self,
        table: &Table,
        rng: &mut impl Rng,
        desired: bool,
    ) -> Result<InstantiatedClaim, LfInstantiateError> {
        self.try_instantiate_impl(table, None, rng, desired, &mut LfScratch::default())
    }

    /// [`LfTemplate::try_instantiate`] using a prebuilt [`ExecContext`] for
    /// value-candidate sampling, perturbation pools and truth-targeting
    /// execution. Draw-for-draw identical to the context-free path.
    pub fn try_instantiate_in(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut impl Rng,
        desired: bool,
    ) -> Result<InstantiatedClaim, LfInstantiateError> {
        self.try_instantiate_impl(table, Some(ctx), rng, desired, &mut LfScratch::default())
    }

    /// [`LfTemplate::try_instantiate_in`] reusing caller-owned sampling
    /// buffers. Draw-for-draw identical to the other entry points.
    pub fn try_instantiate_in_with(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut impl Rng,
        desired: bool,
        scratch: &mut LfScratch,
    ) -> Result<InstantiatedClaim, LfInstantiateError> {
        self.try_instantiate_impl(table, Some(ctx), rng, desired, scratch)
    }

    fn try_instantiate_impl(
        &self,
        table: &Table,
        ctx: Option<&ExecContext>,
        rng: &mut impl Rng,
        desired: bool,
        scratch: &mut LfScratch,
    ) -> Result<InstantiatedClaim, LfInstantiateError> {
        if table.n_rows() == 0 {
            return Err(LfInstantiateError::EmptyTable);
        }
        let mut last = LfInstantiateError::TruthUnreachable;
        for _attempt in 0..16 {
            match self.attempt_instantiate(table, ctx, rng, desired, scratch) {
                Ok(claim) => return Ok(claim),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn attempt_instantiate(
        &self,
        table: &Table,
        ctx: Option<&ExecContext>,
        rng: &mut impl Rng,
        desired: bool,
        scratch: &mut LfScratch,
    ) -> Result<InstantiatedClaim, LfInstantiateError> {
        let LfScratch { holes, available, cols, used, candidates, kern } = scratch;
        // 1. Assign columns to holes, numeric-constrained holes first.
        self.column_holes_into(holes);
        holes.sort_by_key(|(_, numeric)| !numeric);
        available.clear();
        available.extend(0..table.n_cols());
        available.shuffle(rng);
        cols.clear();
        for (hole, numeric) in holes.iter() {
            let pos = available
                .iter()
                .position(|&ci| {
                    let ty = table.schema().column(ci).map(|c| c.ty);
                    if *numeric {
                        matches!(ty, Some(ColumnType::Number))
                    } else {
                        true
                    }
                })
                .ok_or(LfInstantiateError::NoCompatibleColumn)?;
            cols.insert(*hole, available.remove(pos));
        }
        let with_cols = substitute_columns(&self.expr, table, cols)
            .ok_or(LfInstantiateError::MalformedTemplate)?;

        // 2. Fill non-root value holes by sampling from their bound column.
        let mut partially = fill_inner_values(&with_cols, table, ctx, rng, used, candidates)?;

        // 3. Root hole: execute the sibling and set the value by `desired`.
        if let LfExpr::Apply(op, args) = &partially {
            if matches!(op, LfOp::Eq | LfOp::NotEq | LfOp::RoundEq | LfOp::Greater | LfOp::Less) {
                let hole_side = args.iter().position(|a| matches!(a, LfExpr::ValueHole(_)));
                if let Some(side) = hole_side {
                    let sibling = &args[1 - side];
                    if sibling.has_holes() {
                        return Err(LfInstantiateError::MalformedTemplate);
                    }
                    let out = evaluate_impl(sibling, table, ctx, kern)
                        .map_err(|_| LfInstantiateError::ExecutionFailed)?;
                    let LfValue::Scalar(result) = out.value else {
                        return Err(LfInstantiateError::DegenerateResult);
                    };
                    if result.is_null() {
                        return Err(LfInstantiateError::DegenerateResult);
                    }
                    // Decide the literal: equal for matches-desired, else a
                    // perturbation that flips the comparator.
                    let wants_match = match op {
                        LfOp::Eq | LfOp::RoundEq => desired,
                        LfOp::NotEq => !desired,
                        // greater/less roots with a free side: pick a value
                        // strictly beyond/before the result.
                        LfOp::Greater | LfOp::Less => {
                            let n =
                                result.as_number().ok_or(LfInstantiateError::DegenerateResult)?;
                            let delta = (n.abs() * 0.25).max(1.0);
                            // `sibling cmp val`: hole on side 1 means result
                            // is lhs. greater(lhs, val): true needs val < lhs.
                            let val_should_be_less = match (op, side) {
                                (LfOp::Greater, 1) => desired,
                                (LfOp::Greater, 0) => !desired,
                                (LfOp::Less, 1) => !desired,
                                (LfOp::Less, 0) => desired,
                                _ => return Err(LfInstantiateError::MalformedTemplate),
                            };
                            let v = if val_should_be_less { n - delta } else { n + delta };
                            let mut new_args = args.clone();
                            new_args[side] = LfExpr::Const(format_number(v));
                            partially = LfExpr::Apply(*op, new_args);
                            return finish(partially, table, ctx, kern, desired);
                        }
                        _ => return Err(LfInstantiateError::MalformedTemplate),
                    };
                    let literal = if wants_match {
                        result.clone()
                    } else {
                        perturb(&result, table, ctx, rng, candidates)
                            .ok_or(LfInstantiateError::NoValueCandidates)?
                    };
                    let mut new_args = args.clone();
                    new_args[side] = LfExpr::Const(literal.to_string());
                    partially = LfExpr::Apply(*op, new_args);
                }
            }
        }
        finish(partially, table, ctx, kern, desired)
    }
}

fn finish(
    expr: LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    kern: &mut tabular::KernelScratch,
    desired: bool,
) -> Result<InstantiatedClaim, LfInstantiateError> {
    if expr.has_holes() {
        return Err(LfInstantiateError::MalformedTemplate);
    }
    match evaluate_truth_impl(&expr, table, ctx, kern) {
        Ok(truth) if truth == desired => Ok(InstantiatedClaim { expr, truth }),
        // Let the caller retry with fresh sampling.
        Ok(_) => Err(LfInstantiateError::TruthUnreachable),
        Err(LfError::Empty { .. }) => Err(LfInstantiateError::DegenerateResult),
        Err(_) => Err(LfInstantiateError::ExecutionFailed),
    }
}

fn substitute_columns(e: &LfExpr, table: &Table, cols: &FxHashMap<usize, usize>) -> Option<LfExpr> {
    Some(match e {
        LfExpr::ColumnHole(i) => LfExpr::Column(table.column_name(*cols.get(i)?)?.to_string()),
        LfExpr::Apply(op, args) => LfExpr::Apply(
            *op,
            args.iter().map(|a| substitute_columns(a, table, cols)).collect::<Option<Vec<_>>>()?,
        ),
        other => other.clone(),
    })
}

/// Fills value holes in *filter/majority val slots* and *ordinal slots* by
/// sampling; leaves a root-comparator hole in place for the truth-targeting
/// step.
fn fill_inner_values(
    e: &LfExpr,
    table: &Table,
    ctx: Option<&ExecContext>,
    rng: &mut impl Rng,
    used: &mut FxHashMap<usize, Vec<Value>>,
    candidates: &mut Vec<usize>,
) -> Result<LfExpr, LfInstantiateError> {
    // Values already drawn per column: distinct holes over the same column
    // must bind distinct values, or comparative templates degenerate into
    // "X is greater than X".
    used.values_mut().for_each(Vec::clear);
    fn walk(
        e: &LfExpr,
        table: &Table,
        ctx: Option<&ExecContext>,
        rng: &mut impl Rng,
        at_root: bool,
        used: &mut FxHashMap<usize, Vec<Value>>,
        candidates: &mut Vec<usize>,
    ) -> Result<LfExpr, LfInstantiateError> {
        match e {
            LfExpr::Apply(op, args) => {
                use LfOp::*;
                let mut new_args: Vec<LfExpr> = Vec::with_capacity(args.len());
                for (slot, a) in args.iter().enumerate() {
                    let filled = match a {
                        LfExpr::ValueHole(_) => {
                            let is_root_comparator_slot =
                                at_root && matches!(op, Eq | NotEq | RoundEq | Greater | Less);
                            if is_root_comparator_slot {
                                a.clone() // deferred to truth targeting
                            } else if matches!(
                                op,
                                FilterEq
                                    | FilterNotEq
                                    | FilterGreater
                                    | FilterLess
                                    | FilterGreaterEq
                                    | FilterLessEq
                                    | AllEq
                                    | AllNotEq
                                    | AllGreater
                                    | AllLess
                                    | AllGreaterEq
                                    | AllLessEq
                                    | MostEq
                                    | MostNotEq
                                    | MostGreater
                                    | MostLess
                                    | MostGreaterEq
                                    | MostLessEq
                            ) && slot == 2
                            {
                                let ordered_op = matches!(
                                    op,
                                    FilterGreater
                                        | FilterLess
                                        | FilterGreaterEq
                                        | FilterLessEq
                                        | AllGreater
                                        | AllLess
                                        | AllGreaterEq
                                        | AllLessEq
                                        | MostGreater
                                        | MostLess
                                        | MostGreaterEq
                                        | MostLessEq
                                );
                                // Sample from the column in slot 1,
                                // avoiding values already bound to another
                                // hole of the same column.
                                let LfExpr::Column(col_name) = &args[1] else {
                                    return Err(LfInstantiateError::MalformedTemplate);
                                };
                                let ci = table
                                    .column_index(col_name)
                                    .ok_or(LfInstantiateError::MalformedTemplate)?;
                                let taken = used.entry(ci).or_default();
                                let mut v = match ctx {
                                    Some(ctx) => {
                                        // Index buffer over the context's
                                        // non-null pool: same filtered length
                                        // as the old `Vec<&Value>`, so the
                                        // `choose` draw is identical.
                                        let pool = ctx.non_null_values(ci);
                                        candidates.clear();
                                        candidates.extend(
                                            pool.iter()
                                                .enumerate()
                                                .filter(|(_, v)| {
                                                    !taken.iter().any(|t| t.loosely_equals(v))
                                                })
                                                .map(|(i, _)| i),
                                        );
                                        let idx = *candidates
                                            .choose(rng)
                                            .ok_or(LfInstantiateError::NoValueCandidates)?;
                                        pool[idx].clone()
                                    }
                                    None => {
                                        let candidates: Vec<Value> = table
                                            .column_values(ci)
                                            .into_iter()
                                            .filter(|v| !v.is_null())
                                            .filter(|v| !taken.iter().any(|t| t.loosely_equals(v)))
                                            .collect();
                                        candidates
                                            .choose(rng)
                                            .ok_or(LfInstantiateError::NoValueCandidates)?
                                            .clone()
                                    }
                                };
                                // Humans write round thresholds ("more than
                                // 70"), not cell-exact ones; round half the
                                // ordered-comparison thresholds the same way.
                                if ordered_op && rng.gen_bool(0.5) {
                                    if let Some(n) = v.as_number() {
                                        v = Value::number(round_human(n));
                                    }
                                }
                                taken.push(v.clone());
                                LfExpr::Const(v.to_string())
                            } else if matches!(op, NthArgmax | NthArgmin | NthMax | NthMin)
                                && slot == 2
                            {
                                let max_n = table.n_rows().clamp(1, 3);
                                LfExpr::Const(format!("{}", rng.gen_range(1..=max_n)))
                            } else {
                                // Hole in an unsupported position.
                                return Err(LfInstantiateError::MalformedTemplate);
                            }
                        }
                        other => walk(other, table, ctx, rng, false, used, candidates)?,
                    };
                    new_args.push(filled);
                }
                Ok(LfExpr::Apply(*op, new_args))
            }
            other => Ok(other.clone()),
        }
    }
    walk(e, table, ctx, rng, true, used, candidates)
}

/// Rounds a threshold the way a human annotator would: to two leading
/// significant digits (77 -> 80 or 75, 48212 -> 48000).
fn round_human(n: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    let mag = 10f64.powf(n.abs().log10().floor() - 1.0).max(1.0);
    (n / mag).round() * mag
}

/// Produces a value different from `v` for Refuted claims: numbers are
/// shifted by a noticeable margin, text values are replaced with a different
/// cell value from the table.
fn perturb(
    v: &Value,
    table: &Table,
    ctx: Option<&ExecContext>,
    rng: &mut impl Rng,
    candidates: &mut Vec<usize>,
) -> Option<Value> {
    match v {
        Value::Number(n) => {
            let delta = (n.abs() * 0.3).max(1.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            Some(Value::number(n + delta))
        }
        Value::Text(s) => match ctx {
            // The context's distinct-text pool is built in the same
            // row-major scan order, so filtering it by the excluded value
            // yields exactly the pool the scan below would build.
            Some(ctx) => {
                // Index buffer: same filtered length as the old
                // `Vec<&String>`, so the `choose` draw is identical.
                let pool = ctx.text_pool();
                candidates.clear();
                candidates.extend(
                    pool.iter()
                        .enumerate()
                        .filter(|(_, t)| !t.eq_ignore_ascii_case(s))
                        .map(|(i, _)| i),
                );
                candidates.choose(rng).map(|&i| Value::Text(pool[i].clone()))
            }
            None => {
                let mut pool: Vec<String> = Vec::new();
                for row in table.rows() {
                    for cell in row {
                        if let Value::Text(t) = cell {
                            if !t.eq_ignore_ascii_case(s) && !pool.contains(t) {
                                pool.push(t.clone());
                            }
                        }
                    }
                }
                pool.choose(rng).cloned().map(Value::Text)
            }
        },
        Value::Date(d) => {
            let year = d.year + if rng.gen_bool(0.5) { 1 } else { -1 };
            tabular::Date::new(year, d.month, d.day).map(Value::Date)
        }
        Value::Bool(b) => Some(Value::Bool(!b)),
        Value::Null => None,
    }
}

/// Abstracts a concrete logical form into a template: column leaves become
/// `cN` (consistent numbering) and constants in value slots become `valN`.
/// Ordinal constants (the `n` of `nth_max`) are part of the logic structure
/// and stay concrete.
pub fn abstract_form(expr: &LfExpr) -> LfTemplate {
    let mut col_map: FxHashMap<String, usize> = FxHashMap::default();
    let mut next_col = 1usize;
    let mut next_val = 1usize;

    fn walk(
        e: &LfExpr,
        parent: Option<(LfOp, usize, bool)>, // (op, slot, at_root)
        col_map: &mut FxHashMap<String, usize>,
        next_col: &mut usize,
        next_val: &mut usize,
    ) -> LfExpr {
        use LfOp::*;
        match e {
            LfExpr::Column(name) => {
                let key = name.to_ascii_lowercase();
                let idx = *col_map.entry(key).or_insert_with(|| {
                    let i = *next_col;
                    *next_col += 1;
                    i
                });
                LfExpr::ColumnHole(idx)
            }
            LfExpr::Const(text) => {
                if let Some((op, slot, at_root)) = parent {
                    let is_filter_val = matches!(
                        op,
                        FilterEq
                            | FilterNotEq
                            | FilterGreater
                            | FilterLess
                            | FilterGreaterEq
                            | FilterLessEq
                            | AllEq
                            | AllNotEq
                            | AllGreater
                            | AllLess
                            | AllGreaterEq
                            | AllLessEq
                            | MostEq
                            | MostNotEq
                            | MostGreater
                            | MostLess
                            | MostGreaterEq
                            | MostLessEq
                    ) && slot == 2;
                    let is_root_cmp_val =
                        at_root && matches!(op, Eq | NotEq | RoundEq | Greater | Less);
                    if is_filter_val || is_root_cmp_val {
                        let i = *next_val;
                        *next_val += 1;
                        return LfExpr::ValueHole(i);
                    }
                    let _ = text;
                }
                e.clone()
            }
            LfExpr::Apply(op, args) => {
                let at_root = parent.is_none();
                LfExpr::Apply(
                    *op,
                    args.iter()
                        .enumerate()
                        .map(|(slot, a)| {
                            walk(a, Some((*op, slot, at_root)), col_map, next_col, next_val)
                        })
                        .collect(),
                )
            }
            other => other.clone(),
        }
    }

    LfTemplate { expr: walk(expr, None, &mut col_map, &mut next_col, &mut next_val) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::evaluate_truth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::from_strings(
            "Teams",
            &[
                vec!["team", "city", "points", "wins"],
                vec!["Reds", "Oslo", "77", "21"],
                vec!["Blues", "Lima", "64", "18"],
                vec!["Greens", "Kyiv", "81", "24"],
                vec!["Golds", "Quito", "59", "15"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    #[test]
    fn instantiate_supported_claim() -> Result<(), Box<dyn std::error::Error>> {
        let tpl =
            LfTemplate::parse("eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }")?;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let claim =
                tpl.instantiate(&table(), &mut rng, true).ok_or("instantiate returned None")?;
            assert!(claim.truth);
            assert!(evaluate_truth(&claim.expr, &table())?);
        }
        Ok(())
    }

    #[test]
    fn instantiate_refuted_claim() -> Result<(), Box<dyn std::error::Error>> {
        let tpl =
            LfTemplate::parse("eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }")?;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let claim =
                tpl.instantiate(&table(), &mut rng, false).ok_or("instantiate returned None")?;
            assert!(!claim.truth);
            assert!(!evaluate_truth(&claim.expr, &table())?);
        }
        Ok(())
    }

    #[test]
    fn instantiate_superlative_template() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = LfTemplate::parse("eq { hop { argmax { all_rows ; c1 } ; c2 } ; val1 }")?;
        let mut rng = StdRng::seed_from_u64(3);
        let claim = tpl.instantiate(&table(), &mut rng, true).ok_or("instantiate returned None")?;
        assert!(claim.truth);
        // c1 must have bound a numeric column.
        let rendered = claim.expr.to_string();
        assert!(rendered.contains("points") || rendered.contains("wins"), "{rendered}");
        Ok(())
    }

    #[test]
    fn instantiate_count_template_both_labels() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = LfTemplate::parse("eq { count { filter_eq { all_rows ; c1 ; val1 } } ; val2 }")?;
        let mut rng = StdRng::seed_from_u64(11);
        let sup = tpl.instantiate(&table(), &mut rng, true).ok_or("instantiate returned None")?;
        assert!(sup.truth);
        let refuted =
            tpl.instantiate(&table(), &mut rng, false).ok_or("instantiate returned None")?;
        assert!(!refuted.truth);
        Ok(())
    }

    #[test]
    fn instantiate_majority_template() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = LfTemplate::parse("most_greater { all_rows ; c1 ; val1 }")?;
        let mut rng = StdRng::seed_from_u64(5);
        // Either label should be reachable within retries on this table.
        let sup = tpl.instantiate(&table(), &mut rng, true);
        assert!(sup.ok_or("instantiate returned None")?.truth);
        Ok(())
    }

    #[test]
    fn instantiate_greater_root() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = LfTemplate::parse("greater { max { all_rows ; c1 } ; val1 }")?;
        let mut rng = StdRng::seed_from_u64(13);
        let sup = tpl.instantiate(&table(), &mut rng, true).ok_or("instantiate returned None")?;
        assert!(sup.truth);
        let refuted =
            tpl.instantiate(&table(), &mut rng, false).ok_or("instantiate returned None")?;
        assert!(!refuted.truth);
        Ok(())
    }

    #[test]
    fn instantiate_ordinal_template() -> Result<(), Box<dyn std::error::Error>> {
        let tpl =
            LfTemplate::parse("eq { hop { nth_argmax { all_rows ; c1 ; val1 } ; c2 } ; val2 }")?;
        let mut rng = StdRng::seed_from_u64(17);
        let claim = tpl.instantiate(&table(), &mut rng, true).ok_or("instantiate returned None")?;
        assert!(claim.truth);
        assert_eq!(claim.expr.logic_type(), LogicType::Ordinal);
        Ok(())
    }

    #[test]
    fn instantiate_fails_without_numeric_column() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings("t", &[vec!["a", "b"], vec!["x", "y"], vec!["z", "w"]])?;
        let tpl = LfTemplate::parse("eq { max { all_rows ; c1 } ; val1 }")?;
        let mut rng = StdRng::seed_from_u64(1);
        assert!(tpl.instantiate(&t, &mut rng, true).is_none());
        assert_eq!(
            tpl.try_instantiate(&t, &mut rng, true),
            Err(LfInstantiateError::NoCompatibleColumn)
        );
        Ok(())
    }

    #[test]
    fn try_instantiate_reports_empty_table() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings("t", &[vec!["a", "b"]])?;
        let tpl = LfTemplate::parse("eq { count { all_rows } ; val1 }")?;
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(tpl.try_instantiate(&t, &mut rng, true), Err(LfInstantiateError::EmptyTable));
        Ok(())
    }

    #[test]
    fn column_holes_numeric_inference() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = LfTemplate::parse("eq { hop { argmax { all_rows ; c1 } ; c2 } ; val1 }")?;
        let holes = tpl.column_holes();
        assert_eq!(holes, vec![(1, true), (2, false)]);
        Ok(())
    }

    #[test]
    fn round_human_two_significant_digits() {
        assert_eq!(round_human(77.0), 77.0); // already 2 significant digits
        assert_eq!(round_human(777.0), 780.0);
        assert_eq!(round_human(48212.0), 48000.0);
        assert_eq!(round_human(0.0), 0.0);
        assert_eq!(round_human(5.0), 5.0);
        assert_eq!(round_human(-1234.0), -1200.0);
    }

    #[test]
    fn abstraction_consistent_numbering() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { hop { filter_eq { all_rows ; team ; Reds } ; points } ; 77 }")?;
        let tpl = abstract_form(&e);
        assert_eq!(
            tpl.signature(),
            "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }"
        );
        Ok(())
    }

    #[test]
    fn abstraction_keeps_ordinals() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { nth_max { all_rows ; points ; 2 } ; 77 }")?;
        let tpl = abstract_form(&e);
        assert_eq!(tpl.signature(), "eq { nth_max { all_rows ; c1 ; 2 } ; val1 }");
        Ok(())
    }

    #[test]
    fn abstraction_dedups_same_structure() -> Result<(), Box<dyn std::error::Error>> {
        let a = parse("eq { count { filter_eq { all_rows ; team ; Reds } } ; 1 }")?;
        let b = parse("eq { count { filter_eq { all_rows ; city ; Oslo } } ; 1 }")?;
        // Constant `1` at root becomes a hole in both.
        assert_eq!(abstract_form(&a).signature(), abstract_form(&b).signature());
        Ok(())
    }

    #[test]
    fn abstract_then_instantiate_roundtrip() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { hop { argmin { all_rows ; wins } ; team } ; Golds }")?;
        let tpl = abstract_form(&e);
        let mut rng = StdRng::seed_from_u64(23);
        let claim = tpl.instantiate(&table(), &mut rng, true).ok_or("instantiate returned None")?;
        assert!(claim.truth);
        Ok(())
    }
}
