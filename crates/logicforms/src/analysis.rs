//! Static analysis of logical-form templates: typechecking without a table.
//!
//! [`analyze`] inspects a parsed [`LfTemplate`] and reports the defects the
//! truth-targeted sampler (`crate::template`) would otherwise turn into
//! deterministic runtime discards, plus the [`SchemaRequirement`] a table
//! must satisfy for instantiation to have any chance of succeeding.
//!
//! Type rules (each mirrors an exact code path of the sampler):
//!
//! * **arity-mismatch** — `op { args }` with the wrong argument count. The
//!   parser enforces arity, so this only fires for programmatically built
//!   templates (`LfTemplate::from_expr`); evaluation fails on every table.
//! * **non-boolean-root** — the root operator does not produce a truth
//!   value, so `evaluate_truth` can never label a claim.
//! * **value-hole-misplaced** — a `valN` hole outside the positions
//!   `fill_inner_values` supports: the value slot (slot 2) of a
//!   filter/all/most operator whose slot 1 is a column (hole), the ordinal
//!   slot of `nth_*`, or an argument of a *root* comparator
//!   (`eq`/`not_eq`/`round_eq`/`greater`/`less`). Anywhere else the sampler
//!   returns `MalformedTemplate` unconditionally.
//! * **root-double-value-hole** — both arguments of a root comparator are
//!   value holes; truth targeting needs a hole-free sibling to execute, so
//!   this too is `MalformedTemplate` on every stream.
//!
//! Requirement rules: every logical form needs one row (the sampler
//! rejects empty tables before drawing anything); numeric-constrained
//! column holes bind only to schema-`Number` columns and are assigned
//! before unconstrained ones, so the table needs at least as many `Number`
//! columns as there are numeric holes and at least as many columns overall
//! as there are distinct holes.

use crate::ast::{LfExpr, LfOp};
use crate::template::LfTemplate;
use tabular::{SchemaRequirement, TemplateAnalysis, TemplateIssue};

/// Statically analyzes a logical-form template. See the module docs for
/// the rules.
pub fn analyze(template: &LfTemplate) -> TemplateAnalysis {
    let mut issues = Vec::new();
    check(template.expr(), "root", true, &mut issues);

    let holes = template.column_holes();
    let requirement = SchemaRequirement {
        min_rows: 1,
        min_cols: holes.len(),
        min_number_cols: holes.iter().filter(|&&(_, numeric)| numeric).count(),
        ..SchemaRequirement::NONE
    };
    if issues.is_empty() {
        let abs = crate::absint::interpret(template);
        // Constant nth ordinals tighten what the table must provide: n
        // numeric cells in one column (nth_max/nth_min) or n rows
        // (nth_argmax/nth_argmin); see crate::absint.
        let tightened = requirement.join(SchemaRequirement {
            min_rows: abs.min_rows,
            min_col_numeric_values: abs.min_col_numeric_values,
            ..SchemaRequirement::NONE
        });
        TemplateAnalysis {
            issues,
            requirement: tightened,
            degeneracies: abs.degeneracies,
            summary: abs.summary,
            survival: abs.survival,
        }
    } else {
        // Malformed templates never reach a bank; the abstract layer stays
        // at its sound default and the cost model writes them off.
        TemplateAnalysis {
            issues,
            requirement,
            degeneracies: Vec::new(),
            summary: tabular::AbsSummary::TOP,
            survival: 0.0,
        }
    }
}

/// Whether `op` can produce the truth value of a claim.
fn is_bool_producer(op: LfOp) -> bool {
    use LfOp::*;
    matches!(
        op,
        Eq | NotEq
            | RoundEq
            | Greater
            | Less
            | And
            | Only
            | AllEq
            | AllNotEq
            | AllGreater
            | AllLess
            | AllGreaterEq
            | AllLessEq
            | MostEq
            | MostNotEq
            | MostGreater
            | MostLess
            | MostGreaterEq
            | MostLessEq
    )
}

/// The 18 filter/all/most operators whose slot 2 is a sampled value.
fn has_value_slot(op: LfOp) -> bool {
    use LfOp::*;
    matches!(
        op,
        FilterEq
            | FilterNotEq
            | FilterGreater
            | FilterLess
            | FilterGreaterEq
            | FilterLessEq
            | AllEq
            | AllNotEq
            | AllGreater
            | AllLess
            | AllGreaterEq
            | AllLessEq
            | MostEq
            | MostNotEq
            | MostGreater
            | MostLess
            | MostGreaterEq
            | MostLessEq
    )
}

fn check(e: &LfExpr, path: &str, at_root: bool, issues: &mut Vec<TemplateIssue>) {
    let LfExpr::Apply(op, args) = e else {
        if at_root {
            issues.push(TemplateIssue::new(
                "non-boolean-root",
                path.to_string(),
                "template root is a leaf, not a truth-producing operator application",
            ));
        }
        return;
    };

    if args.len() != op.arity() {
        issues.push(TemplateIssue::new(
            "arity-mismatch",
            format!("{path}.{op}"),
            format!("{op} takes {} arguments, template supplies {}", op.arity(), args.len()),
        ));
    }
    if at_root && !is_bool_producer(*op) {
        issues.push(TemplateIssue::new(
            "non-boolean-root",
            format!("{path}.{op}"),
            format!(
                "root operator {op} does not produce a truth value; the claim can never be labeled"
            ),
        ));
    }

    let root_comparator = at_root
        && matches!(op, LfOp::Eq | LfOp::NotEq | LfOp::RoundEq | LfOp::Greater | LfOp::Less);
    if root_comparator {
        let hole_args = args.iter().filter(|a| matches!(a, LfExpr::ValueHole(_))).count();
        if hole_args > 1 {
            issues.push(TemplateIssue::new(
                "root-double-value-hole",
                format!("{path}.{op}"),
                "both comparator arguments are value holes; truth targeting needs one \
                 hole-free side to execute",
            ));
        }
    }

    for (slot, a) in args.iter().enumerate() {
        let child_path = format!("{path}.{op}[{slot}]");
        if let LfExpr::ValueHole(i) = a {
            // Mirrors fill_inner_values exactly: root-comparator slots are
            // deferred to truth targeting, filter/all/most value slots and
            // nth_* ordinal slots are sampled, everything else is malformed.
            let filter_val_slot = has_value_slot(*op)
                && slot == 2
                && matches!(args.get(1), Some(LfExpr::Column(_) | LfExpr::ColumnHole(_)));
            let ordinal_slot =
                matches!(op, LfOp::NthArgmax | LfOp::NthArgmin | LfOp::NthMax | LfOp::NthMin)
                    && slot == 2;
            if !(root_comparator || filter_val_slot || ordinal_slot) {
                issues.push(TemplateIssue::new(
                    "value-hole-misplaced",
                    format!("val{i}@{child_path}"),
                    format!(
                        "value hole val{i} sits in a position the sampler cannot fill; \
                         instantiation always fails with MalformedTemplate"
                    ),
                ));
            }
        } else {
            check(a, &child_path, false, issues);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> LfTemplate {
        LfTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}"))
    }

    #[test]
    fn well_typed_template_is_clean_with_exact_requirement() {
        let a = analyze(&parse("eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }"));
        assert!(a.is_clean(), "{:?}", a.issues);
        assert_eq!(
            a.requirement,
            SchemaRequirement { min_rows: 1, min_cols: 2, ..SchemaRequirement::NONE }
        );
    }

    #[test]
    fn numeric_holes_require_number_columns() {
        let a = analyze(&parse("eq { hop { argmax { all_rows ; c1 } ; c2 } ; val1 }"));
        assert!(a.is_clean());
        assert_eq!(a.requirement.min_number_cols, 1);
        assert_eq!(a.requirement.min_cols, 2);
        assert_eq!(a.requirement.min_rows, 1);
    }

    #[test]
    fn non_boolean_root_is_flagged() {
        let a = analyze(&parse("count { all_rows }"));
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, "non-boolean-root");
    }

    #[test]
    fn leaf_root_is_flagged() {
        let a = analyze(&LfTemplate::from_expr(LfExpr::Const("sig".into())));
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, "non-boolean-root");
    }

    #[test]
    fn misplaced_value_hole_is_flagged() {
        // A value hole under a nested (non-root) comparator cannot be
        // filled by either the inner sampler or truth targeting.
        let a = analyze(&parse("and { eq { count { all_rows } ; val1 } ; only { all_rows } }"));
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, "value-hole-misplaced");
        assert!(a.issues[0].locus.starts_with("val1@"), "{}", a.issues[0].locus);
    }

    #[test]
    fn double_root_value_hole_is_flagged() {
        let a = analyze(&parse("eq { val1 ; val2 }"));
        assert_eq!(a.issues[0].code, "root-double-value-hole");
    }

    #[test]
    fn arity_mismatch_is_flagged_for_programmatic_templates() {
        let a = analyze(&LfTemplate::from_expr(LfExpr::Apply(
            LfOp::Eq,
            vec![
                LfExpr::Apply(LfOp::Count, vec![LfExpr::AllRows]),
                LfExpr::Const("1".into()),
                LfExpr::Const("2".into()),
            ],
        )));
        assert!(a.issues.iter().any(|i| i.code == "arity-mismatch"), "{:?}", a.issues);
    }

    #[test]
    fn schema_infeasible_requirement_is_reported_not_flagged() {
        // Two numeric holes: fine as a template, narrows which tables fit.
        let a = analyze(&parse("greater { max { all_rows ; c1 } ; min { all_rows ; c2 } }"));
        assert!(a.is_clean(), "{:?}", a.issues);
        assert_eq!(a.requirement.min_number_cols, 2);
    }
}
