//! Parser for the `func { arg ; arg }` logical-form surface syntax.
//!
//! Leaves are raw strings: `all_rows` becomes [`LfExpr::AllRows`], `cN` /
//! `valN` become template holes, and any other string becomes a column or
//! constant leaf. Column-vs-constant is positional: the grammar of every
//! operator determines which argument slots are columns, so the parser
//! resolves leaf kinds after building the raw tree.

use crate::ast::{LfExpr, LfOp};
use std::fmt;

/// Parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfParseError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LfParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "logical form parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LfParseError {}

/// Parses a logical form string, e.g.
/// `eq { hop { argmax { all_rows ; score } ; name } ; alpha }`.
pub fn parse(input: &str) -> Result<LfExpr, LfParseError> {
    let mut p = P { s: input.as_bytes(), i: 0 };
    p.skip_ws();
    let raw = p.node()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(LfParseError { pos: p.i, message: "trailing input".into() });
    }
    resolve_leaf_kinds(raw, LeafKind::Other)
}

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

/// Raw tree before leaf-kind resolution.
enum Raw {
    Apply(String, Vec<Raw>, usize),
    Leaf(String, usize),
}

impl<'a> P<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    /// Parses one node: `ident { args }` or a bare leaf token.
    fn node(&mut self) -> Result<Raw, LfParseError> {
        let start = self.i;
        let text = self.leaf_text()?;
        self.skip_ws();
        if self.i < self.s.len() && self.s[self.i] == b'{' {
            self.i += 1;
            let mut args = Vec::new();
            loop {
                self.skip_ws();
                if self.i >= self.s.len() {
                    return Err(LfParseError { pos: start, message: "unterminated '{'".into() });
                }
                if self.s[self.i] == b'}' {
                    self.i += 1;
                    break;
                }
                args.push(self.node()?);
                self.skip_ws();
                if self.i < self.s.len() && self.s[self.i] == b';' {
                    self.i += 1;
                }
            }
            Ok(Raw::Apply(text.trim().to_string(), args, start))
        } else {
            Ok(Raw::Leaf(text.trim().to_string(), start))
        }
    }

    /// Reads leaf text up to a structural character, allowing internal
    /// spaces ("total deputies", "January 5, 1999" would need escaping of
    /// commas — values with `;{}` are not supported by the surface syntax).
    fn leaf_text(&mut self) -> Result<String, LfParseError> {
        let start = self.i;
        while self.i < self.s.len() && !matches!(self.s[self.i], b'{' | b'}' | b';') {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| LfParseError { pos: start, message: "invalid utf8".into() })?;
        if text.trim().is_empty() {
            return Err(LfParseError { pos: start, message: "expected token".into() });
        }
        Ok(text.to_string())
    }
}

/// What kind of leaf an argument slot expects.
#[derive(Clone, Copy, PartialEq)]
enum LeafKind {
    Column,
    Other,
}

/// Per-operator slot kinds (index → expected leaf kind for leaf arguments).
fn slot_kinds(op: LfOp) -> &'static [LeafKind] {
    use LeafKind::*;
    use LfOp::*;
    match op {
        // view ; col ; val
        FilterEq | FilterNotEq | FilterGreater | FilterLess | FilterGreaterEq | FilterLessEq
        | AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq | MostEq
        | MostNotEq | MostGreater | MostLess | MostGreaterEq | MostLessEq => {
            &[Other, Column, Other]
        }
        // view ; col
        FilterAll | Argmax | Argmin | Max | Min | Sum | Avg => &[Other, Column],
        // view ; col ; n
        NthArgmax | NthArgmin | NthMax | NthMin => &[Other, Column, Other],
        // row ; col
        Hop => &[Other, Column],
        // everything else: no column slots
        Count | Diff | Eq | NotEq | RoundEq | Greater | Less | And | Only => &[Other, Other, Other],
    }
}

fn resolve_leaf_kinds(raw: Raw, kind: LeafKind) -> Result<LfExpr, LfParseError> {
    match raw {
        Raw::Apply(name, args, pos) => {
            let op = LfOp::from_name(&name).ok_or_else(|| LfParseError {
                pos,
                message: format!("unknown operator `{name}`"),
            })?;
            if args.len() != op.arity() {
                return Err(LfParseError {
                    pos,
                    message: format!("`{name}` expects {} args, got {}", op.arity(), args.len()),
                });
            }
            let kinds = slot_kinds(op);
            let resolved: Result<Vec<LfExpr>, LfParseError> = args
                .into_iter()
                .enumerate()
                .map(|(i, a)| {
                    resolve_leaf_kinds(a, kinds.get(i).copied().unwrap_or(LeafKind::Other))
                })
                .collect();
            Ok(LfExpr::Apply(op, resolved?))
        }
        Raw::Leaf(text, _pos) => Ok(classify_leaf(&text, kind)),
    }
}

fn classify_leaf(text: &str, kind: LeafKind) -> LfExpr {
    if text == "all_rows" {
        return LfExpr::AllRows;
    }
    if let Some(idx) = strip_indexed(text, 'c') {
        return LfExpr::ColumnHole(idx);
    }
    if let Some(idx) = text.strip_prefix("val").and_then(|d| {
        if !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()) {
            d.parse().ok()
        } else {
            None
        }
    }) {
        return LfExpr::ValueHole(idx);
    }
    match kind {
        LeafKind::Column => LfExpr::Column(text.to_string()),
        LeafKind::Other => LfExpr::Const(text.to_string()),
    }
}

fn strip_indexed(text: &str, prefix: char) -> Option<usize> {
    let rest = text.strip_prefix(prefix)?;
    if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
        rest.parse().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LfExpr::*;

    #[test]
    fn parse_paper_example() -> Result<(), Box<dyn std::error::Error>> {
        // From paper §IV-B: eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }
        let e = parse("eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }")?;
        assert!(e.has_holes());
        match &e {
            Apply(LfOp::Eq, args) => {
                assert!(matches!(args[1], ValueHole(2)));
                match &args[0] {
                    Apply(LfOp::Hop, hop_args) => {
                        assert!(matches!(hop_args[1], ColumnHole(2)));
                    }
                    other => panic!("expected hop, got {other:?}"),
                }
            }
            other => panic!("expected eq, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn parse_concrete_form() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("eq { hop { argmax { all_rows ; score } ; name } ; alpha }")?;
        assert!(!e.has_holes());
        // `score` and `name` are column slots; `alpha` is a constant.
        let mut cols = Vec::new();
        let mut consts = Vec::new();
        e.visit(&mut |n| match n {
            Column(c) => cols.push(c.clone()),
            Const(v) => consts.push(v.clone()),
            _ => {}
        });
        assert_eq!(cols, vec!["score", "name"]);
        assert_eq!(consts, vec!["alpha"]);
        Ok(())
    }

    #[test]
    fn roundtrip_display_parse() -> Result<(), Box<dyn std::error::Error>> {
        let forms = [
            "eq { count { filter_eq { all_rows ; team ; reds } } ; 3 }",
            "most_greater { all_rows ; attendance ; 1000 }",
            "and { eq { 1 ; 1 } ; less { 2 ; 3 } }",
            "eq { nth_max { all_rows ; score ; 2 } ; 17 }",
            "only { filter_eq { all_rows ; city ; oslo } }",
            "round_eq { avg { all_rows ; pts } ; 12.5 }",
            "eq { diff { hop { argmax { all_rows ; score } ; score } ; hop { argmin { all_rows ; score } ; score } } ; 15 }",
        ];
        for f in forms {
            let e = parse(f)?;
            let rendered = e.to_string();
            let reparsed = parse(&rendered)?;
            assert_eq!(e, reparsed, "roundtrip failed for {f}");
        }
        Ok(())
    }

    #[test]
    fn column_names_with_spaces() -> Result<(), Box<dyn std::error::Error>> {
        let e = parse("max { all_rows ; total deputies }")?;
        match e {
            Apply(LfOp::Max, args) => assert_eq!(args[1], Column("total deputies".into())),
            other => panic!("{other:?}"),
        }
        Ok(())
    }

    #[test]
    fn arity_errors() {
        assert!(parse("count { all_rows ; extra }").is_err());
        assert!(parse("hop { all_rows }").is_err());
        assert!(parse("eq { 1 }").is_err());
    }

    #[test]
    fn unknown_operator_error() {
        let err = parse("frobnicate { all_rows }").unwrap_err();
        assert!(err.message.contains("unknown operator"));
    }

    #[test]
    fn unterminated_brace_error() {
        assert!(parse("count { all_rows").is_err());
    }

    #[test]
    fn trailing_input_error() {
        assert!(parse("count { all_rows } junk { all_rows }").is_err());
    }
}
