//! Abstract interpretation of logical-form templates over the
//! `tabular::absdom` lattices.
//!
//! [`interpret`] evaluates a template bottom-up, joining across all hole
//! assignments and tables: a column hole denotes "any (numeric) column", a
//! value hole "any sampled cell value", `all_rows` "any row set". Each
//! node's abstract value over-approximates every runtime [`LfValue`](crate::LfValue) the
//! evaluator (`crate::exec`) can produce for it — views map to the
//! cardinality lattice [`Card`], scalars to an interval of possible
//! `Value::as_number` readings plus a may-be-non-numeric flag, booleans to
//! [`Kleene`]. Nodes that provably *always* error (a constant ordinal that
//! is not a positive integer) propagate bottom: evaluation is strict, so
//! one always-erroring operand kills the whole claim for both truth
//! targets.
//!
//! Two refinements sharpen the product domain:
//!
//! * **Shared-subtree identity** — two syntactically identical,
//!   value-hole-free subtrees evaluate to the same runtime value (column
//!   holes are fine: a repeated `cN` binds to one column; value holes are
//!   NOT: `fill_inner_values` samples each occurrence independently with
//!   per-column used-value exclusion, so repeated `valN` get *distinct*
//!   values). Hence `eq {{ X ; X }}` is always true, `greater {{ X ; X }}`
//!   always false (`loosely_equals` is reflexive for every `Value`
//!   variant, and `num_cmp` collapses the equal pair before comparing).
//! * **Near-equality collapse** — `num_cmp` turns nearly-equal operands
//!   into an exact tie before strict comparison, so `greater`/`less` can
//!   be convicted *false* (disjoint-or-tied intervals stay false under the
//!   collapse) but never *true*: an interval gap can always hide a
//!   nearly-equal pair.
//!
//! Convictions: **A001** at a root whose Kleene truth is constant (or
//! bottom: the claim errors everywhere), **A002** for an `and` branch with
//! statically constant truth or a repeated identical conjunct, **A003**
//! for a filter that re-applies its direct inner filter verbatim (the
//! second application keeps every surviving row). The pass also returns
//! requirement tightenings — a constant ordinal `n` in `nth_max`/`nth_min`
//! needs one column with ≥ n numeric cells; in `nth_argmax`/`nth_argmin`
//! it needs ≥ n rows — and the per-construct funnel-survival estimate.

use crate::ast::{LfExpr, LfOp};
use crate::template::LfTemplate;
use tabular::absdom::{AbsSummary, Card, Interval, Kleene};
use tabular::{nearly_equal, TemplateIssue, Value};

/// The abstract layer [`crate::analysis::analyze`] merges into its
/// `TemplateAnalysis`.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsResult {
    pub summary: AbsSummary,
    pub degeneracies: Vec<TemplateIssue>,
    pub survival: f64,
    /// Some single column must hold at least this many numeric cells.
    pub min_col_numeric_values: usize,
    /// The table must hold at least this many rows.
    pub min_rows: usize,
}

/// Abstract scalar: the interval of possible `Value::as_number` readings
/// plus whether a reading-less value (text, null) is possible. The pair
/// `(EMPTY, false)` is bottom: no scalar is ever produced.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AbsScalar {
    num: Interval,
    non_num: bool,
}

impl AbsScalar {
    /// Any cell value: numeric readings are finite (`Value::parse` keeps
    /// only finite numbers; dates read as day ordinals; bools as 0/1).
    const CELL: AbsScalar = AbsScalar { num: Interval::FINITE, non_num: true };

    fn never(self) -> bool {
        self.num.is_empty() && !self.non_num
    }

    /// The exact abstraction of a constant leaf.
    fn of_const(text: &str) -> AbsScalar {
        match Value::parse(text).as_number() {
            Some(n) => AbsScalar { num: Interval::point(n), non_num: false },
            None => AbsScalar { num: Interval::EMPTY, non_num: true },
        }
    }
}

/// Abstract runtime value of a node (mirrors `LfValue`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum AbsVal {
    View(Card),
    Row,
    Scalar(AbsScalar),
    Bool(Kleene),
}

/// `true` when the subtree contains no value hole, so two syntactically
/// equal copies denote the same runtime value (see module docs).
fn value_hole_free(e: &LfExpr) -> bool {
    match e {
        LfExpr::ValueHole(_) => false,
        LfExpr::Apply(_, args) => args.iter().all(value_hole_free),
        _ => true,
    }
}

fn same_subtree(a: &LfExpr, b: &LfExpr) -> bool {
    a == b && value_hole_free(a)
}

/// Can `loosely_equals` hold for some pair drawn from the two scalars? The
/// closest numeric pair sits at the facing interval bounds, and
/// `nearly_equal`'s relative tolerance grows strictly slower than the gap,
/// so testing the boundary pair is exhaustive.
fn maybe_loose_equal(a: AbsScalar, b: AbsScalar) -> bool {
    if a.non_num || b.non_num {
        // Text-vs-text (case-insensitive), null-vs-null, etc. can match.
        return true;
    }
    let (x, y) = (a.num, b.num);
    if x.is_empty() || y.is_empty() {
        return false;
    }
    if x.hi < y.lo {
        nearly_equal(x.hi, y.lo)
    } else if y.hi < x.lo {
        nearly_equal(y.hi, x.lo)
    } else {
        true
    }
}

/// Same question under `round_eq`'s 1% relative tolerance.
fn maybe_round_equal(a: AbsScalar, b: AbsScalar) -> bool {
    if a.non_num || b.non_num {
        return true;
    }
    let (x, y) = (a.num, b.num);
    if x.is_empty() || y.is_empty() {
        return false;
    }
    let close = |p: f64, q: f64| (p - q).abs() <= 0.01 * p.abs().max(q.abs()).max(1.0);
    if x.hi < y.lo {
        close(x.hi, y.lo)
    } else if y.hi < x.lo {
        close(y.hi, x.lo)
    } else {
        true
    }
}

/// The Kleene verdict of a root comparator. `identical` marks provably
/// same-valued argument subtrees.
fn cmp_kleene(op: LfOp, a: AbsScalar, b: AbsScalar, identical: bool) -> Kleene {
    if a.never() || b.never() {
        return Kleene::Never;
    }
    match op {
        LfOp::Eq => {
            if identical {
                Kleene::True
            } else if !maybe_loose_equal(a, b) {
                Kleene::False
            } else {
                Kleene::Unknown
            }
        }
        LfOp::NotEq => {
            if identical {
                Kleene::False
            } else if !maybe_loose_equal(a, b) {
                Kleene::True
            } else {
                Kleene::Unknown
            }
        }
        LfOp::RoundEq => {
            if identical {
                Kleene::True
            } else if !maybe_round_equal(a, b) {
                Kleene::False
            } else {
                Kleene::Unknown
            }
        }
        // `num_cmp` yields false on any non-numeric operand and collapses
        // near-equal pairs, so only the always-false direction is sound.
        LfOp::Greater => {
            if identical || a.num.is_empty() || b.num.is_empty() || a.num.hi <= b.num.lo {
                Kleene::False
            } else {
                Kleene::Unknown
            }
        }
        LfOp::Less => {
            if identical || a.num.is_empty() || b.num.is_empty() || a.num.lo >= b.num.hi {
                Kleene::False
            } else {
                Kleene::Unknown
            }
        }
        _ => Kleene::Unknown,
    }
}

/// Per-walk state: convictions, requirement tightenings and the survival
/// product.
struct Walk {
    degeneracies: Vec<TemplateIssue>,
    min_col_numeric_values: usize,
    min_rows: usize,
    survival: f64,
}

/// The abstract ordinal of an `nth_*` slot-2 argument: the interval of
/// positive-integer readings, or `None` when the slot provably always
/// fails `eval_ordinal`'s (≥ 1, integral) filter.
fn ordinal(e: &LfExpr, w: &mut Walk) -> Option<Interval> {
    let sc = match e {
        LfExpr::ValueHole(_) => AbsScalar::CELL,
        LfExpr::Const(text) => AbsScalar::of_const(text),
        other => match eval_abs(other, w) {
            Some(AbsVal::Scalar(s)) => s,
            Some(AbsVal::Bool(_)) => AbsScalar { num: Interval::new(0.0, 1.0), non_num: false },
            _ => return None,
        },
    };
    if sc.num.is_empty() {
        return None;
    }
    let clamped = Interval { lo: sc.num.lo.max(1.0), hi: sc.num.hi.min(f64::MAX) };
    if clamped.is_empty() {
        // Every numeric reading is < 1 (and non-numeric readings fail the
        // filter outright): always a TypeMismatch error.
        return None;
    }
    Some(clamped)
}

fn scalar_of(v: Option<AbsVal>) -> Option<AbsScalar> {
    match v {
        Some(AbsVal::Scalar(s)) => Some(s),
        // eval_scalar coerces booleans to Value::Bool (numeric 0/1).
        Some(AbsVal::Bool(Kleene::Never)) | None => None,
        Some(AbsVal::Bool(_)) => Some(AbsScalar { num: Interval::new(0.0, 1.0), non_num: false }),
        // Row/View in scalar position: TypeMismatch on every table.
        _ => None,
    }
}

fn view_of(v: Option<AbsVal>) -> Option<Card> {
    match v {
        Some(AbsVal::View(c)) => Some(c),
        Some(AbsVal::Row) => Some(Card { can_empty: false, can_one: true, can_many: false }),
        _ => None,
    }
}

/// One comparison column/value slot pair of the filter/all/most families:
/// the abstract right-hand scalar.
fn rhs_scalar(e: &LfExpr, w: &mut Walk) -> Option<AbsScalar> {
    match e {
        LfExpr::ValueHole(_) => Some(AbsScalar::CELL),
        LfExpr::Const(text) => Some(AbsScalar::of_const(text)),
        other => scalar_of(eval_abs(other, w)),
    }
}

/// Whether re-applying `outer` directly on top of `inner` keeps every row
/// the inner filter admitted (the A003 vacuous-predicate shape).
fn vacuous_refilter(op: LfOp, args: &[LfExpr]) -> bool {
    let LfExpr::Apply(inner_op, inner_args) = &args[0] else { return false };
    if *inner_op != op {
        return false;
    }
    match op {
        LfOp::FilterAll => inner_args.len() == 2 && args.len() == 2 && inner_args[1] == args[1],
        LfOp::FilterEq
        | LfOp::FilterNotEq
        | LfOp::FilterGreater
        | LfOp::FilterLess
        | LfOp::FilterGreaterEq
        | LfOp::FilterLessEq => {
            inner_args.len() == 3
                && args.len() == 3
                && inner_args[1] == args[1]
                && same_subtree(&inner_args[2], &args[2])
        }
        _ => false,
    }
}

/// The core abstract evaluator. `None` is bottom: the node provably errors
/// on every table and hole assignment.
fn eval_abs(e: &LfExpr, w: &mut Walk) -> Option<AbsVal> {
    use LfOp::*;
    let LfExpr::Apply(op, args) = e else {
        return Some(match e {
            LfExpr::AllRows => AbsVal::View(Card::ANY),
            // A column name used as a scalar is its text; a value hole any
            // sampled cell.
            LfExpr::Column(_) | LfExpr::ValueHole(_) => AbsVal::Scalar(AbsScalar::CELL),
            LfExpr::ColumnHole(_) => AbsVal::Scalar(AbsScalar::CELL),
            LfExpr::Const(text) => AbsVal::Scalar(AbsScalar::of_const(text)),
            LfExpr::Apply(..) => AbsVal::Scalar(AbsScalar::CELL),
        });
    };
    if args.len() != op.arity() {
        // Malformed; the typechecker owns the report. Stay sound.
        return Some(AbsVal::Scalar(AbsScalar::CELL));
    }
    match op {
        FilterEq | FilterNotEq | FilterGreater | FilterLess | FilterGreaterEq | FilterLessEq
        | FilterAll => {
            if vacuous_refilter(*op, args) {
                w.degeneracies.push(TemplateIssue::new(
                    "A003",
                    format!("{op}"),
                    format!(
                        "filter re-applies its direct inner `{op}` with the same column and \
                         value; the outer predicate keeps every surviving row"
                    ),
                ));
            }
            w.survival *= 0.96;
            let view = view_of(eval_abs(&args[0], w))?;
            if *op != FilterAll {
                rhs_scalar(&args[2], w)?;
            }
            Some(AbsVal::View(view.filter()))
        }
        Argmax | Argmin => {
            w.survival *= 0.97;
            view_of(eval_abs(&args[0], w))?;
            Some(AbsVal::Row)
        }
        NthArgmax | NthArgmin => {
            w.survival *= 0.90;
            view_of(eval_abs(&args[0], w))?;
            let n = ordinal(&args[2], w)?;
            if n.is_point() {
                // n non-null cells in the keyed column need n rows.
                w.min_rows = w.min_rows.max(n.lo as usize);
            }
            Some(AbsVal::Row)
        }
        Count => {
            let view = view_of(eval_abs(&args[0], w))?;
            Some(AbsVal::Scalar(AbsScalar { num: view.count_interval(), non_num: false }))
        }
        Only => {
            let view = view_of(eval_abs(&args[0], w))?;
            w.survival *= 0.95;
            let truth = match (view.can_one, view.can_empty || view.can_many) {
                (true, true) => Kleene::Unknown,
                (true, false) => Kleene::True,
                (false, _) => Kleene::False,
            };
            Some(AbsVal::Bool(truth))
        }
        Max | Min => {
            w.survival *= 0.97;
            view_of(eval_abs(&args[0], w))?;
            // Max/min of a non-empty finite gather stays finite.
            Some(AbsVal::Scalar(AbsScalar { num: Interval::FINITE, non_num: false }))
        }
        Sum | Avg => {
            w.survival *= 0.97;
            view_of(eval_abs(&args[0], w))?;
            // Summing many finite cells can overflow; Value::number turns
            // the non-finite result into Null (a reading-less value).
            Some(AbsVal::Scalar(AbsScalar { num: Interval::FINITE, non_num: true }))
        }
        NthMax | NthMin => {
            w.survival *= 0.90;
            view_of(eval_abs(&args[0], w))?;
            let n = ordinal(&args[2], w)?;
            if n.is_point() {
                // The gather needs n numeric cells from one column.
                w.min_col_numeric_values = w.min_col_numeric_values.max(n.lo as usize);
            }
            Some(AbsVal::Scalar(AbsScalar { num: Interval::FINITE, non_num: false }))
        }
        Hop => {
            w.survival *= 0.98;
            match eval_abs(&args[0], w)? {
                AbsVal::Row | AbsVal::View(_) => {}
                _ => return None,
            }
            Some(AbsVal::Scalar(AbsScalar::CELL))
        }
        Diff => {
            w.survival *= 0.95;
            let a = scalar_of(eval_abs(&args[0], w))?;
            let b = scalar_of(eval_abs(&args[1], w))?;
            let raw = a.num.sub(b.num);
            if raw.is_empty() {
                // Neither side ever has a numeric reading: NonNumeric on
                // every table.
                return None;
            }
            // Value::number maps a non-finite difference to Null.
            let num = Interval { lo: raw.lo.max(f64::MIN), hi: raw.hi.min(f64::MAX) };
            let overflowed = raw.lo < f64::MIN || raw.hi > f64::MAX;
            Some(AbsVal::Scalar(AbsScalar { num, non_num: overflowed }))
        }
        Eq | NotEq | RoundEq | Greater | Less => {
            w.survival *= 0.93;
            let a = rhs_scalar(&args[0], w)?;
            let b = rhs_scalar(&args[1], w)?;
            let truth = cmp_kleene(*op, a, b, same_subtree(&args[0], &args[1]));
            if truth == Kleene::Never {
                return None;
            }
            Some(AbsVal::Bool(truth))
        }
        And => {
            w.survival *= 0.90;
            let a = match eval_abs(&args[0], w)? {
                AbsVal::Bool(k) => k,
                _ => return None,
            };
            let b = match eval_abs(&args[1], w)? {
                AbsVal::Bool(k) => k,
                _ => return None,
            };
            if same_subtree(&args[0], &args[1]) {
                w.degeneracies.push(TemplateIssue::new(
                    "A002",
                    "and",
                    "both conjuncts are the same value-hole-free subtree; one branch is \
                     redundant",
                ));
            }
            for (slot, k) in [(0usize, a), (1usize, b)] {
                if k.is_constant() {
                    w.degeneracies.push(TemplateIssue::new(
                        "A002",
                        format!("and[{slot}]"),
                        format!("conjunct is statically always {k}; the branch is dead"),
                    ));
                }
            }
            let truth = a.and(b);
            if truth == Kleene::Never {
                return None;
            }
            Some(AbsVal::Bool(truth))
        }
        AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq | MostEq | MostNotEq
        | MostGreater | MostLess | MostGreaterEq | MostLessEq => {
            w.survival *= 0.90;
            let view = view_of(eval_abs(&args[0], w))?;
            let rhs = rhs_scalar(&args[2], w)?;
            if rhs.never() || view == Card::EMPTY_ONLY {
                // Empty view is an Empty error; a valueless rhs errors too.
                return None;
            }
            let ordered = matches!(
                op,
                AllGreater
                    | AllLess
                    | AllGreaterEq
                    | AllLessEq
                    | MostGreater
                    | MostLess
                    | MostGreaterEq
                    | MostLessEq
            );
            // num_cmp is false whenever the rhs has no numeric reading, so
            // an always-non-numeric rhs makes every row a non-match.
            let truth = if ordered && rhs.num.is_empty() { Kleene::False } else { Kleene::Unknown };
            Some(AbsVal::Bool(truth))
        }
    }
}

/// Abstractly interprets a (well-formed) template. See the module docs.
pub fn interpret(template: &LfTemplate) -> AbsResult {
    let mut w =
        Walk { degeneracies: Vec::new(), min_col_numeric_values: 0, min_rows: 0, survival: 0.85 };
    let root = eval_abs(template.expr(), &mut w);
    let truth = match root {
        Some(AbsVal::Bool(k)) => k,
        // Non-boolean or always-erroring root: never labels a claim.
        _ => Kleene::Never,
    };
    if truth.is_constant() {
        w.degeneracies.push(TemplateIssue::new(
            "A001",
            "root",
            format!("claim is statically always {truth}; every generated label is a tautology"),
        ));
    } else if truth == Kleene::Never {
        w.degeneracies.push(TemplateIssue::new(
            "A001",
            "root",
            "claim errors on every table; it can never be labeled".to_string(),
        ));
        w.survival = 0.0;
    }
    let summary = AbsSummary {
        // A claim's only output is its truth value.
        value: Interval::EMPTY,
        truth,
        rows: Card::NEVER,
    };
    AbsResult {
        summary,
        degeneracies: w.degeneracies,
        survival: w.survival.clamp(0.0, 1.0),
        min_col_numeric_values: w.min_col_numeric_values,
        min_rows: w.min_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> LfTemplate {
        LfTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}"))
    }

    fn run(text: &str) -> AbsResult {
        interpret(&parse(text))
    }

    #[test]
    fn healthy_templates_have_no_convictions() {
        for t in [
            "eq { count { filter_eq { all_rows ; c1 ; val1 } } ; val2 }",
            "eq { hop { argmax { all_rows ; c1 } ; c2 } ; val1 }",
            "most_greater { all_rows ; c1 ; val1 }",
            "only { filter_eq { all_rows ; c1 ; val1 } }",
            "and { greater { max { all_rows ; c1 } ; val1 } ; only { filter_eq { all_rows ; c2 ; val2 } } }",
            "round_eq { avg { all_rows ; c1 } ; val1 }",
        ] {
            let r = run(t);
            assert!(r.degeneracies.is_empty(), "{t}: {:?}", r.degeneracies);
            assert_eq!(r.summary.truth, Kleene::Unknown, "{t}");
            assert!(r.survival > 0.0 && r.survival < 1.0, "{t}: {}", r.survival);
        }
    }

    #[test]
    fn identical_value_hole_free_comparator_args_are_constant() {
        let t = run("eq { count { filter_all { all_rows ; c1 } } ; count { filter_all { all_rows ; c1 } } }");
        assert_eq!(t.summary.truth, Kleene::True);
        assert_eq!(t.degeneracies[0].code, "A001");

        let f = run("greater { max { all_rows ; c1 } ; max { all_rows ; c1 } }");
        assert_eq!(f.summary.truth, Kleene::False);
        assert_eq!(f.degeneracies[0].code, "A001");
    }

    #[test]
    fn repeated_value_holes_are_not_identical() {
        // Each val1 occurrence samples independently (with exclusion), so
        // nothing is constant here.
        let r = run("eq { count { filter_eq { all_rows ; c1 ; val1 } } ; val2 }");
        assert!(r.degeneracies.is_empty());
        let r2 = run("all_eq { filter_eq { all_rows ; c1 ; val1 } ; c1 ; val1 }");
        assert!(r2.degeneracies.is_empty(), "{:?}", r2.degeneracies);
    }

    #[test]
    fn count_interval_decides_ordered_comparators() {
        // count ∈ [0, ∞): never less than 0.
        let r = run("less { count { filter_all { all_rows ; c1 } } ; 0 }");
        assert_eq!(r.summary.truth, Kleene::False);
        assert_eq!(r.degeneracies[0].code, "A001");
        // But count vs a sampled value is genuinely open.
        let open = run("greater { count { filter_all { all_rows ; c1 } } ; val1 }");
        assert_eq!(open.summary.truth, Kleene::Unknown);
    }

    #[test]
    fn text_constant_against_numeric_comparator_is_always_false() {
        // num_cmp needs numeric readings on both sides.
        let r = run("greater { max { all_rows ; c1 } ; apples }");
        assert_eq!(r.summary.truth, Kleene::False);
        assert_eq!(r.degeneracies[0].code, "A001");
        let m = run("most_greater { all_rows ; c1 ; apples }");
        assert_eq!(m.summary.truth, Kleene::False);
    }

    #[test]
    fn invalid_constant_ordinal_is_always_error() {
        let r = run("eq { nth_max { all_rows ; c1 ; 0 } ; val1 }");
        assert_eq!(r.summary.truth, Kleene::Never);
        assert_eq!(r.degeneracies[0].code, "A001");
        assert_eq!(r.survival, 0.0);
    }

    #[test]
    fn constant_ordinals_tighten_requirements() {
        let r = run("eq { nth_max { all_rows ; c1 ; 3 } ; val1 }");
        assert_eq!(r.min_col_numeric_values, 3);
        assert_eq!(r.min_rows, 0);
        let a = run("eq { hop { nth_argmax { all_rows ; c1 ; 2 } ; c2 } ; val1 }");
        assert_eq!(a.min_rows, 2);
        assert_eq!(a.min_col_numeric_values, 0);
        // Hole ordinals tighten nothing.
        let h = run("eq { nth_max { all_rows ; c1 ; val1 } ; val2 }");
        assert_eq!(h.min_col_numeric_values, 0);
    }

    #[test]
    fn redundant_and_branch_is_a002() {
        let r = run(
            "and { only { filter_all { all_rows ; c1 } } ; only { filter_all { all_rows ; c1 } } }",
        );
        assert!(r.degeneracies.iter().any(|d| d.code == "A002"), "{:?}", r.degeneracies);
        // Root truth itself is still unknown.
        assert_eq!(r.summary.truth, Kleene::Unknown);
    }

    #[test]
    fn constant_conjunct_is_a002_and_propagates() {
        let r = run(
            "and { greater { max { all_rows ; c1 } ; max { all_rows ; c1 } } ; only { filter_all { all_rows ; c2 } } }",
        );
        // The left conjunct is always false, so the claim is too.
        assert!(r.degeneracies.iter().any(|d| d.code == "A002"));
        assert!(r.degeneracies.iter().any(|d| d.code == "A001"));
        assert_eq!(r.summary.truth, Kleene::False);
    }

    #[test]
    fn vacuous_refilter_is_a003() {
        let r = run("only { filter_eq { filter_eq { all_rows ; c1 ; apples } ; c1 ; apples } }");
        assert!(r.degeneracies.iter().any(|d| d.code == "A003"), "{:?}", r.degeneracies);
        // Value-hole refilters sample two distinct values: not vacuous.
        let ok = run("only { filter_eq { filter_eq { all_rows ; c1 ; val1 } ; c1 ; val1 } }");
        assert!(ok.degeneracies.is_empty(), "{:?}", ok.degeneracies);
        // filter_all twice over the same column is idempotent.
        let fa = run("only { filter_all { filter_all { all_rows ; c1 } ; c1 } }");
        assert!(fa.degeneracies.iter().any(|d| d.code == "A003"));
    }

    #[test]
    fn survival_orders_construct_risk() {
        let cheap = run("only { filter_eq { all_rows ; c1 ; val1 } }").survival;
        let pricey = run(
            "and { eq { nth_max { all_rows ; c1 ; 2 } ; val1 } ; only { filter_eq { all_rows ; c2 ; val2 } } }",
        )
        .survival;
        assert!(cheap > pricey, "{cheap} vs {pricey}");
    }
}
