//! Canonical forms for logical-form templates (cross-template dedup).
//!
//! Two templates are *equivalent* when every seed instantiates them to the
//! same claim truth and highlight set — the witnessable notion
//! `uctr::analysis` verifies differentially. The canonical form applies
//! only rewrites that provably preserve the per-seed draw stream:
//!
//! * `less { a ; b }` mirrors to `greater { b ; a }` — the executor's
//!   `num_cmp` is an exact mirror (near-equal collapses to `f(0,0)` on
//!   both, `None` propagation is symmetric) and the truth-targeting
//!   perturbation table mirrors the same way (`(Less, side)` ≡
//!   `(Greater, 1 - side)`).
//! * The symmetric comparators `eq` / `not_eq` / `round_eq` (loose
//!   equality is symmetric; `round_eq`'s tolerance scale is the max of
//!   both magnitudes) and the conjunction `and` sort their two children
//!   under a hole-index-blind structural order.
//!
//! Both rewrites swap children, which reorders the column-hole scan and
//! the inner value draws — so they fire only under a *swap-safety* rule:
//! at most one child contains column holes and at most one child contains
//! draw sites (inner value holes; a bare root-comparator `valN` is
//! excluded because instantiation locates it by `position(..)` on either
//! side and defers it past all sampling). Unsafe pairs simply stay
//! unsorted: the equivalence classes get finer, never wrong.
//!
//! Holes are alpha-renamed into first-use order afterwards. The DSL has
//! no negation operator, so the double-negation identity is vacuous here;
//! `not_eq { x ; x }` templates are constant-truth and already rejected by
//! the degeneracy rules before dedup is consulted.

use crate::ast::{LfExpr, LfOp};
use crate::template::LfTemplate;

/// The canonical signature of a template: the rendered canonical form.
/// Equal canonical forms ⇒ draw-stream-identical instantiation.
pub fn canonical_form(t: &LfTemplate) -> String {
    canonical_expr(t.expr()).to_string()
}

/// The canonicalized expression: safe mirrors/sorts applied bottom-up,
/// then holes alpha-renamed in first-use order.
pub fn canonical_expr(e: &LfExpr) -> LfExpr {
    let mut c = rewrite(e, true);
    let mut cols: Vec<usize> = Vec::new();
    let mut vals: Vec<usize> = Vec::new();
    renumber(&mut c, &mut cols, &mut vals);
    c
}

fn rewrite(e: &LfExpr, at_root: bool) -> LfExpr {
    match e {
        LfExpr::Apply(op, args) => {
            let mut op = *op;
            let mut new_args: Vec<LfExpr> = args.iter().map(|a| rewrite(a, false)).collect();
            if new_args.len() == 2 {
                let root_cmp = at_root
                    && matches!(
                        op,
                        LfOp::Eq | LfOp::NotEq | LfOp::RoundEq | LfOp::Greater | LfOp::Less
                    );
                if op == LfOp::Less && swap_safe(&new_args, root_cmp) {
                    op = LfOp::Greater;
                    new_args.swap(0, 1);
                }
                if matches!(op, LfOp::Eq | LfOp::NotEq | LfOp::RoundEq | LfOp::And)
                    && swap_safe(&new_args, root_cmp)
                    && anon_render(&new_args[1]) < anon_render(&new_args[0])
                {
                    new_args.swap(0, 1);
                }
            }
            LfExpr::Apply(op, new_args)
        }
        other => other.clone(),
    }
}

/// Swapping two children is draw-stream safe iff at most one contains
/// column holes (the first-use scan order stays fixed) and at most one
/// contains draw sites (value-hole sampling order stays fixed). A bare
/// root-comparator `valN` child is side-agnostic and counts as neither.
fn swap_safe(args: &[LfExpr], root_cmp: bool) -> bool {
    let cols = args.iter().filter(|a| has_column_holes(a)).count();
    let draws = args
        .iter()
        .filter(|a| {
            if root_cmp && matches!(a, LfExpr::ValueHole(_)) {
                false
            } else {
                has_value_holes(a)
            }
        })
        .count();
    cols <= 1 && draws <= 1
}

fn has_column_holes(e: &LfExpr) -> bool {
    match e {
        LfExpr::ColumnHole(_) => true,
        LfExpr::Apply(_, args) => args.iter().any(has_column_holes),
        _ => false,
    }
}

fn has_value_holes(e: &LfExpr) -> bool {
    match e {
        LfExpr::ValueHole(_) => true,
        LfExpr::Apply(_, args) => args.iter().any(has_value_holes),
        _ => false,
    }
}

/// Render with hole indices blinded, so the sort order cannot depend on
/// the (arbitrary) numbering a template happens to use.
fn anon_render(e: &LfExpr) -> String {
    match e {
        LfExpr::Apply(op, args) => {
            let inner: Vec<String> = args.iter().map(anon_render).collect();
            format!("{} {{ {} }}", op, inner.join(" ; "))
        }
        LfExpr::ColumnHole(_) => "c".to_string(),
        LfExpr::ValueHole(_) => "val".to_string(),
        other => other.to_string(),
    }
}

fn renumber(e: &mut LfExpr, cols: &mut Vec<usize>, vals: &mut Vec<usize>) {
    match e {
        LfExpr::ColumnHole(i) => *i = first_use(cols, *i),
        LfExpr::ValueHole(i) => *i = first_use(vals, *i),
        LfExpr::Apply(_, args) => {
            for a in args {
                renumber(a, cols, vals);
            }
        }
        _ => {}
    }
}

fn first_use(seen: &mut Vec<usize>, i: usize) -> usize {
    match seen.iter().position(|&x| x == i) {
        Some(p) => p + 1,
        None => {
            seen.push(i);
            seen.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(text: &str) -> String {
        canonical_form(
            &LfTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}")),
        )
    }

    #[test]
    fn symmetric_comparator_sides_commute() {
        assert_eq!(
            canon("eq { avg { all_rows ; c1 } ; val1 }"),
            canon("eq { val1 ; avg { all_rows ; c1 } }")
        );
        assert_eq!(
            canon("round_eq { sum { all_rows ; c1 } ; val1 }"),
            canon("round_eq { val1 ; sum { all_rows ; c1 } }")
        );
        assert_eq!(
            canon("not_eq { count { all_rows } ; val1 }"),
            canon("not_eq { val1 ; count { all_rows } }")
        );
    }

    #[test]
    fn less_mirrors_to_greater() {
        assert_eq!(
            canon("less { max { all_rows ; c1 } ; val1 }"),
            canon("greater { val1 ; max { all_rows ; c1 } }")
        );
        assert_eq!(
            canon("less { val1 ; max { all_rows ; c1 } }"),
            canon("greater { max { all_rows ; c1 } ; val1 }")
        );
        // The two greater orientations stay distinct: greater is not
        // symmetric and only the less-mirror maps between orderings.
        assert_ne!(
            canon("greater { max { all_rows ; c1 } ; val1 }"),
            canon("greater { val1 ; max { all_rows ; c1 } }")
        );
    }

    #[test]
    fn unsafe_swaps_are_left_alone() {
        // Both children carry column holes: swapping would reorder the
        // hole scan and change per-seed column assignment.
        let two_cols = "less { max { all_rows ; c1 } ; avg { all_rows ; c2 } }";
        let t = LfTemplate::parse(two_cols).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(canonical_form(&t), two_cols, "unsafe mirror must not fire");
        // Both children carry inner value draws: same reasoning.
        let two_draws = "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }";
        let t = LfTemplate::parse(two_draws).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(canonical_form(&t), two_draws, "unsafe sort must not fire");
    }

    #[test]
    fn alpha_renaming_is_quotiented_out() {
        assert_eq!(
            canon("eq { count { filter_eq { all_rows ; c3 ; val9 } } ; val2 }"),
            canon("eq { count { filter_eq { all_rows ; c1 ; val1 } } ; val2 }")
        );
        // Repeated column holes keep their identity.
        assert_ne!(
            canon("greater { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }"),
            canon("greater { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; hop { filter_eq { all_rows ; c3 ; val2 } ; c2 } }")
        );
    }

    #[test]
    fn canonical_form_is_idempotent() {
        for text in [
            "less { val1 ; max { all_rows ; c1 } }",
            "eq { val1 ; avg { all_rows ; c1 } }",
            "and { only { filter_eq { all_rows ; c1 ; val1 } } ; most_eq { all_rows ; c2 ; val2 } }",
            "most_greater { all_rows ; c1 ; val1 }",
        ] {
            let t = LfTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}"));
            let once = canonical_expr(t.expr());
            let twice = canonical_expr(&once);
            assert_eq!(once, twice, "canonicalizing {text:?} twice must be a fixed point");
        }
    }
}
