//! # sqlexec — SQL-subset engine for UCTR
//!
//! The reproduction's substitute for the paper's sqlite3 Program-Executor:
//! a lexer, recursive-descent parser, AST, and executor for the SQL subset
//! used by SQUALL-style program templates, plus the template
//! abstraction/instantiation machinery for UCTR's random sampling strategy
//! (paper §IV-B, §IV-C).
//!
//! ```
//! use tabular::Table;
//! use sqlexec::run_sql;
//!
//! let t = Table::from_strings("deps", &[
//!     vec!["department", "total deputies"],
//!     vec!["Commerce", "18"],
//!     vec!["Defense", "42"],
//! ]).unwrap();
//! let r = run_sql("select [department] from w order by [total deputies] desc limit 1", &t).unwrap();
//! assert_eq!(r.answer_text(), "Defense");
//! ```

pub mod absint;
pub mod analysis;
pub mod ast;
pub mod canon;
pub mod exec;
pub mod parser;
pub mod template;
pub mod token;

pub use ast::{
    AggFunc, ArithOp, CmpOp, ColumnRef, Cond, Expr, OrderDir, PlaceholderType, SelectItem,
    SelectStmt,
};
pub use canon::{canonical_form, canonical_stmt};
pub use exec::{
    denotation_string, execute, execute_in, execute_in_with, run_sql, ExecError, QueryResult,
};
pub use parser::{parse, ParseError};
pub use template::{abstract_query, SqlInstantiateError, SqlScratch, SqlTemplate};
