//! SQL lexer.
//!
//! Tokenizes the SQL-query subset used by UCTR's program templates (mined
//! from SQUALL): `SELECT ... FROM w [WHERE ...] [GROUP BY ...]
//! [ORDER BY ...] [LIMIT n]`. Identifiers may be bare (`c1`, `w`), quoted
//! with double quotes, or bracketed (`[total deputies]`) so templates can
//! reference real-world column headers containing spaces.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or bare identifier (keywords are recognized in the parser,
    /// case-insensitively).
    Ident(String),
    /// `[bracketed name]` or `"quoted name"` identifier.
    QuotedIdent(String),
    /// String literal in single quotes.
    StringLit(String),
    /// Numeric literal.
    NumberLit(f64),
    Comma,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    Gt,
    LtEq,
    GtEq,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "[{s}]"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::NumberLit(n) => write!(f, "{n}"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
            Token::LtEq => write!(f, "<="),
            Token::GtEq => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// Lexer error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes an input SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(LexError { pos: i, message: "expected '=' after '!'".into() });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(LexError {
                                pos: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                out.push(Token::StringLit(s));
            }
            '"' | '[' => {
                let close = if c == '"' { '"' } else { ']' };
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&ch) if ch == close => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(LexError {
                                pos: start,
                                message: "unterminated quoted identifier".into(),
                            })
                        }
                    }
                }
                out.push(Token::QuotedIdent(s));
            }
            c if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n: f64 = text
                    .parse()
                    .map_err(|_| LexError { pos: start, message: format!("bad number: {text}") })?;
                out.push(Token::NumberLit(n));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(LexError { pos: i, message: format!("unexpected character {other:?}") })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basic_query() -> Result<(), Box<dyn std::error::Error>> {
        let toks = lex("select c1 from w where c2 = 'x'")?;
        assert_eq!(toks[0], Token::Ident("select".into()));
        assert_eq!(toks[6], Token::Eq);
        assert_eq!(toks[7], Token::StringLit("x".into()));
        Ok(())
    }

    #[test]
    fn lex_operators() -> Result<(), Box<dyn std::error::Error>> {
        let toks = lex("<= >= != <> < > = + - * /")?;
        assert_eq!(
            toks,
            vec![
                Token::LtEq,
                Token::GtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash
            ]
        );
        Ok(())
    }

    #[test]
    fn lex_bracketed_identifier() -> Result<(), Box<dyn std::error::Error>> {
        let toks = lex("select [total deputies] from w")?;
        assert_eq!(toks[1], Token::QuotedIdent("total deputies".into()));
        Ok(())
    }

    #[test]
    fn lex_quoted_identifier() -> Result<(), Box<dyn std::error::Error>> {
        let toks = lex("select \"total deputies\" from w")?;
        assert_eq!(toks[1], Token::QuotedIdent("total deputies".into()));
        Ok(())
    }

    #[test]
    fn lex_escaped_quote_in_string() -> Result<(), Box<dyn std::error::Error>> {
        let toks = lex("select c1 from w where c2 = 'it''s'")?;
        assert!(matches!(&toks[7], Token::StringLit(s) if s == "it's"));
        Ok(())
    }

    #[test]
    fn lex_numbers() -> Result<(), Box<dyn std::error::Error>> {
        let toks = lex("limit 10")?;
        assert_eq!(toks[1], Token::NumberLit(10.0));
        let toks = lex("where x = 3.5")?;
        assert_eq!(toks[3], Token::NumberLit(3.5));
        Ok(())
    }

    #[test]
    fn lex_errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("[unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("a ? b").is_err());
    }
}
