//! SQL template abstraction and sampling.
//!
//! Implements the paper's program-template machinery for SQL queries
//! (§IV-B/§IV-C): a template is a `SelectStmt` whose column references are
//! placeholders (`c1`, `c2_number`) and whose compared constants are value
//! placeholders (`val1`). [`SqlTemplate::instantiate`] performs the random
//! sampling strategy — column placeholders are filled with randomly chosen
//! columns of a matching type, then each value placeholder is filled with a
//! random cell value *from the column it is compared against*, which keeps
//! the internal relationships of the original program intact.
//!
//! The inverse direction, [`abstract_query`], turns a concrete query into a
//! template (used when mining templates from a seed corpus) and produces the
//! normalized signature used for the redundancy filtration step.

use crate::ast::*;
use crate::parser::{parse, ParseError};
use rand::seq::SliceRandom;
use rand::Rng;
use rustc_hash::FxHashMap;
use tabular::{ColumnType, ExecContext, Table, Value};

/// Why instantiating a template on a given table failed — the structured
/// discard reasons the pipeline telemetry aggregates (instead of an opaque
/// `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlInstantiateError {
    /// No table column satisfies a column hole's type constraint (e.g. the
    /// template needs two numeric columns but the table has one).
    NoCompatibleColumn,
    /// A bound column has no non-null cell to fill a value hole from.
    NoValueCandidates,
    /// The template itself is malformed: a value hole not compared against
    /// any column hole, or a dangling reference during substitution.
    MalformedTemplate,
}

impl std::fmt::Display for SqlInstantiateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlInstantiateError::NoCompatibleColumn => write!(f, "no compatible column"),
            SqlInstantiateError::NoValueCandidates => write!(f, "no value candidates"),
            SqlInstantiateError::MalformedTemplate => write!(f, "malformed template"),
        }
    }
}

impl std::error::Error for SqlInstantiateError {}

/// A reusable SQL program template.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlTemplate {
    stmt: SelectStmt,
}

/// Reusable buffers for [`SqlTemplate::try_instantiate_in_with`]: the hole
/// list, the shuffled column pool, and the hole→column / hole→value
/// assignments. One per worker; reused across every instantiation attempt
/// so the per-attempt path allocates nothing but the instantiated
/// statement itself.
#[derive(Debug, Clone, Default)]
pub struct SqlScratch {
    holes: Vec<(usize, Option<PlaceholderType>)>,
    available: Vec<usize>,
    assignment: FxHashMap<usize, usize>,
    values: FxHashMap<usize, Value>,
    /// Kernel buffers shared with the compiled executor (row views,
    /// highlight accumulation) so per-sample execution stops allocating.
    pub kern: tabular::KernelScratch,
}

impl SqlTemplate {
    /// Parses template text such as
    /// `select c1 from w order by c2_number desc limit 1`.
    pub fn parse(text: &str) -> Result<SqlTemplate, ParseError> {
        Ok(SqlTemplate { stmt: parse(text)? })
    }

    /// Wraps an already parsed statement.
    pub fn from_stmt(stmt: SelectStmt) -> SqlTemplate {
        SqlTemplate { stmt }
    }

    /// The underlying (hole-y) statement.
    pub fn stmt(&self) -> &SelectStmt {
        &self.stmt
    }

    /// Normalized signature for deduplication: the rendered template text.
    /// Two mined queries with the same logic structure abstract to the same
    /// signature (paper: "dropping redundant program templates").
    pub fn signature(&self) -> String {
        self.stmt.to_string()
    }

    /// Distinct column placeholders with their type constraints, in
    /// first-appearance order.
    pub fn column_holes(&self) -> Vec<(usize, Option<PlaceholderType>)> {
        let mut seen = Vec::new();
        self.column_holes_into(&mut seen);
        seen
    }

    /// [`SqlTemplate::column_holes`] into a caller-owned buffer (cleared
    /// first).
    fn column_holes_into(&self, seen: &mut Vec<(usize, Option<PlaceholderType>)>) {
        seen.clear();
        self.stmt.visit_columns(&mut |c| {
            if let ColumnRef::Placeholder { index, ty } = c {
                if !seen.iter().any(|(i, _)| i == index) {
                    seen.push((*index, *ty));
                }
            }
        });
    }

    /// Instantiates the template on `table` using the random sampling
    /// strategy. Returns `None` when the table cannot satisfy the template
    /// (e.g. it needs two numeric columns but the table has one); use
    /// [`SqlTemplate::try_instantiate`] to learn why.
    pub fn instantiate(&self, table: &Table, rng: &mut impl Rng) -> Option<SelectStmt> {
        self.try_instantiate(table, rng).ok()
    }

    /// Like [`SqlTemplate::instantiate`], but reports the reason the table
    /// could not satisfy the template.
    pub fn try_instantiate(
        &self,
        table: &Table,
        rng: &mut impl Rng,
    ) -> Result<SelectStmt, SqlInstantiateError> {
        self.try_instantiate_impl(table, None, rng, &mut SqlScratch::default())
    }

    /// [`SqlTemplate::try_instantiate`] using a prebuilt [`ExecContext`] for
    /// the value-candidate lookups, so repeated instantiation on the same
    /// table stops rescanning its columns. Draw-for-draw identical to the
    /// context-free path.
    pub fn try_instantiate_in(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut impl Rng,
    ) -> Result<SelectStmt, SqlInstantiateError> {
        self.try_instantiate_impl(table, Some(ctx), rng, &mut SqlScratch::default())
    }

    /// [`SqlTemplate::try_instantiate_in`] with caller-owned sampling
    /// buffers — the zero-transient-allocation form the generation hot path
    /// uses. Draw-for-draw identical to the other entry points.
    pub fn try_instantiate_in_with(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut impl Rng,
        scratch: &mut SqlScratch,
    ) -> Result<SelectStmt, SqlInstantiateError> {
        self.try_instantiate_impl(table, Some(ctx), rng, scratch)
    }

    fn try_instantiate_impl(
        &self,
        table: &Table,
        ctx: Option<&ExecContext>,
        rng: &mut impl Rng,
        scratch: &mut SqlScratch,
    ) -> Result<SelectStmt, SqlInstantiateError> {
        let SqlScratch { holes, available, assignment, values, kern: _ } = scratch;
        self.column_holes_into(holes);
        // Assign typed holes first so an untyped hole cannot steal the only
        // column satisfying a type constraint.
        holes.sort_by_key(|(_, ty)| ty.is_none());
        available.clear();
        available.extend(0..table.n_cols());
        available.shuffle(rng);
        assignment.clear();
        for (hole_idx, ty) in holes.iter() {
            let pos = available
                .iter()
                .position(|&ci| {
                    let col_ty = table.schema().column(ci).map(|c| c.ty);
                    match ty {
                        None => true,
                        Some(PlaceholderType::Number) => {
                            matches!(col_ty, Some(ColumnType::Number))
                        }
                        Some(PlaceholderType::Date) => matches!(col_ty, Some(ColumnType::Date)),
                        Some(PlaceholderType::Text) => matches!(col_ty, Some(ColumnType::Text)),
                    }
                })
                .ok_or(SqlInstantiateError::NoCompatibleColumn)?;
            let ci = available.remove(pos);
            assignment.insert(*hole_idx, ci);
        }
        // Pair each value placeholder with the column placeholder it is
        // compared against, then sample a value from that column.
        let pairs = value_hole_columns(&self.stmt);
        values.clear();
        for (val_idx, col_hole) in pairs {
            let ci = *assignment.get(&col_hole).ok_or(SqlInstantiateError::MalformedTemplate)?;
            let v = match ctx {
                Some(ctx) => ctx
                    .non_null_values(ci)
                    .choose(rng)
                    .ok_or(SqlInstantiateError::NoValueCandidates)?
                    .clone(),
                None => {
                    let candidates: Vec<Value> =
                        table.column_values(ci).into_iter().filter(|v| !v.is_null()).collect();
                    candidates.choose(rng).ok_or(SqlInstantiateError::NoValueCandidates)?.clone()
                }
            };
            values.insert(val_idx, v);
        }
        let stmt = substitute(&self.stmt, table, assignment, values)
            .ok_or(SqlInstantiateError::MalformedTemplate)?;
        debug_assert!(!stmt.has_placeholders());
        Ok(stmt)
    }
}

/// For every `valN` placeholder, the index of the column placeholder it is
/// compared against. Returns `None`-free map only for well-formed templates;
/// unpaired value holes are simply missing from the result (instantiation
/// will then fail, which discards the malformed template). Shared with the
/// static analyzer (`crate::analysis`) so "paired" means the same thing at
/// typecheck time and at instantiation time.
pub(crate) fn value_hole_columns(stmt: &SelectStmt) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    fn scan_cond(c: &Cond, pairs: &mut Vec<(usize, usize)>) {
        match c {
            Cond::Compare { lhs, rhs, .. } => {
                scan_pair(lhs, rhs, pairs);
                scan_pair(rhs, lhs, pairs);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                scan_cond(a, pairs);
                scan_cond(b, pairs);
            }
        }
    }
    fn scan_pair(a: &Expr, b: &Expr, pairs: &mut Vec<(usize, usize)>) {
        if let (Expr::ValuePlaceholder(v), Expr::Column(ColumnRef::Placeholder { index, .. })) =
            (a, b)
        {
            pairs.push((*v, *index));
        }
    }
    if let Some(w) = &stmt.where_clause {
        scan_cond(w, &mut pairs);
    }
    pairs
}

fn substitute(
    stmt: &SelectStmt,
    table: &Table,
    cols: &FxHashMap<usize, usize>,
    vals: &FxHashMap<usize, Value>,
) -> Option<SelectStmt> {
    let sub_col = |c: &ColumnRef| -> Option<ColumnRef> {
        match c {
            ColumnRef::Named(n) => Some(ColumnRef::Named(n.clone())),
            ColumnRef::Placeholder { index, .. } => {
                let ci = cols.get(index)?;
                Some(ColumnRef::Named(table.column_name(*ci)?.to_string()))
            }
        }
    };
    fn sub_expr(
        e: &Expr,
        sub_col: &impl Fn(&ColumnRef) -> Option<ColumnRef>,
        vals: &FxHashMap<usize, Value>,
    ) -> Option<Expr> {
        Some(match e {
            Expr::Column(c) => Expr::Column(sub_col(c)?),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::ValuePlaceholder(i) => Expr::Literal(vals.get(i)?.clone()),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(sub_expr(lhs, sub_col, vals)?),
                rhs: Box::new(sub_expr(rhs, sub_col, vals)?),
            },
        })
    }
    fn sub_cond(
        c: &Cond,
        sub_col: &impl Fn(&ColumnRef) -> Option<ColumnRef>,
        vals: &FxHashMap<usize, Value>,
    ) -> Option<Cond> {
        Some(match c {
            Cond::Compare { op, lhs, rhs } => Cond::Compare {
                op: *op,
                lhs: sub_expr(lhs, sub_col, vals)?,
                rhs: sub_expr(rhs, sub_col, vals)?,
            },
            Cond::And(a, b) => Cond::And(
                Box::new(sub_cond(a, sub_col, vals)?),
                Box::new(sub_cond(b, sub_col, vals)?),
            ),
            Cond::Or(a, b) => Cond::Or(
                Box::new(sub_cond(a, sub_col, vals)?),
                Box::new(sub_cond(b, sub_col, vals)?),
            ),
        })
    }
    let items = stmt
        .items
        .iter()
        .map(|i| {
            Some(match i {
                SelectItem::Star => SelectItem::Star,
                SelectItem::Expr(e) => SelectItem::Expr(sub_expr(e, &sub_col, vals)?),
                SelectItem::Aggregate { func, arg, distinct } => SelectItem::Aggregate {
                    func: *func,
                    arg: match arg {
                        Some(e) => Some(sub_expr(e, &sub_col, vals)?),
                        None => None,
                    },
                    distinct: *distinct,
                },
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(SelectStmt {
        items,
        distinct: stmt.distinct,
        where_clause: match &stmt.where_clause {
            Some(w) => Some(sub_cond(w, &sub_col, vals)?),
            None => None,
        },
        group_by: match &stmt.group_by {
            Some(g) => Some(sub_col(g)?),
            None => None,
        },
        order_by: match &stmt.order_by {
            Some((e, d)) => Some((sub_expr(e, &sub_col, vals)?, *d)),
            None => None,
        },
        limit: stmt.limit,
    })
}

/// Abstracts a concrete query over `table` into a template: each distinct
/// named column becomes `cN` (with a `_number`/`_date` suffix from the
/// table's schema), and each literal compared against a column becomes
/// `valN`. Used by the template mining step (§IV-B).
pub fn abstract_query(stmt: &SelectStmt, table: &Table) -> SqlTemplate {
    let mut col_map: FxHashMap<String, usize> = FxHashMap::default();
    let mut next_col = 1usize;
    let mut next_val = 1usize;

    let mut map_col = |c: &ColumnRef| -> ColumnRef {
        match c {
            ColumnRef::Named(name) => {
                let key = name.to_ascii_lowercase();
                let index = *col_map.entry(key).or_insert_with(|| {
                    let i = next_col;
                    next_col += 1;
                    i
                });
                let ty = table
                    .column_index(name)
                    .and_then(|ci| table.schema().column(ci))
                    .and_then(|c| match c.ty {
                        ColumnType::Number => Some(PlaceholderType::Number),
                        ColumnType::Date => Some(PlaceholderType::Date),
                        _ => None,
                    });
                ColumnRef::Placeholder { index, ty }
            }
            other => other.clone(),
        }
    };

    fn abs_expr(e: &Expr, map_col: &mut impl FnMut(&ColumnRef) -> ColumnRef) -> Expr {
        match e {
            Expr::Column(c) => Expr::Column(map_col(c)),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(abs_expr(lhs, map_col)),
                rhs: Box::new(abs_expr(rhs, map_col)),
            },
            other => other.clone(),
        }
    }

    fn abs_cond(
        c: &Cond,
        map_col: &mut impl FnMut(&ColumnRef) -> ColumnRef,
        next_val: &mut usize,
    ) -> Cond {
        match c {
            Cond::Compare { op, lhs, rhs } => {
                // Literal compared against a column becomes a value hole.
                let (mut l, mut r) = (abs_expr(lhs, map_col), abs_expr(rhs, map_col));
                if matches!(l, Expr::Column(ColumnRef::Placeholder { .. }))
                    && matches!(r, Expr::Literal(_))
                {
                    r = Expr::ValuePlaceholder(*next_val);
                    *next_val += 1;
                } else if matches!(r, Expr::Column(ColumnRef::Placeholder { .. }))
                    && matches!(l, Expr::Literal(_))
                {
                    l = Expr::ValuePlaceholder(*next_val);
                    *next_val += 1;
                }
                Cond::Compare { op: *op, lhs: l, rhs: r }
            }
            Cond::And(a, b) => Cond::And(
                Box::new(abs_cond(a, map_col, next_val)),
                Box::new(abs_cond(b, map_col, next_val)),
            ),
            Cond::Or(a, b) => Cond::Or(
                Box::new(abs_cond(a, map_col, next_val)),
                Box::new(abs_cond(b, map_col, next_val)),
            ),
        }
    }

    let items = stmt
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Star => SelectItem::Star,
            SelectItem::Expr(e) => SelectItem::Expr(abs_expr(e, &mut map_col)),
            SelectItem::Aggregate { func, arg, distinct } => SelectItem::Aggregate {
                func: *func,
                arg: arg.as_ref().map(|e| abs_expr(e, &mut map_col)),
                distinct: *distinct,
            },
        })
        .collect();
    let where_clause = stmt.where_clause.as_ref().map(|w| abs_cond(w, &mut map_col, &mut next_val));
    let group_by = stmt.group_by.as_ref().map(&mut map_col);
    let order_by = stmt.order_by.as_ref().map(|(e, d)| (abs_expr(e, &mut map_col), *d));
    SqlTemplate {
        stmt: SelectStmt {
            items,
            distinct: stmt.distinct,
            where_clause,
            group_by,
            order_by,
            limit: stmt.limit,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::from_strings(
            "t",
            &[
                vec!["name", "city", "score", "year"],
                vec!["alpha", "oslo", "10", "2001-01-01"],
                vec!["beta", "lima", "25", "2005-06-05"],
                vec!["gamma", "kyiv", "17", "1999-12-31"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    #[test]
    fn instantiate_superlative_template() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = SqlTemplate::parse("select c1 from w order by c2_number desc limit 1")?;
        let mut rng = StdRng::seed_from_u64(7);
        let stmt = tpl.instantiate(&table(), &mut rng).ok_or("instantiate returned None")?;
        assert!(!stmt.has_placeholders());
        let r = execute(&stmt, &table())?;
        assert!(!r.is_empty());
        Ok(())
    }

    #[test]
    fn instantiate_respects_type_constraints() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = SqlTemplate::parse("select c1 from w where c2_number > val1")?;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let stmt = tpl.instantiate(&table(), &mut rng).ok_or("instantiate returned None")?;
            let rendered = stmt.to_string();
            // The compared column must be the (only) numeric column `score`.
            assert!(rendered.contains("score >"), "got {rendered}");
        }
        Ok(())
    }

    #[test]
    fn instantiate_value_comes_from_bound_column() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = SqlTemplate::parse("select c1 from w where c2_number = val1")?;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let stmt = tpl.instantiate(&table(), &mut rng).ok_or("instantiate returned None")?;
            let r = execute(&stmt, &table())?;
            // Sampling from the real column means equality always matches.
            assert!(!r.is_empty(), "instantiated query found nothing: {stmt}");
        }
        Ok(())
    }

    #[test]
    fn instantiate_fails_when_types_unavailable() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings("t", &[vec!["a", "b"], vec!["x", "y"]])?;
        let tpl = SqlTemplate::parse("select c1 from w where c2_number > val1")?;
        let mut rng = StdRng::seed_from_u64(1);
        assert!(tpl.instantiate(&t, &mut rng).is_none());
        assert_eq!(tpl.try_instantiate(&t, &mut rng), Err(SqlInstantiateError::NoCompatibleColumn));
        Ok(())
    }

    #[test]
    fn try_instantiate_reports_missing_values() -> Result<(), Box<dyn std::error::Error>> {
        // A text column whose cells are all null: binding succeeds, value
        // sampling cannot.
        let t = Table::from_strings("t", &[vec!["a", "b"], vec!["x", ""], vec!["y", ""]])?;
        let tpl = SqlTemplate::parse("select c1 from w where c2 = val1")?;
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_no_values = false;
        for _ in 0..20 {
            if let Err(SqlInstantiateError::NoValueCandidates) = tpl.try_instantiate(&t, &mut rng) {
                saw_no_values = true;
            }
        }
        assert!(saw_no_values);
        Ok(())
    }

    #[test]
    fn instantiate_distinct_columns_for_distinct_holes() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = SqlTemplate::parse("select c1 from w where c2 = val1")?;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let stmt = tpl.instantiate(&table(), &mut rng).ok_or("instantiate returned None")?;
            // c1 and c2 must not both map to the same column.
            let rendered = stmt.to_string();
            let sel_col = rendered.split_whitespace().nth(1).ok_or("unexpected None")?.to_string();
            assert!(!rendered[rendered.find("where").ok_or("unexpected None")?..]
                .starts_with(&format!("where {sel_col} =")));
        }
        Ok(())
    }

    #[test]
    fn abstraction_dedups_same_structure() -> Result<(), Box<dyn std::error::Error>> {
        let t = table();
        let a = parse("select [name] from w order by [score] desc limit 1")?;
        let b = parse("select [city] from w order by [score] desc limit 1")?;
        let sig_a = abstract_query(&a, &t).signature();
        let sig_b = abstract_query(&b, &t).signature();
        assert_eq!(sig_a, sig_b);
        assert_eq!(sig_a, "select c1 from w order by c2_number desc limit 1");
        Ok(())
    }

    #[test]
    fn abstraction_introduces_value_holes() -> Result<(), Box<dyn std::error::Error>> {
        let t = table();
        let q = parse("select [score] from w where [name] = 'alpha'")?;
        let sig = abstract_query(&q, &t).signature();
        assert_eq!(sig, "select c1_number from w where c2 = val1");
        Ok(())
    }

    #[test]
    fn abstract_then_instantiate_roundtrip_executes() -> Result<(), Box<dyn std::error::Error>> {
        let t = table();
        let q = parse("select count(*) from w where [score] > 12")?;
        let tpl = abstract_query(&q, &t);
        let mut rng = StdRng::seed_from_u64(21);
        let stmt = tpl.instantiate(&t, &mut rng).ok_or("instantiate returned None")?;
        let r = execute(&stmt, &t)?;
        assert_eq!(r.rows.len(), 1);
        Ok(())
    }

    #[test]
    fn column_holes_reports_types() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = SqlTemplate::parse("select c1 from w where c2_number > val1 and c3_date = val2")?;
        let holes = tpl.column_holes();
        assert_eq!(
            holes,
            vec![(1, None), (2, Some(PlaceholderType::Number)), (3, Some(PlaceholderType::Date)),]
        );
        Ok(())
    }
}
