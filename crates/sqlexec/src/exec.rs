//! SQL executor over [`tabular::Table`].
//!
//! This is the workspace's substitute for the paper's sqlite3 executor
//! (§V-B): given a fully instantiated `SelectStmt` and a table, it produces
//! the denotation the Program-Executor module reports as the answer.
//!
//! Execution also records **highlighted cells** — the `(row, col)` pairs
//! that participated in filtering, ordering and projection — because the
//! Table-To-Text operator needs them to choose which row to verbalize
//! (paper §III-A: "we define the cells involving the reasoning process as
//! highlighted cells").

use crate::ast::*;
use rustc_hash::FxHashSet;
use std::borrow::Cow;
use std::fmt;
use tabular::{format_number, ExecContext, KernelScratch, Table, Value};

/// Execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A named column was not found in the table.
    UnknownColumn(String),
    /// The statement still contains template placeholders.
    Uninstantiated,
    /// Division by zero in a scalar expression.
    DivisionByZero,
    /// An aggregate was applied to a column with no usable values.
    EmptyAggregate,
    /// An executor invariant was violated (never expected on any input; a
    /// `Discard`-able stand-in for what would otherwise be a panic).
    Internal(&'static str),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ExecError::Uninstantiated => {
                write!(f, "statement still contains template placeholders")
            }
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::EmptyAggregate => write!(f, "aggregate over empty input"),
            ExecError::Internal(what) => write!(f, "executor invariant violated: {what}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The result of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Source-table cells that took part in the computation.
    pub highlighted: Vec<(usize, usize)>,
}

impl QueryResult {
    /// Flattens the result to a list of values (the "denotation" compared
    /// against gold answers in WikiSQL-style evaluation).
    pub fn denotation(&self) -> Vec<Value> {
        self.rows.iter().flatten().cloned().collect()
    }

    /// True if the query returned nothing (paper §IV-C: such programs are
    /// discarded during sampling).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() || self.rows.iter().all(|r| r.iter().all(Value::is_null))
    }

    /// Renders the denotation as a human-readable answer string.
    pub fn answer_text(&self) -> String {
        let vals: Vec<String> =
            self.denotation().iter().filter(|v| !v.is_null()).map(|v| v.to_string()).collect();
        vals.join(", ")
    }
}

/// Executes a fully instantiated SELECT statement against a table.
pub fn execute(stmt: &SelectStmt, table: &Table) -> Result<QueryResult, ExecError> {
    if stmt.has_placeholders() {
        return Err(ExecError::Uninstantiated);
    }
    // Validate all column references up front (a zero-row table must still
    // reject unknown columns, as real SQL engines do).
    {
        let mut bad: Option<String> = None;
        stmt.visit_columns(&mut |c| {
            if let ColumnRef::Named(name) = c {
                if bad.is_none() && table.column_index(name).is_none() {
                    bad = Some(name.clone());
                }
            }
        });
        if let Some(name) = bad {
            return Err(ExecError::UnknownColumn(name));
        }
    }
    let mut highlights: FxHashSet<(usize, usize)> = FxHashSet::default();

    // 1. WHERE filter.
    let mut kept: Vec<usize> = Vec::with_capacity(table.n_rows());
    for ri in 0..table.n_rows() {
        let keep = match &stmt.where_clause {
            Some(cond) => eval_cond(cond, table, ri, &mut highlights)?,
            None => true,
        };
        if keep {
            kept.push(ri);
        }
    }

    // 2. ORDER BY (on source rows, before projection).
    if let Some((expr, dir)) = &stmt.order_by {
        let mut keyed: Vec<(Value, usize)> = Vec::with_capacity(kept.len());
        for &ri in &kept {
            let v = eval_expr(expr, table, ri, &mut highlights)?;
            keyed.push((v, ri));
        }
        keyed.sort_by(|a, b| {
            let ord = a.0.cmp(&b.0);
            if *dir == OrderDir::Desc {
                ord.reverse()
            } else {
                ord
            }
        });
        kept = keyed.into_iter().map(|(_, ri)| ri).collect();
    }

    let has_aggregate = stmt.items.iter().any(|i| matches!(i, SelectItem::Aggregate { .. }));

    let mut result = if let Some(group_col) = &stmt.group_by {
        exec_grouped(stmt, table, &kept, group_col, &mut highlights)?
    } else if has_aggregate {
        // Whole-filtered-set aggregation: one output row. LIMIT applies to
        // the input rows first (SQUALL templates use `order by ... limit 1`
        // then aggregate).
        let input: Vec<usize> = match stmt.limit {
            Some(n) => kept.iter().copied().take(n).collect(),
            None => kept.clone(),
        };
        let mut row = Vec::with_capacity(stmt.items.len());
        let mut columns = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            match item {
                SelectItem::Aggregate { func, arg, distinct } => {
                    row.push(eval_aggregate(
                        *func,
                        arg.as_ref(),
                        *distinct,
                        table,
                        &input,
                        &mut highlights,
                    )?);
                    columns.push(item.to_string());
                }
                SelectItem::Expr(e) => {
                    // Mixed select: evaluate on the first row if any.
                    let v = input
                        .first()
                        .map(|&ri| eval_expr(e, table, ri, &mut highlights))
                        .transpose()?
                        .unwrap_or(Value::Null);
                    row.push(v);
                    columns.push(e.to_string());
                }
                SelectItem::Star => {
                    return Err(ExecError::UnknownColumn("* mixed with aggregate".into()))
                }
            }
        }
        QueryResult { columns, rows: vec![row], highlighted: vec![] }
    } else {
        // Plain projection.
        let rows_in: Vec<usize> = match stmt.limit {
            Some(n) => kept.iter().copied().take(n).collect(),
            None => kept.clone(),
        };
        let mut columns: Vec<String> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Star => {
                    for c in table.schema().columns() {
                        columns.push(c.name.clone());
                    }
                }
                SelectItem::Expr(e) => columns.push(e.to_string()),
                SelectItem::Aggregate { .. } => {
                    return Err(ExecError::Internal("aggregate item in plain projection"))
                }
            }
        }
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(rows_in.len());
        for &ri in &rows_in {
            let mut out = Vec::with_capacity(columns.len());
            for item in &stmt.items {
                match item {
                    SelectItem::Star => {
                        for ci in 0..table.n_cols() {
                            highlights.insert((ri, ci));
                            out.push(table.cell(ri, ci).cloned().unwrap_or(Value::Null));
                        }
                    }
                    SelectItem::Expr(e) => out.push(eval_expr(e, table, ri, &mut highlights)?),
                    SelectItem::Aggregate { .. } => {
                        return Err(ExecError::Internal("aggregate item in plain projection"))
                    }
                }
            }
            rows.push(out);
        }
        if stmt.distinct {
            let mut seen: Vec<Vec<Value>> = Vec::new();
            rows.retain(|r| {
                if seen.iter().any(|s| s == r) {
                    false
                } else {
                    seen.push(r.clone());
                    true
                }
            });
        }
        QueryResult { columns, rows, highlighted: vec![] }
    };

    let mut hl: Vec<(usize, usize)> = highlights.into_iter().collect();
    hl.sort_unstable();
    result.highlighted = hl;
    Ok(result)
}

/// [`execute`] against a prebuilt [`ExecContext`]. Result-identical to
/// [`execute`]; see [`execute_in_with`].
pub fn execute_in(
    stmt: &SelectStmt,
    table: &Table,
    ctx: &ExecContext,
) -> Result<QueryResult, ExecError> {
    execute_in_with(stmt, table, ctx, &mut KernelScratch::default())
}

/// Compiled execution path: resolves every column reference once, evaluates
/// rows against the compiled tree with borrowed cells (no per-row
/// `column_index` lookups or cell clones) and accumulates highlights in a
/// pooled buffer instead of a hash set. Result-identical to [`execute`] —
/// the per-cell interpreter above stays as the parity reference.
pub fn execute_in_with(
    stmt: &SelectStmt,
    table: &Table,
    _ctx: &ExecContext,
    kern: &mut KernelScratch,
) -> Result<QueryResult, ExecError> {
    if stmt.has_placeholders() {
        return Err(ExecError::Uninstantiated);
    }
    // Validate all column references up front (a zero-row table must still
    // reject unknown columns), exactly like the interpreter.
    {
        let mut bad: Option<String> = None;
        stmt.visit_columns(&mut |c| {
            if let ColumnRef::Named(name) = c {
                if bad.is_none() && table.column_index(name).is_none() {
                    bad = Some(name.clone());
                }
            }
        });
        if let Some(name) = bad {
            return Err(ExecError::UnknownColumn(name));
        }
    }
    let plan = compile(stmt, table)?;
    let mut hl = std::mem::take(&mut kern.hl);
    hl.clear();
    let res = run_compiled(stmt, &plan, table, kern, &mut hl);
    let out = res.map(|mut result| {
        // One sort + dedup yields the same sorted set the interpreter
        // collects through its hash set.
        hl.sort_unstable();
        hl.dedup();
        result.highlighted = hl.clone();
        result
    });
    kern.hl = hl;
    out
}

/// A column-resolved expression: the per-row loop touches indices only.
enum CExpr {
    Col(usize),
    Lit(Value),
    Binary { op: ArithOp, lhs: Box<CExpr>, rhs: Box<CExpr> },
}

enum CCond {
    Compare { op: CmpOp, lhs: CExpr, rhs: CExpr },
    And(Box<CCond>, Box<CCond>),
    Or(Box<CCond>, Box<CCond>),
}

enum CItem {
    Star,
    Expr(CExpr),
    Agg { func: AggFunc, arg: Option<CExpr>, distinct: bool },
}

struct Plan {
    items: Vec<CItem>,
    where_clause: Option<CCond>,
    order_by: Option<(CExpr, OrderDir)>,
    group_by: Option<usize>,
}

fn compile(stmt: &SelectStmt, table: &Table) -> Result<Plan, ExecError> {
    let items = stmt
        .items
        .iter()
        .map(|item| {
            Ok(match item {
                SelectItem::Star => CItem::Star,
                SelectItem::Expr(e) => CItem::Expr(compile_expr(e, table)?),
                SelectItem::Aggregate { func, arg, distinct } => CItem::Agg {
                    func: *func,
                    arg: arg.as_ref().map(|a| compile_expr(a, table)).transpose()?,
                    distinct: *distinct,
                },
            })
        })
        .collect::<Result<Vec<_>, ExecError>>()?;
    Ok(Plan {
        items,
        where_clause: stmt.where_clause.as_ref().map(|c| compile_cond(c, table)).transpose()?,
        order_by: stmt
            .order_by
            .as_ref()
            .map(|(e, dir)| Ok::<_, ExecError>((compile_expr(e, table)?, *dir)))
            .transpose()?,
        group_by: stmt.group_by.as_ref().map(|c| resolve(c, table)).transpose()?,
    })
}

fn compile_expr(e: &Expr, table: &Table) -> Result<CExpr, ExecError> {
    Ok(match e {
        Expr::Column(c) => CExpr::Col(resolve(c, table)?),
        Expr::Literal(v) => CExpr::Lit(v.clone()),
        Expr::ValuePlaceholder(_) => return Err(ExecError::Uninstantiated),
        Expr::Binary { op, lhs, rhs } => CExpr::Binary {
            op: *op,
            lhs: Box::new(compile_expr(lhs, table)?),
            rhs: Box::new(compile_expr(rhs, table)?),
        },
    })
}

fn compile_cond(c: &Cond, table: &Table) -> Result<CCond, ExecError> {
    Ok(match c {
        Cond::Compare { op, lhs, rhs } => CCond::Compare {
            op: *op,
            lhs: compile_expr(lhs, table)?,
            rhs: compile_expr(rhs, table)?,
        },
        Cond::And(x, y) => {
            CCond::And(Box::new(compile_cond(x, table)?), Box::new(compile_cond(y, table)?))
        }
        Cond::Or(x, y) => {
            CCond::Or(Box::new(compile_cond(x, table)?), Box::new(compile_cond(y, table)?))
        }
    })
}

/// The first `limit` entries of `kept` (the interpreter's `take(n)`), as a
/// slice instead of a fresh vector.
fn limited(kept: &[usize], limit: Option<usize>) -> &[usize] {
    match limit {
        Some(n) => &kept[..n.min(kept.len())],
        None => kept,
    }
}

fn run_compiled(
    stmt: &SelectStmt,
    plan: &Plan,
    table: &Table,
    kern: &mut KernelScratch,
    hl: &mut Vec<(usize, usize)>,
) -> Result<QueryResult, ExecError> {
    // 1. WHERE filter.
    let mut kept = kern.take_rows();
    for ri in 0..table.n_rows() {
        let keep = match &plan.where_clause {
            Some(cond) => eval_cond_c(cond, table, ri, hl)?,
            None => true,
        };
        if keep {
            kept.push(ri);
        }
    }

    // 2. ORDER BY (on source rows, before projection). Borrowed sort keys:
    // same stable sort and `Value` comparator as the interpreter, no cell
    // clones.
    if let Some((expr, dir)) = &plan.order_by {
        let mut keyed: Vec<(Cow<'_, Value>, usize)> = Vec::with_capacity(kept.len());
        for &ri in &kept {
            let v = match eval_expr_c(expr, table, ri, hl) {
                Ok(v) => v,
                Err(e) => {
                    kern.put_rows(kept);
                    return Err(e);
                }
            };
            keyed.push((v, ri));
        }
        keyed.sort_by(|a, b| {
            let ord = a.0.as_ref().cmp(b.0.as_ref());
            if *dir == OrderDir::Desc {
                ord.reverse()
            } else {
                ord
            }
        });
        for (slot, (_, ri)) in kept.iter_mut().zip(keyed.iter()) {
            *slot = *ri;
        }
    }

    let has_aggregate = plan.items.iter().any(|i| matches!(i, CItem::Agg { .. }));

    let res = if let Some(gci) = plan.group_by {
        exec_grouped_c(stmt, plan, table, &kept, gci, hl)
    } else if has_aggregate {
        // Whole-filtered-set aggregation: one output row. LIMIT applies to
        // the input rows first.
        let input = limited(&kept, stmt.limit);
        (|| {
            let mut row = Vec::with_capacity(plan.items.len());
            let mut columns = Vec::with_capacity(plan.items.len());
            for (item, src) in plan.items.iter().zip(&stmt.items) {
                match item {
                    CItem::Agg { func, arg, distinct } => {
                        row.push(eval_aggregate_c(
                            *func,
                            arg.as_ref(),
                            *distinct,
                            table,
                            input,
                            hl,
                        )?);
                        columns.push(src.to_string());
                    }
                    CItem::Expr(e) => {
                        // Mixed select: evaluate on the first row if any.
                        let v = input
                            .first()
                            .map(|&ri| eval_expr_c(e, table, ri, hl))
                            .transpose()?
                            .map(Cow::into_owned)
                            .unwrap_or(Value::Null);
                        row.push(v);
                        columns.push(src.to_string());
                    }
                    CItem::Star => {
                        return Err(ExecError::UnknownColumn("* mixed with aggregate".into()))
                    }
                }
            }
            Ok(QueryResult { columns, rows: vec![row], highlighted: vec![] })
        })()
    } else {
        // Plain projection.
        let rows_in = limited(&kept, stmt.limit);
        (|| {
            let mut columns: Vec<String> = Vec::new();
            for (item, src) in plan.items.iter().zip(&stmt.items) {
                match item {
                    CItem::Star => {
                        for c in table.schema().columns() {
                            columns.push(c.name.clone());
                        }
                    }
                    CItem::Expr(_) => columns.push(src.to_string()),
                    CItem::Agg { .. } => {
                        return Err(ExecError::Internal("aggregate item in plain projection"))
                    }
                }
            }
            let mut rows: Vec<Vec<Value>> = Vec::with_capacity(rows_in.len());
            for &ri in rows_in {
                let mut out = Vec::with_capacity(columns.len());
                for item in &plan.items {
                    match item {
                        CItem::Star => {
                            for ci in 0..table.n_cols() {
                                hl.push((ri, ci));
                                out.push(table.cell(ri, ci).cloned().unwrap_or(Value::Null));
                            }
                        }
                        CItem::Expr(e) => out.push(eval_expr_c(e, table, ri, hl)?.into_owned()),
                        CItem::Agg { .. } => {
                            return Err(ExecError::Internal("aggregate item in plain projection"))
                        }
                    }
                }
                rows.push(out);
            }
            if stmt.distinct {
                // In-place first-occurrence dedup: `rows[..uniq]` holds
                // exactly the rows the interpreter's `seen` list holds.
                let mut uniq = 0;
                for i in 0..rows.len() {
                    if rows[..uniq].contains(&rows[i]) {
                        continue;
                    }
                    rows.swap(uniq, i);
                    uniq += 1;
                }
                rows.truncate(uniq);
            }
            Ok(QueryResult { columns, rows, highlighted: vec![] })
        })()
    };
    kern.put_rows(kept);
    res
}

fn exec_grouped_c(
    stmt: &SelectStmt,
    plan: &Plan,
    table: &Table,
    kept: &[usize],
    gci: usize,
    hl: &mut Vec<(usize, usize)>,
) -> Result<QueryResult, ExecError> {
    // Group in first-occurrence order.
    let mut groups: Vec<(&Value, Vec<usize>)> = Vec::new();
    for &ri in kept {
        let key = table.cell(ri, gci).unwrap_or(&Value::Null);
        hl.push((ri, gci));
        match groups.iter_mut().find(|(k, _)| k.loosely_equals(key)) {
            Some((_, members)) => members.push(ri),
            None => groups.push((key, vec![ri])),
        }
    }
    let mut columns = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        columns.push(item.to_string());
    }
    let mut rows = Vec::with_capacity(groups.len());
    for (key, members) in &groups {
        let mut out = Vec::with_capacity(plan.items.len());
        for item in &plan.items {
            match item {
                CItem::Expr(CExpr::Col(ci)) if *ci == gci => {
                    out.push((*key).clone());
                }
                CItem::Expr(e) => {
                    let v = members
                        .first()
                        .map(|&ri| eval_expr_c(e, table, ri, hl))
                        .transpose()?
                        .map(Cow::into_owned)
                        .unwrap_or(Value::Null);
                    out.push(v);
                }
                CItem::Agg { func, arg, distinct } => {
                    out.push(eval_aggregate_c(*func, arg.as_ref(), *distinct, table, members, hl)?);
                }
                CItem::Star => return Err(ExecError::UnknownColumn("* in group by".into())),
            }
        }
        rows.push(out);
    }
    if let Some(n) = stmt.limit {
        rows.truncate(n);
    }
    Ok(QueryResult { columns, rows, highlighted: vec![] })
}

fn eval_expr_c<'t>(
    e: &'t CExpr,
    table: &'t Table,
    row: usize,
    hl: &mut Vec<(usize, usize)>,
) -> Result<Cow<'t, Value>, ExecError> {
    match e {
        CExpr::Col(ci) => {
            hl.push((row, *ci));
            Ok(match table.cell(row, *ci) {
                Some(v) => Cow::Borrowed(v),
                None => Cow::Owned(Value::Null),
            })
        }
        CExpr::Lit(v) => Ok(Cow::Borrowed(v)),
        CExpr::Binary { op, lhs, rhs } => {
            let a = eval_expr_c(lhs, table, row, hl)?;
            let b = eval_expr_c(rhs, table, row, hl)?;
            let (Some(x), Some(y)) = (a.as_number(), b.as_number()) else {
                return Ok(Cow::Owned(Value::Null));
            };
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => {
                    if y == 0.0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    x / y
                }
            };
            Ok(Cow::Owned(Value::number(r)))
        }
    }
}

fn eval_cond_c(
    c: &CCond,
    table: &Table,
    row: usize,
    hl: &mut Vec<(usize, usize)>,
) -> Result<bool, ExecError> {
    match c {
        CCond::Compare { op, lhs, rhs } => {
            let a = eval_expr_c(lhs, table, row, hl)?;
            let b = eval_expr_c(rhs, table, row, hl)?;
            if a.is_null() || b.is_null() {
                return Ok(false); // SQL three-valued logic: NULL compares false
            }
            Ok(match op {
                CmpOp::Eq => a.loosely_equals(&b),
                CmpOp::NotEq => !a.loosely_equals(&b),
                CmpOp::Lt => compare_lt(&a, &b),
                CmpOp::Gt => compare_lt(&b, &a),
                CmpOp::LtEq => !compare_lt(&b, &a),
                CmpOp::GtEq => !compare_lt(&a, &b),
            })
        }
        CCond::And(x, y) => Ok(eval_cond_c(x, table, row, hl)? && eval_cond_c(y, table, row, hl)?),
        CCond::Or(x, y) => Ok(eval_cond_c(x, table, row, hl)? || eval_cond_c(y, table, row, hl)?),
    }
}

fn eval_aggregate_c(
    func: AggFunc,
    arg: Option<&CExpr>,
    distinct: bool,
    table: &Table,
    rows: &[usize],
    hl: &mut Vec<(usize, usize)>,
) -> Result<Value, ExecError> {
    // COUNT(*) counts rows.
    let Some(arg) = arg else {
        return Ok(Value::Number(rows.len() as f64));
    };
    let mut values: Vec<Cow<'_, Value>> = Vec::with_capacity(rows.len());
    for &ri in rows {
        let v = eval_expr_c(arg, table, ri, hl)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut uniq: Vec<Cow<'_, Value>> = Vec::new();
        for v in values {
            if !uniq.iter().any(|u| u.as_ref().loosely_equals(v.as_ref())) {
                uniq.push(v);
            }
        }
        values = uniq;
    }
    match func {
        AggFunc::Count => Ok(Value::Number(values.len() as f64)),
        AggFunc::Sum | AggFunc::Avg => {
            // Sequential accumulation in values order — the same fold as
            // collecting the numbers and `iter().sum()`.
            let mut n = 0usize;
            let mut s = 0.0f64;
            for v in &values {
                if let Some(x) = v.as_number() {
                    s += x;
                    n += 1;
                }
            }
            if n == 0 {
                return Ok(Value::Null);
            }
            Ok(Value::number(if func == AggFunc::Sum { s } else { s / n as f64 }))
        }
        // `Iterator::min` keeps the first of equal elements and
        // `Iterator::max` the last, over refs exactly as over owned values.
        AggFunc::Min => Ok(values.iter().map(|c| c.as_ref()).min().cloned().unwrap_or(Value::Null)),
        AggFunc::Max => Ok(values.iter().map(|c| c.as_ref()).max().cloned().unwrap_or(Value::Null)),
    }
}

fn exec_grouped(
    stmt: &SelectStmt,
    table: &Table,
    kept: &[usize],
    group_col: &ColumnRef,
    highlights: &mut FxHashSet<(usize, usize)>,
) -> Result<QueryResult, ExecError> {
    let gci = resolve(group_col, table)?;
    // Group in first-occurrence order.
    let mut groups: Vec<(Value, Vec<usize>)> = Vec::new();
    for &ri in kept {
        let key = table.cell(ri, gci).cloned().unwrap_or(Value::Null);
        highlights.insert((ri, gci));
        match groups.iter_mut().find(|(k, _)| k.loosely_equals(&key)) {
            Some((_, members)) => members.push(ri),
            None => groups.push((key, vec![ri])),
        }
    }
    let mut columns = Vec::new();
    for item in &stmt.items {
        columns.push(item.to_string());
    }
    let mut rows = Vec::with_capacity(groups.len());
    for (key, members) in &groups {
        let mut out = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            match item {
                SelectItem::Expr(Expr::Column(c)) if resolve(c, table)? == gci => {
                    out.push(key.clone());
                }
                SelectItem::Expr(e) => {
                    let v = members
                        .first()
                        .map(|&ri| eval_expr(e, table, ri, highlights))
                        .transpose()?
                        .unwrap_or(Value::Null);
                    out.push(v);
                }
                SelectItem::Aggregate { func, arg, distinct } => {
                    out.push(eval_aggregate(
                        *func,
                        arg.as_ref(),
                        *distinct,
                        table,
                        members,
                        highlights,
                    )?);
                }
                SelectItem::Star => return Err(ExecError::UnknownColumn("* in group by".into())),
            }
        }
        rows.push(out);
    }
    if let Some(n) = stmt.limit {
        rows.truncate(n);
    }
    Ok(QueryResult { columns, rows, highlighted: vec![] })
}

fn resolve(c: &ColumnRef, table: &Table) -> Result<usize, ExecError> {
    match c {
        ColumnRef::Named(name) => {
            table.column_index(name).ok_or_else(|| ExecError::UnknownColumn(name.clone()))
        }
        ColumnRef::Placeholder { .. } => Err(ExecError::Uninstantiated),
    }
}

fn eval_expr(
    e: &Expr,
    table: &Table,
    row: usize,
    highlights: &mut FxHashSet<(usize, usize)>,
) -> Result<Value, ExecError> {
    match e {
        Expr::Column(c) => {
            let ci = resolve(c, table)?;
            highlights.insert((row, ci));
            Ok(table.cell(row, ci).cloned().unwrap_or(Value::Null))
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::ValuePlaceholder(_) => Err(ExecError::Uninstantiated),
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_expr(lhs, table, row, highlights)?;
            let b = eval_expr(rhs, table, row, highlights)?;
            let (Some(x), Some(y)) = (a.as_number(), b.as_number()) else {
                return Ok(Value::Null);
            };
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => {
                    if y == 0.0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    x / y
                }
            };
            Ok(Value::number(r))
        }
    }
}

fn eval_cond(
    c: &Cond,
    table: &Table,
    row: usize,
    highlights: &mut FxHashSet<(usize, usize)>,
) -> Result<bool, ExecError> {
    match c {
        Cond::Compare { op, lhs, rhs } => {
            let a = eval_expr(lhs, table, row, highlights)?;
            let b = eval_expr(rhs, table, row, highlights)?;
            if a.is_null() || b.is_null() {
                return Ok(false); // SQL three-valued logic: NULL compares false
            }
            Ok(match op {
                CmpOp::Eq => a.loosely_equals(&b),
                CmpOp::NotEq => !a.loosely_equals(&b),
                CmpOp::Lt => compare_lt(&a, &b),
                CmpOp::Gt => compare_lt(&b, &a),
                CmpOp::LtEq => !compare_lt(&b, &a),
                CmpOp::GtEq => !compare_lt(&a, &b),
            })
        }
        Cond::And(x, y) => {
            Ok(eval_cond(x, table, row, highlights)? && eval_cond(y, table, row, highlights)?)
        }
        Cond::Or(x, y) => {
            Ok(eval_cond(x, table, row, highlights)? || eval_cond(y, table, row, highlights)?)
        }
    }
}

/// `<` with numeric coercion where possible, else the total `Value` order.
fn compare_lt(a: &Value, b: &Value) -> bool {
    match (a.as_number(), b.as_number()) {
        (Some(x), Some(y)) => x < y,
        _ => a < b,
    }
}

fn eval_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    table: &Table,
    rows: &[usize],
    highlights: &mut FxHashSet<(usize, usize)>,
) -> Result<Value, ExecError> {
    // COUNT(*) counts rows.
    let Some(arg) = arg else {
        return Ok(Value::Number(rows.len() as f64));
    };
    let mut values: Vec<Value> = Vec::with_capacity(rows.len());
    for &ri in rows {
        let v = eval_expr(arg, table, ri, highlights)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut uniq: Vec<Value> = Vec::new();
        for v in values {
            if !uniq.iter().any(|u| u.loosely_equals(&v)) {
                uniq.push(v);
            }
        }
        values = uniq;
    }
    match func {
        AggFunc::Count => Ok(Value::Number(values.len() as f64)),
        AggFunc::Sum | AggFunc::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(Value::as_number).collect();
            if nums.is_empty() {
                return Ok(Value::Null);
            }
            let s: f64 = nums.iter().sum();
            Ok(Value::number(if func == AggFunc::Sum { s } else { s / nums.len() as f64 }))
        }
        AggFunc::Min => Ok(values.into_iter().min().unwrap_or(Value::Null)),
        AggFunc::Max => Ok(values.into_iter().max().unwrap_or(Value::Null)),
    }
}

/// Convenience: parse + execute.
pub fn run_sql(query: &str, table: &Table) -> Result<QueryResult, String> {
    let stmt = crate::parser::parse(query).map_err(|e| e.to_string())?;
    execute(&stmt, table).map_err(|e| e.to_string())
}

/// Formats a value list the way denotation accuracy compares answers.
pub fn denotation_string(values: &[Value]) -> String {
    values
        .iter()
        .map(|v| match v {
            Value::Number(n) => format_number(*n),
            other => other.to_string(),
        })
        .collect::<Vec<_>>()
        .join("|")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::from_strings(
            "Departments",
            &[
                vec!["department", "total deputies", "budget", "founded"],
                vec!["Commerce", "18", "500", "1913-03-04"],
                vec!["Defense", "42", "9000", "1947-09-18"],
                vec!["Treasury", "30", "3000", "1789-09-02"],
                vec!["Energy", "12", "700", "1977-08-04"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    #[test]
    fn select_with_order_limit() -> Result<(), Box<dyn std::error::Error>> {
        let r =
            run_sql("select [department] from w order by [total deputies] desc limit 1", &table())?;
        assert_eq!(r.answer_text(), "Defense");
        Ok(())
    }

    #[test]
    fn select_where_eq() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql("select [budget] from w where [department] = 'Treasury'", &table())?;
        assert_eq!(r.answer_text(), "3000");
        Ok(())
    }

    #[test]
    fn where_case_insensitive_text_match() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql("select [budget] from w where [department] = 'treasury'", &table())?;
        assert_eq!(r.answer_text(), "3000");
        Ok(())
    }

    #[test]
    fn count_star_with_filter() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql("select count(*) from w where [total deputies] > 15", &table())?;
        assert_eq!(r.answer_text(), "3");
        Ok(())
    }

    #[test]
    fn sum_and_avg() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql("select sum([budget]) from w", &table())?;
        assert_eq!(r.answer_text(), "13200");
        let r = run_sql("select avg([total deputies]) from w", &table())?;
        assert_eq!(r.answer_text(), "25.5");
        Ok(())
    }

    #[test]
    fn min_max_on_text() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql("select min([department]) from w", &table())?;
        assert_eq!(r.answer_text(), "Commerce");
        let r = run_sql("select max([department]) from w", &table())?;
        assert_eq!(r.answer_text(), "Treasury");
        Ok(())
    }

    #[test]
    fn arithmetic_diff_between_columns() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql(
            "select [budget] - [total deputies] from w where [department] = 'Energy'",
            &table(),
        )?;
        assert_eq!(r.answer_text(), "688");
        Ok(())
    }

    #[test]
    fn conjunction_where() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql(
            "select [department] from w where [total deputies] > 15 and [budget] < 4000",
            &table(),
        )?;
        assert_eq!(r.answer_text(), "Commerce, Treasury");
        Ok(())
    }

    #[test]
    fn or_where() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql(
            "select [department] from w where [department] = 'Energy' or [department] = 'Defense'",
            &table(),
        )?;
        assert_eq!(r.answer_text(), "Defense, Energy");
        Ok(())
    }

    #[test]
    fn distinct_dedups() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings("t", &[vec!["x"], vec!["a"], vec!["a"], vec!["b"]])?;
        let r = run_sql("select distinct [x] from w", &t)?;
        assert_eq!(r.rows.len(), 2);
        Ok(())
    }

    #[test]
    fn group_by_count() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings(
            "t",
            &[vec!["team", "pts"], vec!["a", "1"], vec!["b", "2"], vec!["a", "3"]],
        )?;
        let r = run_sql("select [team], count(*) from w group by [team]", &t)?;
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0].to_string(), "a");
        assert_eq!(r.rows[0][1], Value::Number(2.0));
        Ok(())
    }

    #[test]
    fn group_by_sum() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings(
            "t",
            &[vec!["team", "pts"], vec!["a", "1"], vec!["b", "2"], vec!["a", "3"]],
        )?;
        let r = run_sql("select [team], sum([pts]) from w group by [team]", &t)?;
        assert_eq!(r.rows[0][1], Value::Number(4.0));
        assert_eq!(r.rows[1][1], Value::Number(2.0));
        Ok(())
    }

    #[test]
    fn empty_result_detected() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql("select [department] from w where [total deputies] > 1000", &table())?;
        assert!(r.is_empty());
        Ok(())
    }

    #[test]
    fn unknown_column_error() {
        let err = run_sql("select [nope] from w", &table()).unwrap_err();
        assert!(err.contains("unknown column"));
    }

    #[test]
    fn uninstantiated_template_error() {
        let err = run_sql("select c1 from w", &table()).unwrap_err();
        assert!(err.contains("placeholders"));
    }

    #[test]
    fn division_by_zero_error() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings("t", &[vec!["a", "b"], vec!["1", "0"]])?;
        let err = run_sql("select [a] / [b] from w", &t).unwrap_err();
        assert!(err.contains("division"));
        Ok(())
    }

    #[test]
    fn nulls_filtered_by_comparisons() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings("t", &[vec!["x", "y"], vec!["", "1"], vec!["5", "2"]])?;
        let r = run_sql("select [y] from w where [x] > 0", &t)?;
        assert_eq!(r.answer_text(), "2");
        Ok(())
    }

    #[test]
    fn date_comparisons() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql("select [department] from w where [founded] > '1950-01-01'", &table())?;
        assert_eq!(r.answer_text(), "Energy");
        Ok(())
    }

    #[test]
    fn highlights_recorded() -> Result<(), Box<dyn std::error::Error>> {
        let r =
            run_sql("select [department] from w order by [total deputies] desc limit 1", &table())?;
        // Ordering touched column 1 of every row; projection touched (1, 0).
        assert!(r.highlighted.contains(&(1, 0)));
        assert!(r.highlighted.contains(&(0, 1)));
        assert!(r.highlighted.contains(&(3, 1)));
        Ok(())
    }

    #[test]
    fn order_by_asc_default() -> Result<(), Box<dyn std::error::Error>> {
        let r = run_sql("select [department] from w order by [budget] limit 2", &table())?;
        assert_eq!(r.answer_text(), "Commerce, Energy");
        Ok(())
    }

    #[test]
    fn count_distinct() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings("t", &[vec!["x"], vec!["a"], vec!["A"], vec!["b"]])?;
        let r = run_sql("select count(distinct [x]) from w", &t)?;
        assert_eq!(r.answer_text(), "2"); // loose (case-insensitive) equality
        Ok(())
    }

    #[test]
    fn denotation_string_formats_numbers() {
        let vals = vec![Value::Number(5.0), Value::text("x"), Value::Number(2.5)];
        assert_eq!(denotation_string(&vals), "5|x|2.5");
        assert_eq!(denotation_string(&[]), "");
    }

    #[test]
    fn group_by_then_limit() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings(
            "t",
            &[vec!["team", "pts"], vec!["a", "1"], vec!["b", "2"], vec!["a", "3"], vec!["c", "9"]],
        )?;
        let r = run_sql("select [team], count(*) from w group by [team] limit 2", &t)?;
        assert_eq!(r.rows.len(), 2);
        Ok(())
    }

    #[test]
    fn where_on_ordered_limit_applies_before_limit() -> Result<(), Box<dyn std::error::Error>> {
        // WHERE filters first, then ORDER BY, then LIMIT.
        let r = run_sql(
            "select [department] from w where [budget] < 5000 order by [total deputies] desc limit 1",
            &table(),
        )
        ?;
        assert_eq!(r.answer_text(), "Treasury");
        Ok(())
    }

    #[test]
    fn aggregate_after_order_limit() -> Result<(), Box<dyn std::error::Error>> {
        // SQUALL pattern: value of the top row.
        let r =
            run_sql("select max([budget]) from w order by [total deputies] asc limit 2", &table())?;
        // Two smallest by deputies: Energy (700), Commerce (500) -> max 700.
        assert_eq!(r.answer_text(), "700");
        Ok(())
    }
}
