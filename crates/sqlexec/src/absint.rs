//! Abstract interpretation of SQL templates over the `tabular::absdom`
//! lattices.
//!
//! [`interpret`] evaluates a template's WHERE clause per-row over Kleene
//! logic and tracks the cardinality of the surviving row set, joined over
//! all hole assignments and tables: a column placeholder denotes "any cell
//! of some column" (possibly null), a `valN` placeholder "some non-null
//! cell of its paired column" — and, because SQL value holes are keyed by
//! index (one sampled `Value` substituted at every occurrence), repeated
//! `valN` denote the *same* value, unlike logical forms.
//!
//! The executor's exact comparison semantics drive the transfer functions
//! (`crate::exec::eval_cond`): a null on either side is `false`; `=` /
//! `!=` use `loosely_equals` (near-equality collapse ⇒ no always-distinct
//! conviction inside the tolerance band); `<` / `>` / `<=` / `>=` use
//! `compare_lt`, which is *plain* `<` after numeric coercion, so strict
//! interval separation decides them — but only when both sides always
//! carry numeric readings (text operands fall into the `Value` total
//! order, which the pass does not model).
//!
//! Convictions:
//!
//! * **A001** — constant output: every bare-column select item is
//!   `=`-pinned to a literal/value placeholder on the top-level `and`
//!   spine of WHERE (each emitted cell then loosely equals a constant
//!   already fixed by the query text), or the WHERE clause is statically
//!   always false (the row set is provably empty).
//! * **A002** — a dead `and`/`or` branch: one side's truth is statically
//!   constant.
//! * **A003** — a vacuous atom: both sides are the same expression
//!   (`c1 = c1` can only test nullness) or both are literals (decidable
//!   without reading any row).

use crate::ast::{AggFunc, CmpOp, ColumnRef, Cond, Expr, SelectItem, SelectStmt};
use crate::template::SqlTemplate;
use tabular::absdom::{AbsSummary, Card, Interval, Kleene};
use tabular::{nearly_equal, TemplateIssue, Value};

/// The abstract layer [`crate::analysis::analyze`] merges into its
/// `TemplateAnalysis`.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsResult {
    pub summary: AbsSummary,
    pub degeneracies: Vec<TemplateIssue>,
    pub survival: f64,
}

/// Abstract scalar: interval of possible `Value::as_number` readings, plus
/// whether a non-numeric non-null value (text) or a null is possible.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AbsScalar {
    num: Interval,
    non_num: bool,
    can_null: bool,
}

impl AbsScalar {
    /// Any cell of any column, nulls included.
    const CELL: AbsScalar = AbsScalar { num: Interval::FINITE, non_num: true, can_null: true };
    /// A sampled value placeholder: drawn from its paired column's
    /// non-null values.
    const SAMPLED: AbsScalar = AbsScalar { num: Interval::FINITE, non_num: true, can_null: false };

    fn of_literal(v: &Value) -> AbsScalar {
        AbsScalar {
            num: v.as_number().map(Interval::point).unwrap_or(Interval::EMPTY),
            non_num: !v.is_null() && v.as_number().is_none(),
            can_null: v.is_null(),
        }
    }

    /// Both sides always coerce to numbers (so `compare_lt` takes the
    /// numeric branch) — nulls are fine, they short-circuit to `false`.
    fn numeric_only(self) -> bool {
        !self.non_num
    }
}

fn abs_expr(e: &Expr) -> AbsScalar {
    match e {
        Expr::Column(_) => AbsScalar::CELL,
        Expr::Literal(v) => AbsScalar::of_literal(v),
        Expr::ValuePlaceholder(_) => AbsScalar::SAMPLED,
        Expr::Binary { op, lhs, rhs } => {
            let a = abs_expr(lhs);
            let b = abs_expr(rhs);
            // A non-numeric operand makes the whole expression Null; a
            // finite pair computes IEEE arithmetic whose non-finite
            // results Value::number also turns into Null.
            use crate::ast::ArithOp;
            let raw = match op {
                ArithOp::Add => a.num.add(b.num),
                ArithOp::Sub => a.num.sub(b.num),
                ArithOp::Mul => a.num.mul(b.num),
                ArithOp::Div => a.num.div(b.num),
            };
            let num = if raw.is_empty() {
                Interval::EMPTY
            } else {
                Interval { lo: raw.lo.max(f64::MIN), hi: raw.hi.min(f64::MAX) }
            };
            let overflow = !raw.is_empty() && (raw.lo < f64::MIN || raw.hi > f64::MAX);
            AbsScalar {
                num,
                non_num: false,
                can_null: a.can_null
                    || b.can_null
                    || a.non_num
                    || b.non_num
                    || a.num.is_empty()
                    || b.num.is_empty()
                    || overflow,
            }
        }
    }
}

/// Can `loosely_equals` hold for some pair? Boundary-pair check is
/// exhaustive: `nearly_equal`'s relative tolerance grows strictly slower
/// than the gap.
fn maybe_loose_equal(a: AbsScalar, b: AbsScalar) -> bool {
    if a.non_num || b.non_num {
        return true;
    }
    let (x, y) = (a.num, b.num);
    if x.is_empty() || y.is_empty() {
        return false;
    }
    if x.hi < y.lo {
        nearly_equal(x.hi, y.lo)
    } else if y.hi < x.lo {
        nearly_equal(y.hi, x.lo)
    } else {
        true
    }
}

/// `compare_lt(a, b)` (plain `<` after numeric coercion) decided by the
/// intervals, when both sides are numeric-or-null.
fn lt_kleene(a: AbsScalar, b: AbsScalar) -> Kleene {
    if !(a.numeric_only() && b.numeric_only()) {
        // Text falls into the Value total order; not modeled.
        return Kleene::Unknown;
    }
    if a.num.is_empty() || b.num.is_empty() {
        // One side is always null; the atom never reaches compare_lt.
        return Kleene::Unknown;
    }
    if a.num.hi < b.num.lo {
        Kleene::True
    } else if a.num.lo >= b.num.hi {
        Kleene::False
    } else {
        Kleene::Unknown
    }
}

/// Whether the two expressions provably evaluate to the same `Value` on
/// every row: syntactic identity suffices (columns read the same cell,
/// value placeholders are index-keyed, literals are constants; binary
/// arithmetic is deterministic).
fn same_expr(a: &Expr, b: &Expr) -> bool {
    a == b
}

/// The per-row Kleene truth of one comparison atom.
fn atom_kleene(op: CmpOp, lhs: &Expr, rhs: &Expr) -> Kleene {
    let a = abs_expr(lhs);
    let b = abs_expr(rhs);
    let may_null = a.can_null || b.can_null;
    if same_expr(lhs, rhs) {
        // x op x: non-null rows are an exact tie (loosely_equals is
        // reflexive, compare_lt(x, x) is false); null rows are false.
        return match op {
            CmpOp::Eq | CmpOp::LtEq | CmpOp::GtEq => {
                if may_null {
                    Kleene::Unknown
                } else {
                    Kleene::True
                }
            }
            CmpOp::NotEq | CmpOp::Lt | CmpOp::Gt => Kleene::False,
        };
    }
    if let (Expr::Literal(x), Expr::Literal(y)) = (lhs, rhs) {
        // Fully concrete: replay the executor's comparison.
        if x.is_null() || y.is_null() {
            return Kleene::False;
        }
        let lt = |p: &Value, q: &Value| match (p.as_number(), q.as_number()) {
            (Some(m), Some(n)) => m < n,
            _ => p < q,
        };
        return Kleene::from_bool(match op {
            CmpOp::Eq => x.loosely_equals(y),
            CmpOp::NotEq => !x.loosely_equals(y),
            CmpOp::Lt => lt(x, y),
            CmpOp::Gt => lt(y, x),
            CmpOp::LtEq => !lt(y, x),
            CmpOp::GtEq => !lt(x, y),
        });
    }
    match op {
        CmpOp::Eq => {
            if !maybe_loose_equal(a, b) {
                Kleene::False
            } else {
                Kleene::Unknown
            }
        }
        CmpOp::NotEq => {
            if !maybe_loose_equal(a, b) && !may_null && a.numeric_only() && b.numeric_only() {
                Kleene::True
            } else {
                Kleene::Unknown
            }
        }
        CmpOp::Lt => null_guard(lt_kleene(a, b), may_null),
        CmpOp::Gt => null_guard(lt_kleene(b, a), may_null),
        CmpOp::LtEq => null_guard(lt_kleene(b, a).not(), may_null),
        CmpOp::GtEq => null_guard(lt_kleene(a, b).not(), may_null),
    }
}

/// Nulls compare false, so a possible null demotes a constant-True verdict
/// to Unknown (constant-False survives: false either way).
fn null_guard(k: Kleene, may_null: bool) -> Kleene {
    if k == Kleene::True && may_null {
        Kleene::Unknown
    } else {
        k
    }
}

/// The per-row truth of a condition tree, flagging vacuous atoms (A003)
/// and dead branches (A002) along the way.
fn cond_kleene(c: &Cond, path: &str, degeneracies: &mut Vec<TemplateIssue>) -> Kleene {
    match c {
        Cond::Compare { op, lhs, rhs } => {
            if same_expr(lhs, rhs) {
                degeneracies.push(TemplateIssue::new(
                    "A003",
                    path.to_string(),
                    format!(
                        "atom `{lhs} {op} {rhs}` compares an expression with itself; it can \
                         only test for nulls"
                    ),
                ));
            } else if matches!((lhs, rhs), (Expr::Literal(_), Expr::Literal(_))) {
                degeneracies.push(TemplateIssue::new(
                    "A003",
                    path.to_string(),
                    format!("atom `{lhs} {op} {rhs}` compares two literals; no row is read"),
                ));
            }
            atom_kleene(*op, lhs, rhs)
        }
        Cond::And(x, y) | Cond::Or(x, y) => {
            let is_and = matches!(c, Cond::And(..));
            let name = if is_and { "and" } else { "or" };
            let a = cond_kleene(x, &format!("{path}.{name}[0]"), degeneracies);
            let b = cond_kleene(y, &format!("{path}.{name}[1]"), degeneracies);
            for (slot, k) in [(0usize, a), (1usize, b)] {
                if k.is_constant() {
                    degeneracies.push(TemplateIssue::new(
                        "A002",
                        format!("{path}.{name}[{slot}]"),
                        format!("`{name}` branch is statically always {k}; the branch is dead"),
                    ));
                }
            }
            if is_and {
                a.and(b)
            } else {
                a.or(b)
            }
        }
    }
}

/// The atoms on the top-level `and` spine of the WHERE clause: the
/// conjuncts that constrain *every* surviving row.
fn and_spine<'s>(c: &'s Cond, out: &mut Vec<&'s Cond>) {
    match c {
        Cond::And(a, b) => {
            and_spine(a, out);
            and_spine(b, out);
        }
        other => out.push(other),
    }
}

/// Whether the column is `=`-pinned to a constant (literal or sampled
/// value placeholder) by some spine conjunct.
fn pinned(col: &ColumnRef, spine: &[&Cond]) -> bool {
    spine.iter().any(|c| {
        let Cond::Compare { op: CmpOp::Eq, lhs, rhs } = c else { return false };
        let is_const = |e: &Expr| matches!(e, Expr::Literal(_) | Expr::ValuePlaceholder(_));
        matches!(lhs, Expr::Column(c2) if c2 == col) && is_const(rhs)
            || matches!(rhs, Expr::Column(c2) if c2 == col) && is_const(lhs)
    })
}

/// Funnel-survival estimate from the statement's construct inventory.
fn survival_of(stmt: &SelectStmt, where_truth: Kleene) -> f64 {
    let mut s = 0.95;
    if let Some(w) = &stmt.where_clause {
        fn atoms(c: &Cond) -> usize {
            match c {
                Cond::Compare { .. } => 1,
                Cond::And(a, b) | Cond::Or(a, b) => atoms(a) + atoms(b),
            }
        }
        // Each filtering atom risks an EmptyResult discard.
        s *= 0.93f64.powi(atoms(w) as i32);
    }
    for item in &stmt.items {
        if let SelectItem::Aggregate { func: AggFunc::Sum | AggFunc::Avg, .. } = item {
            // Sum/Avg over zero numeric cells answer Null (EmptyAnswer).
            s *= 0.95;
        }
    }
    if where_truth == Kleene::False {
        // Provably empty row set: only COUNT-style answers survive.
        s = 0.02;
    }
    s.clamp(0.0, 1.0)
}

/// Abstractly interprets a (well-formed) template. See the module docs.
pub fn interpret(template: &SqlTemplate) -> AbsResult {
    let stmt = template.stmt();
    let mut degeneracies = Vec::new();

    let where_truth = match &stmt.where_clause {
        Some(c) => cond_kleene(c, "where", &mut degeneracies),
        None => Kleene::True,
    };

    // Row-set cardinality: any subset of an arbitrary table survives a
    // filter; a constant-false WHERE keeps nothing.
    let mut rows = if where_truth == Kleene::False { Card::EMPTY_ONLY } else { Card::ANY };
    if stmt.limit == Some(1) {
        rows = rows.limit_one();
    }

    if where_truth == Kleene::False {
        degeneracies.push(TemplateIssue::new(
            "A001",
            "where",
            "where clause is statically always false; the result set is provably empty",
        ));
    }

    // Constant-output conviction: every bare-column select item reads a
    // column that a top-level `and` conjunct pins with `=` to a constant.
    if let Some(w) = &stmt.where_clause {
        let mut spine = Vec::new();
        and_spine(w, &mut spine);
        let bare: Vec<&ColumnRef> = stmt
            .items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Expr(Expr::Column(c)) => Some(c),
                _ => None,
            })
            .collect();
        if !bare.is_empty()
            && bare.len() == stmt.items.len()
            && bare.iter().all(|c| pinned(c, &spine))
        {
            degeneracies.push(TemplateIssue::new(
                "A001",
                "select",
                "every output column is =-pinned to a query constant; each emitted cell \
                 loosely equals a value already fixed by the query text",
            ));
        }
    }

    // The numeric readings of emitted cells: Values are never non-finite
    // (parse/number constructors), so FINITE encloses every answer; a
    // lone COUNT(*) answers the row count exactly.
    let value = match stmt.items.as_slice() {
        [SelectItem::Aggregate { func: AggFunc::Count, arg: None, .. }] => rows.count_interval(),
        _ => Interval::FINITE,
    };

    let summary = AbsSummary {
        value,
        // SQL programs answer with cells, not truth values.
        truth: Kleene::Never,
        rows,
    };
    AbsResult { summary, degeneracies, survival: survival_of(stmt, where_truth) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SqlTemplate {
        SqlTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}"))
    }

    fn run(text: &str) -> AbsResult {
        interpret(&parse(text))
    }

    #[test]
    fn healthy_templates_have_no_convictions() {
        for t in [
            "select c1 from w where c2_number > val1",
            "select c1 from w where c2_number > val1 and c3_date = val2",
            "select count ( * ) from w where c1 = val1",
            "select c1 from w order by c2_number desc limit 1",
            "select sum ( c1_number ) from w where c2 = val1",
        ] {
            let r = run(t);
            assert!(r.degeneracies.is_empty(), "{t}: {:?}", r.degeneracies);
            assert!(r.survival > 0.0 && r.survival <= 1.0, "{t}: {}", r.survival);
        }
    }

    #[test]
    fn echo_select_is_constant_output() {
        for t in [
            "select c1_number from w where c1_number = val1",
            "select c1_date from w where c1_date = val1 order by c1_date desc limit 1",
            "select c1_number from w where c1_number = val1 order by c2_number asc limit 1",
        ] {
            let r = run(t);
            assert!(
                r.degeneracies.iter().any(|d| d.code == "A001" && d.locus == "select"),
                "{t}: {:?}",
                r.degeneracies
            );
        }
    }

    #[test]
    fn non_echo_selects_are_not_convicted() {
        // The emitted column differs from the pinned one.
        let r = run("select c1 from w where c2 = val1");
        assert!(r.degeneracies.is_empty(), "{:?}", r.degeneracies);
        // Ordered comparison does not pin.
        let o = run("select c1_number from w where c1_number > val1");
        assert!(o.degeneracies.is_empty(), "{:?}", o.degeneracies);
        // An Or-spine does not pin either.
        let or = run("select c1 from w where ( c1 = val1 or c2 = val2 )");
        assert!(!or.degeneracies.iter().any(|d| d.code == "A001"), "{:?}", or.degeneracies);
        // Aggregates are not echoes.
        let agg = run("select count ( * ) from w where c1 = val1");
        assert!(agg.degeneracies.is_empty(), "{:?}", agg.degeneracies);
    }

    #[test]
    fn self_comparison_atom_is_vacuous() {
        let r = run("select c1 from w where c2 = c2");
        assert!(r.degeneracies.iter().any(|d| d.code == "A003"), "{:?}", r.degeneracies);
        // x = x is NOT always-true (nulls compare false), so no A001.
        assert!(!r.degeneracies.iter().any(|d| d.code == "A001"), "{:?}", r.degeneracies);
    }

    #[test]
    fn self_inequality_atom_is_always_false() {
        let r = run("select c1 from w where c2 != c2");
        assert!(r.degeneracies.iter().any(|d| d.code == "A003"));
        assert!(r.degeneracies.iter().any(|d| d.code == "A001" && d.locus == "where"));
        assert!(r.summary.rows.is_always_empty());
        assert!(r.survival < 0.1);
    }

    #[test]
    fn literal_atoms_are_vacuous_and_decide_branches() {
        let r = run("select c1 from w where ( 1 = 1 or c2 = val1 )");
        assert!(r.degeneracies.iter().any(|d| d.code == "A003"), "{:?}", r.degeneracies);
        assert!(r.degeneracies.iter().any(|d| d.code == "A002"), "{:?}", r.degeneracies);
        // or(true, _) keeps every row: not empty, no A001.
        assert!(!r.degeneracies.iter().any(|d| d.code == "A001"));

        let dead = run("select c1 from w where 1 = 2 and c2 = val1");
        assert!(dead.degeneracies.iter().any(|d| d.code == "A002"));
        assert!(dead.degeneracies.iter().any(|d| d.code == "A001" && d.locus == "where"));
        assert!(dead.summary.rows.is_always_empty());
    }

    #[test]
    fn count_star_reads_the_cardinality_lattice() {
        let all = run("select count ( * ) from w");
        assert_eq!(all.summary.value, Interval::new(0.0, f64::INFINITY));
        let none = run("select count ( * ) from w where c1 != c1");
        assert_eq!(none.summary.value, Interval::point(0.0));
    }

    #[test]
    fn limit_one_truncates_cardinality() {
        let r = run("select c1 from w order by c2_number desc limit 1");
        assert!(!r.summary.rows.can_many);
        assert!(r.summary.rows.can_one);
    }

    #[test]
    fn survival_orders_construct_risk() {
        let light = run("select c1 from w order by c2_number desc limit 1").survival;
        let filtered = run("select c1 from w where c2 = val1").survival;
        let heavy = run("select c1 from w where c2 = val1 and c3_number > val2").survival;
        assert!(light > filtered && filtered > heavy, "{light} {filtered} {heavy}");
    }
}
