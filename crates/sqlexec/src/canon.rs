//! Canonical forms for SQL templates (cross-template dedup).
//!
//! Two templates are *equivalent* when every seed instantiates them to the
//! same query result and highlight set — the witnessable notion
//! `uctr::analysis` verifies differentially. The canonical form applies
//! only rewrites that provably preserve the per-seed draw stream:
//!
//! * Comparison orientation: `literal op column` flips to
//!   `column mirror(op) literal` (`5 < c1` ⇒ `c1 > 5`). Safe because
//!   value-placeholder pairing scans both operand orders symmetrically and
//!   the moved side carries no holes of its own.
//! * `a != a` (structurally identical operands) folds to the constant
//!   marker `0 != 0` — per the executor's null rules a self-`!=` is false
//!   on every row, nulls included.
//! * AND / OR conjunct chains are flattened, re-associated left, and —
//!   when at most one conjunct contains holes (so neither the column-hole
//!   scan order nor the value-draw order can change) — sorted under a
//!   hole-index-blind structural order. Unsafe chains keep their conjunct
//!   order: classes get finer, never wrong.
//!
//! Placeholders are alpha-renamed into first-use order afterwards (in the
//! same `items → where → group by → order by` order the hole scan uses).
//! The DSL has no `NOT`, so the double-negation identity is vacuous here.

use crate::ast::{CmpOp, ColumnRef, Cond, Expr, SelectItem, SelectStmt};
use crate::template::SqlTemplate;
use tabular::Value;

/// The canonical signature of a template: the rendered canonical
/// statement. Equal canonical forms ⇒ draw-stream-identical instantiation.
pub fn canonical_form(t: &SqlTemplate) -> String {
    canonical_stmt(t.stmt()).to_string()
}

/// The canonicalized statement: comparison orientation fixed, safe
/// conjunct sorts applied, placeholders alpha-renamed in first-use order.
pub fn canonical_stmt(stmt: &SelectStmt) -> SelectStmt {
    let mut s = stmt.clone();
    if let Some(w) = s.where_clause.take() {
        s.where_clause = Some(canon_cond(w));
    }
    renumber(&mut s);
    s
}

fn canon_cond(c: Cond) -> Cond {
    match c {
        Cond::Compare { op, lhs, rhs } => {
            if op == CmpOp::NotEq && lhs == rhs {
                // Self-`!=` is false on every row (nulls included): fold to
                // the canonical always-false marker.
                return Cond::Compare {
                    op: CmpOp::NotEq,
                    lhs: Expr::Literal(Value::Number(0.0)),
                    rhs: Expr::Literal(Value::Number(0.0)),
                };
            }
            let flip = matches!(lhs, Expr::Literal(_) | Expr::ValuePlaceholder(_))
                && matches!(rhs, Expr::Column(_));
            if flip {
                Cond::Compare { op: mirror(op), lhs: rhs, rhs: lhs }
            } else {
                Cond::Compare { op, lhs, rhs }
            }
        }
        Cond::And(a, b) => rebuild_chain(false, *a, *b),
        Cond::Or(a, b) => rebuild_chain(true, *a, *b),
    }
}

fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::LtEq => CmpOp::GtEq,
        CmpOp::GtEq => CmpOp::LtEq,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::NotEq => CmpOp::NotEq,
    }
}

/// Flattens a maximal same-connective chain, canonicalizes every conjunct,
/// sorts them when swap-safe, and rebuilds the chain left-associated.
fn rebuild_chain(is_or: bool, a: Cond, b: Cond) -> Cond {
    let mut leaves = Vec::new();
    collect_chain(is_or, a, &mut leaves);
    collect_chain(is_or, b, &mut leaves);
    let mut leaves: Vec<Cond> = leaves.into_iter().map(canon_cond).collect();
    // Swapping two hole-bearing conjuncts would reorder the column-hole
    // scan and the value draws; a single hole-bearing conjunct can move
    // freely among hole-free ones.
    if leaves.iter().filter(|l| cond_has_holes(l)).count() <= 1 {
        leaves.sort_by_key(anon_cond);
    }
    let mut it = leaves.into_iter();
    let first = match it.next() {
        Some(first) => first,
        // collect_chain received two subtrees, so the chain has >= 2
        // leaves; degrade to the always-false marker rather than panic.
        None => {
            return Cond::Compare {
                op: CmpOp::NotEq,
                lhs: Expr::Literal(Value::Number(0.0)),
                rhs: Expr::Literal(Value::Number(0.0)),
            }
        }
    };
    it.fold(first, |acc, leaf| {
        if is_or {
            Cond::Or(Box::new(acc), Box::new(leaf))
        } else {
            Cond::And(Box::new(acc), Box::new(leaf))
        }
    })
}

fn collect_chain(is_or: bool, c: Cond, out: &mut Vec<Cond>) {
    match c {
        Cond::And(a, b) if !is_or => {
            collect_chain(is_or, *a, out);
            collect_chain(is_or, *b, out);
        }
        Cond::Or(a, b) if is_or => {
            collect_chain(is_or, *a, out);
            collect_chain(is_or, *b, out);
        }
        other => out.push(other),
    }
}

fn expr_has_holes(e: &Expr) -> bool {
    match e {
        Expr::Column(ColumnRef::Placeholder { .. }) | Expr::ValuePlaceholder(_) => true,
        Expr::Binary { lhs, rhs, .. } => expr_has_holes(lhs) || expr_has_holes(rhs),
        _ => false,
    }
}

fn cond_has_holes(c: &Cond) -> bool {
    match c {
        Cond::Compare { lhs, rhs, .. } => expr_has_holes(lhs) || expr_has_holes(rhs),
        Cond::And(a, b) | Cond::Or(a, b) => cond_has_holes(a) || cond_has_holes(b),
    }
}

/// Render a condition with placeholder indices blinded, so the sort order
/// cannot depend on the (arbitrary) numbering a template happens to use.
fn anon_cond(c: &Cond) -> String {
    fn anon_expr(e: &Expr) -> String {
        match e {
            Expr::Column(ColumnRef::Placeholder { ty, .. }) => match ty {
                Some(t) => format!("c_{t}"),
                None => "c".to_string(),
            },
            Expr::ValuePlaceholder(_) => "val".to_string(),
            Expr::Binary { op, lhs, rhs } => {
                format!("( {} {} {} )", anon_expr(lhs), op, anon_expr(rhs))
            }
            other => other.to_string(),
        }
    }
    match c {
        Cond::Compare { op, lhs, rhs } => format!("{} {} {}", anon_expr(lhs), op, anon_expr(rhs)),
        Cond::And(a, b) => format!("{} and {}", anon_cond(a), anon_cond(b)),
        Cond::Or(a, b) => format!("( {} or {} )", anon_cond(a), anon_cond(b)),
    }
}

/// Alpha-rename column and value placeholders (separately) into first-use
/// order, in the same clause order the hole scan visits.
fn renumber(stmt: &mut SelectStmt) {
    let mut cols: Vec<usize> = Vec::new();
    let mut vals: Vec<usize> = Vec::new();
    let mut map_col = |c: &mut ColumnRef| {
        if let ColumnRef::Placeholder { index, .. } = c {
            *index = first_use(&mut cols, *index);
        }
    };
    fn walk_expr(e: &mut Expr, map_col: &mut impl FnMut(&mut ColumnRef), vals: &mut Vec<usize>) {
        match e {
            Expr::Column(c) => map_col(c),
            Expr::ValuePlaceholder(i) => *i = first_use(vals, *i),
            Expr::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, map_col, vals);
                walk_expr(rhs, map_col, vals);
            }
            Expr::Literal(_) => {}
        }
    }
    fn walk_cond(c: &mut Cond, map_col: &mut impl FnMut(&mut ColumnRef), vals: &mut Vec<usize>) {
        match c {
            Cond::Compare { lhs, rhs, .. } => {
                walk_expr(lhs, map_col, vals);
                walk_expr(rhs, map_col, vals);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                walk_cond(a, map_col, vals);
                walk_cond(b, map_col, vals);
            }
        }
    }
    for item in &mut stmt.items {
        match item {
            SelectItem::Expr(e) | SelectItem::Aggregate { arg: Some(e), .. } => {
                walk_expr(e, &mut map_col, &mut vals)
            }
            _ => {}
        }
    }
    if let Some(w) = &mut stmt.where_clause {
        walk_cond(w, &mut map_col, &mut vals);
    }
    if let Some(g) = &mut stmt.group_by {
        map_col(g);
    }
    if let Some((e, _)) = &mut stmt.order_by {
        walk_expr(e, &mut map_col, &mut vals);
    }
}

fn first_use(seen: &mut Vec<usize>, i: usize) -> usize {
    match seen.iter().position(|&x| x == i) {
        Some(p) => p + 1,
        None => {
            seen.push(i);
            seen.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(text: &str) -> String {
        canonical_form(
            &SqlTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}")),
        )
    }

    #[test]
    fn comparison_orientation_is_fixed() {
        assert_eq!(
            canon("select c1 from w where 5 < c2_number"),
            canon("select c1 from w where c2_number > 5")
        );
        assert_eq!(
            canon("select c1 from w where val1 = c2"),
            canon("select c1 from w where c2 = val1")
        );
        // Column-vs-column comparisons are left alone (both sides hole-y).
        assert_ne!(
            canon("select * from w where c1_number < c2_number"),
            canon("select * from w where c2_number > c1_number")
        );
    }

    #[test]
    fn self_not_eq_folds_to_the_false_marker() {
        assert_eq!(
            canon("select count ( * ) from w where c1 != c1"),
            canon("select count ( * ) from w where 0 != 0")
        );
        // A genuine two-column != is not a self-comparison.
        assert_ne!(
            canon("select count ( * ) from w where c1 != c2"),
            canon("select count ( * ) from w where 0 != 0")
        );
    }

    #[test]
    fn safe_conjunct_chains_sort() {
        // One hole-free conjunct can move across the chain.
        assert_eq!(
            canon("select c1 from w where 1 = 1 and c2 = val1"),
            canon("select c1 from w where c2 = val1 and 1 = 1")
        );
        // Two hole-bearing conjuncts must keep their order: swapping would
        // reorder the hole scan and the value draws. (Note the conjuncts
        // must be structurally distinct — same-shape conjuncts in either
        // order are already alpha-equal under renumbering, a true merge.)
        assert_ne!(
            canon("select c1 from w where c2 = val1 and c3_number > val2"),
            canon("select c1 from w where c2_number > val1 and c3 = val2")
        );
    }

    #[test]
    fn chains_reassociate_to_one_shape() {
        let left = "select c1 from w where ( 1 = 1 or 2 = 2 ) or 3 = 3";
        let right = "select c1 from w where 1 = 1 or ( 2 = 2 or 3 = 3 )";
        assert_eq!(canon(left), canon(right));
    }

    #[test]
    fn alpha_renaming_is_quotiented_out() {
        assert_eq!(
            canon("select c4 from w where c7 = val3"),
            canon("select c1 from w where c2 = val1")
        );
        // Repeated placeholders keep their identity; type suffixes are
        // part of the hole's meaning and survive renaming.
        assert_ne!(
            canon("select c1 from w where c1 = val1"),
            canon("select c1 from w where c2 = val1")
        );
        assert_ne!(canon("select c1_number from w"), canon("select c1 from w"));
    }

    #[test]
    fn canonical_form_is_idempotent() {
        for text in [
            "select c1 from w where 5 < c2_number",
            "select c2 from w where c3 = val1 order by c1_number desc limit 1",
            "select count ( * ) from w where c1 != c1",
            "select c1 from w where 1 = 1 and c2 = val1",
        ] {
            let t = SqlTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}"));
            let once = canonical_stmt(t.stmt());
            let twice = canonical_stmt(&once);
            assert_eq!(once, twice, "canonicalizing {text:?} twice must be a fixed point");
        }
    }
}
