//! SQL abstract syntax tree.
//!
//! Covers the reasoning types the paper lists for SQL queries (§II-C):
//! equivalence (`=`), comparison (`>`, `<`, `ORDER BY`, `MAX`, `MIN`),
//! counting (`COUNT`), sum (`+` / `SUM`), diff (`-`), and conjunction
//! (`AND`), plus `OR`, `DISTINCT`, `GROUP BY`, `AVG` for template coverage.
//!
//! Every AST node renders back to SQL text via `Display`, which gives the
//! parser a round-trip property that the proptest suite checks.

use std::fmt;
use tabular::Value;

/// A column reference: by name (as in instantiated queries) or by template
/// placeholder (`c1`, `c2_number`), kept distinct so the template sampler
/// can find the holes.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnRef {
    Named(String),
    /// Placeholder index (1-based, as in SQUALL) and an optional required
    /// type suffix (`number`, `date`, `text`).
    Placeholder {
        index: usize,
        ty: Option<PlaceholderType>,
    },
}

/// Type constraint a template placeholder imposes on the column it binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceholderType {
    Number,
    Date,
    Text,
}

impl fmt::Display for PlaceholderType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceholderType::Number => write!(f, "number"),
            PlaceholderType::Date => write!(f, "date"),
            PlaceholderType::Text => write!(f, "text"),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnRef::Named(name) => {
                if is_bare_safe(name) {
                    write!(f, "{name}")
                } else {
                    write!(f, "[{name}]")
                }
            }
            ColumnRef::Placeholder { index, ty } => match ty {
                Some(t) => write!(f, "c{index}_{t}"),
                None => write!(f, "c{index}"),
            },
        }
    }
}

/// True when a column name can be rendered without brackets and reparse as
/// the same identifier: it must start with a letter/underscore, contain only
/// word characters, and not collide with a keyword or a placeholder pattern
/// (`c1`, `val2`) — a year-named column like `2015` would otherwise reparse
/// as a number literal.
fn is_bare_safe(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    if !(first.is_ascii_alphabetic() || first == '_') {
        return false;
    }
    if !chars.all(|c| c.is_alphanumeric() || c == '_') {
        return false;
    }
    const KEYWORDS: &[&str] = &[
        "select", "distinct", "from", "where", "group", "by", "order", "asc", "desc", "limit",
        "and", "or", "count", "sum", "avg", "min", "max", "null", "true", "false", "w",
    ];
    let lower = name.to_ascii_lowercase();
    if KEYWORDS.contains(&lower.as_str()) {
        return false;
    }
    // c<digits>[_type] and val<digits> would reparse as template holes.
    let is_placeholder = |prefix: &str| {
        lower
            .strip_prefix(prefix)
            .map(|rest| {
                let digits = rest.split('_').next().unwrap_or(rest);
                !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
            })
            .unwrap_or(false)
    };
    !(is_placeholder("c") || is_placeholder("val"))
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    /// A literal constant.
    Literal(Value),
    /// A value placeholder `val1` bound during sampling to a cell of the
    /// column placeholder it co-occurs with.
    ValuePlaceholder(usize),
    /// Binary arithmetic.
    Binary {
        op: ArithOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
}

/// Arithmetic operators in scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithOp::Add => write!(f, "+"),
            ArithOp::Sub => write!(f, "-"),
            ArithOp::Mul => write!(f, "*"),
            ArithOp::Div => write!(f, "/"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => match v {
                Value::Number(n) if n.fract() == 0.0 && n.abs() < 1e15 => {
                    write!(f, "{}", *n as i64)
                }
                Value::Number(n) => write!(f, "{}", tabular::format_number(*n)),
                Value::Text(s) if !s.contains('\'') => write!(f, "'{s}'"),
                Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
                Value::Date(d) => write!(f, "'{d}'"),
                Value::Bool(b) => write!(f, "{b}"),
                Value::Null => write!(f, "null"),
            },
            Expr::ValuePlaceholder(i) => write!(f, "val{i}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "( {lhs} {op} {rhs} )"),
        }
    }
}

/// Comparison operators in WHERE conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    Gt,
    LtEq,
    GtEq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Eq => write!(f, "="),
            CmpOp::NotEq => write!(f, "!="),
            CmpOp::Lt => write!(f, "<"),
            CmpOp::Gt => write!(f, ">"),
            CmpOp::LtEq => write!(f, "<="),
            CmpOp::GtEq => write!(f, ">="),
        }
    }
}

/// A boolean condition tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    Compare { op: CmpOp, lhs: Expr, rhs: Expr },
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Compare { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Cond::And(a, b) => write!(f, "{a} and {b}"),
            Cond::Or(a, b) => write!(f, "( {a} or {b} )"),
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::Count => write!(f, "count"),
            AggFunc::Sum => write!(f, "sum"),
            AggFunc::Avg => write!(f, "avg"),
            AggFunc::Min => write!(f, "min"),
            AggFunc::Max => write!(f, "max"),
        }
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// Plain expression.
    Expr(Expr),
    /// `agg(expr)`; `COUNT(*)` is `Aggregate { func: Count, arg: None }`.
    Aggregate { func: AggFunc, arg: Option<Expr>, distinct: bool },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => write!(f, "*"),
            SelectItem::Expr(e) => write!(f, "{e}"),
            SelectItem::Aggregate { func, arg, distinct } => {
                let d = if *distinct { "distinct " } else { "" };
                match arg {
                    Some(e) => write!(f, "{func} ( {d}{e} )"),
                    None => write!(f, "{func} ( * )"),
                }
            }
        }
    }
}

/// ORDER BY direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderDir {
    #[default]
    Asc,
    Desc,
}

impl fmt::Display for OrderDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderDir::Asc => write!(f, "asc"),
            OrderDir::Desc => write!(f, "desc"),
        }
    }
}

/// A complete SELECT statement over the single table `w` (as in SQUALL
/// templates, where `w` always denotes "the table").
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub distinct: bool,
    pub where_clause: Option<Cond>,
    pub group_by: Option<ColumnRef>,
    pub order_by: Option<(Expr, OrderDir)>,
    pub limit: Option<usize>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        if self.distinct {
            write!(f, "distinct ")?;
        }
        for (k, item) in self.items.iter().enumerate() {
            if k > 0 {
                write!(f, " , ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " from w")?;
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        if let Some(g) = &self.group_by {
            write!(f, " group by {g}")?;
        }
        if let Some((e, dir)) = &self.order_by {
            write!(f, " order by {e} {dir}")?;
        }
        if let Some(n) = self.limit {
            write!(f, " limit {n}")?;
        }
        Ok(())
    }
}

impl SelectStmt {
    /// Visits all column references in the statement.
    pub fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a ColumnRef)) {
        fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a ColumnRef)) {
            match e {
                Expr::Column(c) => f(c),
                Expr::Binary { lhs, rhs, .. } => {
                    walk_expr(lhs, f);
                    walk_expr(rhs, f);
                }
                _ => {}
            }
        }
        fn walk_cond<'a>(c: &'a Cond, f: &mut impl FnMut(&'a ColumnRef)) {
            match c {
                Cond::Compare { lhs, rhs, .. } => {
                    walk_expr(lhs, f);
                    walk_expr(rhs, f);
                }
                Cond::And(a, b) | Cond::Or(a, b) => {
                    walk_cond(a, f);
                    walk_cond(b, f);
                }
            }
        }
        for item in &self.items {
            match item {
                SelectItem::Expr(e) | SelectItem::Aggregate { arg: Some(e), .. } => walk_expr(e, f),
                _ => {}
            }
        }
        if let Some(w) = &self.where_clause {
            walk_cond(w, f);
        }
        if let Some(g) = &self.group_by {
            f(g);
        }
        if let Some((e, _)) = &self.order_by {
            walk_expr(e, f);
        }
    }

    /// True if any node is still a template placeholder (column or value).
    pub fn has_placeholders(&self) -> bool {
        let mut found = false;
        self.visit_columns(&mut |c| {
            if matches!(c, ColumnRef::Placeholder { .. }) {
                found = true;
            }
        });
        if found {
            return true;
        }
        // Check value placeholders too.
        fn expr_has_valp(e: &Expr) -> bool {
            match e {
                Expr::ValuePlaceholder(_) => true,
                Expr::Binary { lhs, rhs, .. } => expr_has_valp(lhs) || expr_has_valp(rhs),
                _ => false,
            }
        }
        fn cond_has_valp(c: &Cond) -> bool {
            match c {
                Cond::Compare { lhs, rhs, .. } => expr_has_valp(lhs) || expr_has_valp(rhs),
                Cond::And(a, b) | Cond::Or(a, b) => cond_has_valp(a) || cond_has_valp(b),
            }
        }
        self.items.iter().any(|i| match i {
            SelectItem::Expr(e) | SelectItem::Aggregate { arg: Some(e), .. } => expr_has_valp(e),
            _ => false,
        }) || self.where_clause.as_ref().is_some_and(cond_has_valp)
            || self.order_by.as_ref().is_some_and(|(e, _)| expr_has_valp(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_simple() {
        let stmt = SelectStmt {
            items: vec![SelectItem::Expr(Expr::Column(ColumnRef::Named("name".into())))],
            distinct: false,
            where_clause: Some(Cond::Compare {
                op: CmpOp::Gt,
                lhs: Expr::Column(ColumnRef::Named("score".into())),
                rhs: Expr::Literal(Value::Number(10.0)),
            }),
            group_by: None,
            order_by: None,
            limit: Some(1),
        };
        assert_eq!(stmt.to_string(), "select name from w where score > 10 limit 1");
    }

    #[test]
    fn display_placeholder_with_type() {
        let c = ColumnRef::Placeholder { index: 2, ty: Some(PlaceholderType::Number) };
        assert_eq!(c.to_string(), "c2_number");
    }

    #[test]
    fn display_bracketed_names() {
        let c = ColumnRef::Named("total deputies".into());
        assert_eq!(c.to_string(), "[total deputies]");
    }

    #[test]
    fn has_placeholders_detects_value_holes() {
        let stmt = SelectStmt {
            items: vec![SelectItem::Expr(Expr::Column(ColumnRef::Named("a".into())))],
            distinct: false,
            where_clause: Some(Cond::Compare {
                op: CmpOp::Eq,
                lhs: Expr::Column(ColumnRef::Named("b".into())),
                rhs: Expr::ValuePlaceholder(1),
            }),
            group_by: None,
            order_by: None,
            limit: None,
        };
        assert!(stmt.has_placeholders());
    }

    #[test]
    fn visit_columns_covers_all_clauses() {
        let stmt = SelectStmt {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Sum,
                arg: Some(Expr::Column(ColumnRef::Named("x".into()))),
                distinct: false,
            }],
            distinct: false,
            where_clause: Some(Cond::And(
                Box::new(Cond::Compare {
                    op: CmpOp::Eq,
                    lhs: Expr::Column(ColumnRef::Named("y".into())),
                    rhs: Expr::Literal(Value::Number(1.0)),
                }),
                Box::new(Cond::Compare {
                    op: CmpOp::Lt,
                    lhs: Expr::Column(ColumnRef::Named("z".into())),
                    rhs: Expr::Literal(Value::Number(2.0)),
                }),
            )),
            group_by: Some(ColumnRef::Named("g".into())),
            order_by: Some((Expr::Column(ColumnRef::Named("o".into())), OrderDir::Desc)),
            limit: None,
        };
        let mut names = Vec::new();
        stmt.visit_columns(&mut |c| {
            if let ColumnRef::Named(n) = c {
                names.push(n.clone());
            }
        });
        assert_eq!(names, vec!["x", "y", "z", "g", "o"]);
    }
}
