//! Static analysis of SQL templates: typechecking without a table.
//!
//! [`analyze`] inspects a parsed [`SqlTemplate`] and reports defects that
//! would otherwise surface one failed instantiation at a time at runtime,
//! plus the [`SchemaRequirement`] a table must satisfy for
//! `try_instantiate_in` to have any chance of succeeding.
//!
//! Type rules:
//!
//! * **unpaired-value-hole** — every distinct `valN` placeholder must occur
//!   in at least one `WHERE` comparison directly against a column
//!   placeholder (`value_hole_columns` pairing). An unpaired hole never
//!   receives a sampled value, so substitution deterministically fails with
//!   `MalformedTemplate` on every table and every RNG stream.
//! * **hole-type-conflict** — reusing a column hole index with differing
//!   type annotations (`c1` vs `c1_number`) is a silent misbinding: only
//!   the first occurrence's constraint is honored during binding, the rest
//!   are ignored.
//!
//! Requirement rules (sound *and* complete for the binding phase): typed
//! holes bind to distinct columns of the exact inferred
//! [`tabular::ColumnType`] and
//! are assigned before untyped holes, so binding succeeds on a table iff it
//! has at least as many columns of each constrained type as there are holes
//! constraining it, and at least as many columns overall as there are
//! distinct holes. Any paired value hole additionally needs one row — on an
//! empty table every candidate pool is empty and value sampling fails with
//! `NoValueCandidates` before consuming a draw from that pool.

use crate::ast::{ColumnRef, PlaceholderType, SelectStmt};
use crate::template::{value_hole_columns, SqlTemplate};
use tabular::{SchemaRequirement, TemplateAnalysis, TemplateIssue};

/// Statically analyzes a SQL template. See the module docs for the rules.
pub fn analyze(template: &SqlTemplate) -> TemplateAnalysis {
    let stmt = template.stmt();
    let mut issues = Vec::new();

    // Every (index, ty) occurrence, not just the first per index: conflict
    // detection needs to see the annotations instantiation ignores.
    let mut occurrences: Vec<(usize, Option<PlaceholderType>)> = Vec::new();
    stmt.visit_columns(&mut |c| {
        if let ColumnRef::Placeholder { index, ty } = c {
            occurrences.push((*index, *ty));
        }
    });
    let mut hole_indices: Vec<usize> = occurrences.iter().map(|&(i, _)| i).collect();
    hole_indices.sort_unstable();
    hole_indices.dedup();
    for &index in &hole_indices {
        let mut tys: Vec<Option<PlaceholderType>> =
            occurrences.iter().filter(|&&(i, _)| i == index).map(|&(_, ty)| ty).collect();
        tys.dedup();
        if tys.len() > 1 {
            issues.push(TemplateIssue::new(
                "hole-type-conflict",
                format!("c{index}"),
                format!(
                    "column hole c{index} is annotated with conflicting types; \
                     only the first occurrence's constraint binds"
                ),
            ));
        }
    }

    let paired: Vec<(usize, usize)> = value_hole_columns(stmt);
    for val_idx in value_hole_indices(stmt) {
        if !paired.iter().any(|&(v, _)| v == val_idx) {
            issues.push(TemplateIssue::new(
                "unpaired-value-hole",
                format!("val{val_idx}"),
                format!(
                    "value hole val{val_idx} is not compared against any column hole \
                     in the where clause; instantiation always fails with MalformedTemplate"
                ),
            ));
        }
    }

    // Requirement from the binding semantics: first-occurrence type per
    // hole (the constraint try_instantiate actually enforces).
    let holes = template.column_holes();
    let mut requirement = SchemaRequirement { min_cols: holes.len(), ..SchemaRequirement::NONE };
    for (_, ty) in &holes {
        match ty {
            Some(PlaceholderType::Number) => requirement.min_number_cols += 1,
            Some(PlaceholderType::Date) => requirement.min_date_cols += 1,
            Some(PlaceholderType::Text) => requirement.min_text_cols += 1,
            None => {}
        }
    }
    if !paired.is_empty() {
        requirement.min_rows = 1;
    }

    if issues.is_empty() {
        let abs = crate::absint::interpret(template);
        TemplateAnalysis {
            issues,
            requirement,
            degeneracies: abs.degeneracies,
            summary: abs.summary,
            survival: abs.survival,
        }
    } else {
        // Malformed templates never reach a bank; the abstract layer stays
        // at its sound default and the cost model writes them off.
        TemplateAnalysis {
            issues,
            requirement,
            degeneracies: Vec::new(),
            summary: tabular::AbsSummary::TOP,
            survival: 0.0,
        }
    }
}

/// Every distinct `valN` index anywhere in the statement (select items,
/// where clause, order by), in first-appearance order.
fn value_hole_indices(stmt: &SelectStmt) -> Vec<usize> {
    use crate::ast::{Cond, Expr, SelectItem};
    let mut found = Vec::new();
    fn walk_expr(e: &Expr, found: &mut Vec<usize>) {
        match e {
            Expr::ValuePlaceholder(i) if !found.contains(i) => found.push(*i),
            Expr::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, found);
                walk_expr(rhs, found);
            }
            _ => {}
        }
    }
    fn walk_cond(c: &Cond, found: &mut Vec<usize>) {
        match c {
            Cond::Compare { lhs, rhs, .. } => {
                walk_expr(lhs, found);
                walk_expr(rhs, found);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                walk_cond(a, found);
                walk_cond(b, found);
            }
        }
    }
    for item in &stmt.items {
        match item {
            SelectItem::Expr(e) | SelectItem::Aggregate { arg: Some(e), .. } => {
                walk_expr(e, &mut found)
            }
            _ => {}
        }
    }
    if let Some(w) = &stmt.where_clause {
        walk_cond(w, &mut found);
    }
    if let Some((e, _)) = &stmt.order_by {
        walk_expr(e, &mut found);
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SqlTemplate {
        SqlTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}"))
    }

    #[test]
    fn well_typed_template_is_clean_with_exact_requirement() {
        let a = analyze(&parse("select c1 from w where c2_number > val1 and c3_date = val2"));
        assert!(a.is_clean(), "{:?}", a.issues);
        assert_eq!(
            a.requirement,
            SchemaRequirement {
                min_rows: 1,
                min_cols: 3,
                min_number_cols: 1,
                min_date_cols: 1,
                ..SchemaRequirement::NONE
            }
        );
    }

    #[test]
    fn template_without_value_holes_needs_no_rows() {
        let a = analyze(&parse("select c1 from w order by c2_number desc limit 1"));
        assert!(a.is_clean());
        assert_eq!(a.requirement.min_rows, 0);
        assert_eq!(a.requirement.min_cols, 2);
        assert_eq!(a.requirement.min_number_cols, 1);
    }

    #[test]
    fn unpaired_value_hole_is_flagged() {
        // val1 appears in the select list, never compared to a column hole.
        let a = analyze(&parse("select val1 from w where c1 = val2"));
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, "unpaired-value-hole");
        assert_eq!(a.issues[0].locus, "val1");
    }

    #[test]
    fn conflicting_hole_annotations_are_flagged() {
        let a = analyze(&parse("select c1 from w order by c1_number desc limit 1"));
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, "hole-type-conflict");
        assert_eq!(a.issues[0].locus, "c1");
    }

    #[test]
    fn schema_infeasible_requirement_is_reported_not_flagged() {
        // Demanding two numeric columns is not a template defect — it just
        // narrows which tables qualify.
        let a = analyze(&parse("select c1_number from w order by c2_number desc limit 1"));
        assert!(a.is_clean());
        assert_eq!(a.requirement.min_number_cols, 2);
        assert_eq!(a.requirement.min_cols, 2);
    }
}
