//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! stmt      := SELECT [DISTINCT] items FROM w [WHERE cond] [GROUP BY colref]
//!              [ORDER BY expr (ASC|DESC)?] [LIMIT number] [;]
//! items     := item (',' item)*
//! item      := '*' | agg '(' [DISTINCT] (expr | '*') ')' | expr
//! agg       := COUNT | SUM | AVG | MIN | MAX
//! cond      := orcond
//! orcond    := andcond (OR andcond)*
//! andcond   := cmp (AND cmp)*
//! cmp       := expr (= | != | <> | < | > | <= | >=) expr | '(' cond ')'
//! expr      := term ((+|-) term)*
//! term      := factor ((*|/) factor)*
//! factor    := colref | literal | valN | '(' expr ')'
//! colref    := cN[_type] | identifier | [bracketed] | "quoted"
//! ```
//!
//! Identifiers of the form `c<digits>` / `c<digits>_<type>` are parsed as
//! template column placeholders; `val<digits>` as value placeholders. Any
//! other identifier is a literal column name.

use crate::ast::*;
use crate::token::{lex, LexError, Token};
use std::fmt;
use tabular::Value;

/// Parser error.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    Lex(LexError),
    /// Unexpected token (or end of input) with a description of what was
    /// expected.
    Unexpected {
        got: Option<Token>,
        expected: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { got: Some(t), expected } => {
                write!(f, "unexpected token `{t}`, expected {expected}")
            }
            ParseError::Unexpected { got: None, expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses one SELECT statement.
pub fn parse(input: &str) -> Result<SelectStmt, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select_stmt()?;
    p.eat_optional_semicolon();
    if let Some(t) = p.peek() {
        return Err(ParseError::Unexpected {
            got: Some(t.clone()),
            expected: "end of input".into(),
        });
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                got: self.peek().cloned(),
                expected: format!("keyword `{kw}`"),
            })
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::Unexpected { got: self.peek().cloned(), expected: format!("`{t}`") })
        }
    }

    fn eat_optional_semicolon(&mut self) {
        if self.peek() == Some(&Token::Semicolon) {
            self.pos += 1;
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut items = vec![self.select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        self.expect_keyword("from")?;
        // table name: accept `w` or any identifier (templates always use w)
        match self.next() {
            Some(Token::Ident(_)) | Some(Token::QuotedIdent(_)) => {}
            got => return Err(ParseError::Unexpected { got, expected: "table name".into() }),
        }
        let where_clause = if self.eat_keyword("where") { Some(self.cond()?) } else { None };
        let group_by = if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            Some(self.column_ref()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            let e = self.expr()?;
            let dir = if self.eat_keyword("desc") {
                OrderDir::Desc
            } else {
                self.eat_keyword("asc");
                OrderDir::Asc
            };
            Some((e, dir))
        } else {
            None
        };
        let limit = if self.eat_keyword("limit") {
            match self.next() {
                Some(Token::NumberLit(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                got => {
                    return Err(ParseError::Unexpected {
                        got,
                        expected: "non-negative integer".into(),
                    })
                }
            }
        } else {
            None
        };
        Ok(SelectStmt { items, distinct, where_clause, group_by, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(SelectItem::Star);
        }
        // Aggregate?
        if let Some(Token::Ident(s)) = self.peek() {
            let func = match s.to_ascii_lowercase().as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "avg" => Some(AggFunc::Avg),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    let distinct = self.eat_keyword("distinct");
                    let arg = if self.peek() == Some(&Token::Star) {
                        self.pos += 1;
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(&Token::RParen)?;
                    return Ok(SelectItem::Aggregate { func, arg, distinct });
                }
            }
        }
        Ok(SelectItem::Expr(self.expr()?))
    }

    fn cond(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.and_cond()?;
        while self.eat_keyword("or") {
            let rhs = self.and_cond()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_cond(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.cmp()?;
        while self.eat_keyword("and") {
            let rhs = self.cmp()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Cond, ParseError> {
        // Parenthesized sub-condition: look ahead to decide between
        // `( cond )` and `( expr ) op expr`. We try cond first and fall back.
        if self.peek() == Some(&Token::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.cond() {
                if self.peek() == Some(&Token::RParen) {
                    self.pos += 1;
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::NotEq) => CmpOp::NotEq,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::LtEq) => CmpOp::LtEq,
            Some(Token::GtEq) => CmpOp::GtEq,
            got => {
                return Err(ParseError::Unexpected { got, expected: "comparison operator".into() })
            }
        };
        let rhs = self.expr()?;
        Ok(Cond::Compare { op, lhs, rhs })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::NumberLit(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Number(n)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                match self.next() {
                    Some(Token::NumberLit(n)) => Ok(Expr::Literal(Value::Number(-n))),
                    got => Err(ParseError::Unexpected {
                        got,
                        expected: "number after unary minus".into(),
                    }),
                }
            }
            Some(Token::StringLit(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::parse(&s)))
            }
            Some(Token::Ident(s)) => {
                if let Some(idx) = parse_value_placeholder(&s) {
                    self.pos += 1;
                    return Ok(Expr::ValuePlaceholder(idx));
                }
                if s.eq_ignore_ascii_case("null") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                if s.eq_ignore_ascii_case("true") || s.eq_ignore_ascii_case("false") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(s.eq_ignore_ascii_case("true"))));
                }
                Ok(Expr::Column(self.column_ref()?))
            }
            Some(Token::QuotedIdent(_)) => Ok(Expr::Column(self.column_ref()?)),
            got => Err(ParseError::Unexpected { got, expected: "expression".into() }),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => {
                if let Some(ph) = parse_column_placeholder(&s) {
                    Ok(ph)
                } else {
                    Ok(ColumnRef::Named(s))
                }
            }
            Some(Token::QuotedIdent(s)) => Ok(ColumnRef::Named(s)),
            got => Err(ParseError::Unexpected { got, expected: "column reference".into() }),
        }
    }
}

/// Recognizes `c3` / `c3_number` / `c3_date` / `c3_text` placeholders.
fn parse_column_placeholder(s: &str) -> Option<ColumnRef> {
    let rest = s.strip_prefix('c')?;
    let (digits, suffix) = match rest.find('_') {
        Some(p) => (&rest[..p], Some(&rest[p + 1..])),
        None => (rest, None),
    };
    if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let index: usize = digits.parse().ok()?;
    let ty = match suffix {
        None => None,
        Some("number") => Some(PlaceholderType::Number),
        Some("date") => Some(PlaceholderType::Date),
        Some("text") => Some(PlaceholderType::Text),
        Some(_) => return None, // `c1_foo` is a real column name, not a hole
    };
    Some(ColumnRef::Placeholder { index, ty })
}

/// Recognizes `val1`, `val2`, ... placeholders.
fn parse_value_placeholder(s: &str) -> Option<usize> {
    let digits = s.strip_prefix("val")?;
    if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_squall_style_template() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select c1 from w order by c2_number desc limit 1")?;
        assert!(stmt.has_placeholders());
        assert_eq!(stmt.limit, Some(1));
        let (e, dir) = stmt.order_by.as_ref().ok_or("unexpected None")?;
        assert_eq!(dir, &OrderDir::Desc);
        assert_eq!(
            e,
            &Expr::Column(ColumnRef::Placeholder { index: 2, ty: Some(PlaceholderType::Number) })
        );
        Ok(())
    }

    #[test]
    fn parse_where_conjunction() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select c1 from w where c2 = val1 and c3_number > val2")?;
        match stmt.where_clause.as_ref().ok_or("unexpected None")? {
            Cond::And(a, b) => {
                assert!(matches!(**a, Cond::Compare { op: CmpOp::Eq, .. }));
                assert!(matches!(**b, Cond::Compare { op: CmpOp::Gt, .. }));
            }
            other => panic!("expected And, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn parse_aggregates() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select count ( * ) from w")?;
        assert_eq!(
            stmt.items,
            vec![SelectItem::Aggregate { func: AggFunc::Count, arg: None, distinct: false }]
        );
        let stmt = parse("select sum(c2_number) from w where c1 = 'x'")?;
        assert!(matches!(stmt.items[0], SelectItem::Aggregate { func: AggFunc::Sum, .. }));
        let stmt = parse("select count(distinct c1) from w")?;
        assert!(matches!(stmt.items[0], SelectItem::Aggregate { distinct: true, .. }));
        Ok(())
    }

    #[test]
    fn parse_arithmetic_in_select() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select c2_number - c3_number from w where c1 = val1")?;
        match &stmt.items[0] {
            SelectItem::Expr(Expr::Binary { op: ArithOp::Sub, .. }) => {}
            other => panic!("expected Binary Sub, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn parse_named_columns_with_spaces() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select [total deputies] from w where [department] = 'Defense'")?;
        assert!(!stmt.has_placeholders());
        assert_eq!(
            stmt.items[0],
            SelectItem::Expr(Expr::Column(ColumnRef::Named("total deputies".into())))
        );
        Ok(())
    }

    #[test]
    fn parse_or_condition() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select c1 from w where c2 = 1 or c2 = 2")?;
        assert!(matches!(stmt.where_clause, Some(Cond::Or(_, _))));
        Ok(())
    }

    #[test]
    fn parse_parenthesized_condition() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select c1 from w where ( c2 = 1 or c2 = 2 ) and c3 > 0")?;
        match stmt.where_clause.as_ref().ok_or("unexpected None")? {
            Cond::And(a, _) => assert!(matches!(**a, Cond::Or(_, _))),
            other => panic!("expected And(Or, _), got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn roundtrip_display_parse() -> Result<(), Box<dyn std::error::Error>> {
        let queries = [
            "select c1 from w order by c2_number desc limit 1",
            "select count ( * ) from w where c1 = 'x'",
            "select sum ( c2_number ) from w where c3 = val1 and c4_number > val2",
            "select distinct c1 from w",
            "select [a b] from w where [c d] = 'v' order by [e f] asc",
            "select c1 , c2 from w group by c1",
        ];
        for q in queries {
            let stmt = parse(q)?;
            let rendered = stmt.to_string();
            let reparsed = parse(&rendered).unwrap_or_else(|e| panic!("reparse `{rendered}`: {e}"));
            assert_eq!(stmt, reparsed, "roundtrip failed for {q}");
        }
        Ok(())
    }

    #[test]
    fn group_by_parses() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select c1, count(*) from w group by c1")?;
        assert_eq!(stmt.group_by, Some(ColumnRef::Placeholder { index: 1, ty: None }));
        Ok(())
    }

    #[test]
    fn c_prefixed_real_names_not_placeholders() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select city from w")?;
        assert!(!stmt.has_placeholders());
        let stmt = parse("select c1_foo from w")?;
        assert!(!stmt.has_placeholders());
        Ok(())
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("select from w").is_err());
        assert!(parse("select c1 from").is_err());
        assert!(parse("select c1 from w limit -1").is_err());
        assert!(parse("select c1 from w where").is_err());
        assert!(parse("select c1 from w extra").is_err());
    }

    #[test]
    fn unary_minus_literal() -> Result<(), Box<dyn std::error::Error>> {
        let stmt = parse("select c1 from w where c2_number > -5")?;
        match stmt.where_clause.as_ref().ok_or("unexpected None")? {
            Cond::Compare { rhs: Expr::Literal(Value::Number(n)), .. } => assert_eq!(*n, -5.0),
            other => panic!("unexpected {other:?}"),
        }
        Ok(())
    }
}
