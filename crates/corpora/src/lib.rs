//! # corpora — synthetic benchmark generators
//!
//! Stand-ins for the four evaluation datasets of the paper (§V-A):
//! FEVEROUS (Wikipedia fact verification over tables + text), TAT-QA
//! (financial QA over hybrid evidence), WikiSQL (general-domain table QA)
//! and SEM-TAB-FACTS (scientific fact verification). Each generator emits
//! gold train/dev/test splits written by an annotator simulator with its
//! own phrasing and a richer program pool, plus the unlabeled
//! tables-with-context UCTR may use for synthesis. See DESIGN.md for why
//! this substitution preserves the experiments' shape.

pub mod annotator;
pub mod benchmarks;
pub mod vocab;

pub use benchmarks::{
    feverous_like, semtab_like, tatqa_like, wikisql_like, Benchmark, CorpusConfig,
};
pub use vocab::{finance_table, science_table, surrounding_text, wiki_table, TOPICS};
