//! Annotator simulator: gold-label generation with human-style phrasing.
//!
//! The experiments need benchmark datasets whose gold labels did not come
//! from the system under test. This module plays the human annotator: it
//! writes questions/claims against a table using **its own surface
//! phrasings** (partially overlapping UCTR's generator, as real human
//! phrasing partially overlaps synthetic data — that overlap gap is exactly
//! what separates supervised from unsupervised performance in the paper's
//! tables), and derives labels from program execution over a richer,
//! private template pool.

use logicforms::{LfExpr, LfOp};
use rand::seq::SliceRandom;
use rand::Rng;
use sqlexec::{AggFunc, CmpOp, ColumnRef, Cond, Expr, OrderDir, SelectItem, SelectStmt};
use tabular::Table;
use uctr::{AnswerKind, EvidenceType, ProgramKind, Sample, TemplateBank, Verdict};

/// Gold-only template extensions: reasoning shapes UCTR's builtin bank does
/// not contain, creating the headroom between unsupervised and supervised
/// scores.
const GOLD_EXTRA_SQL: &[&str] = &[
    "select c1 from w where c2_number >= val1 and c2_number <= val2",
    "select c1 from w where c2 = val1 order by c3_number asc limit 1",
    "select count ( * ) from w where c1 = val1 and c2_number > val2",
];
const GOLD_EXTRA_LOGIC: &[&str] = &[
    "and { eq { hop { argmax { all_rows ; c1 } ; c2 } ; val1 } ; greater { max { all_rows ; c1 } ; val2 } }",
    "most_not_eq { all_rows ; c1 ; val1 }",
    "eq { count { filter_less { all_rows ; c1 ; val1 } } ; val2 }",
];

/// The annotator's private template bank.
pub fn gold_bank() -> TemplateBank {
    let mut bank = TemplateBank::builtin();
    // Every gold extra parses and is admitted — `gold_bank_is_superset_of_builtin`
    // pins the exact counts — so the Err arms drop nothing.
    for t in GOLD_EXTRA_SQL {
        if let Ok(t) = sqlexec::SqlTemplate::parse(t) {
            bank.add_sql(t);
        }
    }
    for t in GOLD_EXTRA_LOGIC {
        if let Ok(t) = logicforms::LfTemplate::parse(t) {
            bank.add_logic(t);
        }
    }
    bank
}

// ---------------------------------------------------------------------------
// Human-style surface realization (distinct frame bank from nlgen).
// ---------------------------------------------------------------------------

fn col_of(c: &ColumnRef) -> String {
    match c {
        ColumnRef::Named(n) => n.clone(),
        ColumnRef::Placeholder { index, .. } => format!("column {index}"),
    }
}

fn expr_np(e: &Expr) -> String {
    match e {
        Expr::Column(c) => col_of(c),
        Expr::Literal(v) => v.to_string(),
        Expr::ValuePlaceholder(i) => format!("value {i}"),
        Expr::Binary { lhs, rhs, .. } => format!("{} and {}", expr_np(lhs), expr_np(rhs)),
    }
}

fn human_cond(c: &Cond) -> String {
    match c {
        Cond::Compare { op, lhs, rhs } => {
            let l = expr_np(lhs);
            let r = expr_np(rhs);
            match op {
                CmpOp::Eq => format!("{l} equals {r}"),
                CmpOp::NotEq => format!("{l} differs from {r}"),
                CmpOp::Gt => format!("{l} exceeds {r}"),
                CmpOp::Lt => format!("{l} stays below {r}"),
                CmpOp::GtEq => format!("{l} reaches at least {r}"),
                CmpOp::LtEq => format!("{l} stays within {r}"),
            }
        }
        Cond::And(a, b) => format!("{} while {}", human_cond(a), human_cond(b)),
        Cond::Or(a, b) => format!("either {} or {}", human_cond(a), human_cond(b)),
    }
}

/// Topic-specific question idioms. Real benchmark questions use
/// domain-bound constructions ("which team tops the standings", "which
/// album charted longest") that models must learn per topic — the source of
/// the topic-transfer degradation the paper motivates with Figure 1. Each
/// idiom deliberately avoids the generic cue vocabulary so it can only be
/// learned lexically from in-topic training data.
fn domain_superlative(topic: &str, desc: bool) -> Option<&'static str> {
    Some(match (topic, desc) {
        ("sports", true) => "finished the season strongest in",
        ("sports", false) => "finished the season weakest in",
        ("films", true) => "drew the biggest numbers for",
        ("films", false) => "drew the slimmest numbers for",
        ("politics", true) => "commands the heaviest",
        ("politics", false) => "commands the lightest",
        ("geography", true) => "stretches furthest in",
        ("geography", false) => "stretches narrowest in",
        ("music", true) => "charted strongest in",
        ("music", false) => "charted weakest in",
        _ => return None,
    })
}

/// Topic idiom for counting questions ("how many <domain noun> ...").
fn domain_count(topic: &str) -> Option<&'static str> {
    Some(match topic {
        "sports" => "how big is the roster of squads for which",
        "films" => "how long is the slate of pictures for which",
        "politics" => "how wide is the roll of agencies for which",
        "geography" => "how long is the register of nations for which",
        "music" => "how deep is the catalog of records for which",
        _ => return None,
    })
}

/// Topic idiom for plain lookups.
fn domain_lookup(topic: &str) -> Option<&'static str> {
    Some(match topic {
        "sports" => "pull up the",
        "films" => "look up the billing for the",
        "politics" => "read off the",
        "geography" => "look across to the",
        "music" => "read out the",
        _ => return None,
    })
}

/// Human phrasing of an instantiated SQL query, with optional
/// topic-idiomatic variants.
pub fn human_sql_question_for_topic(stmt: &SelectStmt, topic: &str, rng: &mut impl Rng) -> String {
    let use_idiom = rng.gen_bool(0.8);
    // Superlative questions.
    if let (Some((Expr::Column(oc), dir)), Some(1)) = (&stmt.order_by, stmt.limit) {
        if let Some(SelectItem::Expr(Expr::Column(sel))) = stmt.items.first() {
            if stmt.where_clause.is_none() && use_idiom {
                if let Some(idiom) = domain_superlative(topic, *dir == OrderDir::Desc) {
                    return finish(&format!("which {} {idiom} {}", col_of(sel), col_of(oc)), '?');
                }
            }
        }
    }
    // Counting questions.
    if let Some(SelectItem::Aggregate { func: AggFunc::Count, .. }) = stmt.items.first() {
        if use_idiom {
            if let (Some(idiom), Some(w)) = (domain_count(topic), &stmt.where_clause) {
                return finish(&format!("{idiom} {}", human_cond(w)), '?');
            }
        }
    }
    // Plain lookups.
    if let Some(SelectItem::Expr(Expr::Column(sel))) = stmt.items.first() {
        if stmt.order_by.is_none() && use_idiom {
            if let (Some(idiom), Some(w)) = (domain_lookup(topic), &stmt.where_clause) {
                return finish(
                    &format!("{idiom} {} for the entry where {}", col_of(sel), human_cond(w)),
                    '?',
                );
            }
        }
    }
    human_sql_question(stmt, rng)
}

/// Human phrasing of an instantiated SQL query.
pub fn human_sql_question(stmt: &SelectStmt, rng: &mut impl Rng) -> String {
    let cond = stmt.where_clause.as_ref().map(human_cond);
    // Superlative.
    if let (Some((Expr::Column(oc), dir)), Some(1)) = (&stmt.order_by, stmt.limit) {
        if let Some(SelectItem::Expr(Expr::Column(sel))) = stmt.items.first() {
            let adj = match (dir, rng.gen_range(0..2)) {
                (OrderDir::Desc, 0) => "tops the table in",
                (OrderDir::Desc, _) => "leads in",
                (OrderDir::Asc, 0) => "sits last in",
                (OrderDir::Asc, _) => "trails in",
            };
            let base = format!("name the {} that {adj} {}", col_of(sel), col_of(oc));
            let q = match cond {
                Some(w) => format!("{base}, considering only rows where {w}"),
                None => base,
            };
            return finish(&q, '?');
        }
    }
    if let Some(SelectItem::Aggregate { func, arg, .. }) = stmt.items.first() {
        let q = match (func, arg) {
            (AggFunc::Count, _) => match cond {
                Some(w) => format!("count the entries in which {w}"),
                None => "count the entries in the table".to_string(),
            },
            (f, Some(e)) => {
                let noun = match f {
                    AggFunc::Sum => "combined",
                    AggFunc::Avg => "typical",
                    AggFunc::Min => "smallest recorded",
                    AggFunc::Max => "largest recorded",
                    // Count is fully handled by the arm above.
                    AggFunc::Count => "counted",
                };
                match cond {
                    Some(w) => format!("give the {noun} {} across rows where {w}", expr_np(e)),
                    None => format!("give the {noun} {} across the table", expr_np(e)),
                }
            }
            _ => "give the result".to_string(),
        };
        return finish(&q, '?');
    }
    if let Some(SelectItem::Expr(Expr::Binary { op: sqlexec::ArithOp::Sub, lhs, rhs })) =
        stmt.items.first()
    {
        let q = match cond {
            Some(w) => {
                format!("by how much does {} differ from {} where {w}", expr_np(lhs), expr_np(rhs))
            }
            None => format!("by how much does {} differ from {}", expr_np(lhs), expr_np(rhs)),
        };
        return finish(&q, '?');
    }
    if let Some(SelectItem::Expr(e)) = stmt.items.first() {
        let q = match cond {
            Some(w) => match rng.gen_range(0..2) {
                0 => format!("tell me the {} recorded where {w}", expr_np(e)),
                _ => format!("the row in which {w} lists which {}", expr_np(e)),
            },
            None => format!("list every {}", expr_np(e)),
        };
        return finish(&q, '?');
    }
    finish("what does the table show", '?')
}

/// Human phrasing of an instantiated logical form.
pub fn human_logic_claim(expr: &LfExpr, rng: &mut impl Rng) -> String {
    use LfOp::*;
    let text = match expr {
        LfExpr::Apply(op, args) => match op {
            Eq | RoundEq | NotEq => human_comparison(*op, &args[0], &args[1], rng),
            Greater | Less => {
                let a = scalar_np(&args[0]);
                let b = scalar_np(&args[1]);
                if matches!(op, Greater) {
                    format!("{a} comes out ahead of {b}")
                } else {
                    format!("{a} falls short of {b}")
                }
            }
            And => {
                let a = human_logic_claim(&args[0], rng);
                let b = human_logic_claim(&args[1], rng);
                format!(
                    "{}, and furthermore {}",
                    a.trim_end_matches('.'),
                    lowercase_first(b.trim_end_matches('.'))
                )
            }
            Only => format!("a single entry {}", clause(&args[0])),
            AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq | MostEq
            | MostNotEq | MostGreater | MostLess | MostGreaterEq | MostLessEq => {
                let quant = if matches!(
                    op,
                    MostEq | MostNotEq | MostGreater | MostLess | MostGreaterEq | MostLessEq
                ) {
                    "more than half of the entries"
                } else {
                    "without exception, the entries"
                };
                let col = leaf(&args[1]);
                let val = leaf(&args[2]);
                let pred = match op {
                    AllEq | MostEq => format!("record {val} for {col}"),
                    AllNotEq | MostNotEq => format!("record something other than {val} for {col}"),
                    AllGreater | MostGreater => format!("put {col} beyond {val}"),
                    AllLess | MostLess => format!("keep {col} beneath {val}"),
                    AllGreaterEq | MostGreaterEq => format!("reach {val} or more in {col}"),
                    AllLessEq | MostLessEq => format!("stay at {val} or less in {col}"),
                    // The enclosing match admits only the quantifier ops.
                    _ => format!("meet the stated bound on {col}"),
                };
                format!("{quant} {pred}")
            }
            _ => scalar_np(expr),
        },
        other => leaf(other),
    };
    finish(&text, '.')
}

fn human_comparison(op: LfOp, lhs: &LfExpr, rhs: &LfExpr, rng: &mut impl Rng) -> String {
    use LfOp::*;
    if let LfExpr::Apply(Count, cargs) = lhs {
        let n = leaf(rhs);
        let cl = clause(&cargs[0]);
        let body = if cl.is_empty() {
            format!("the table holds {n} entries")
        } else {
            match rng.gen_range(0..2) {
                0 => format!("a total of {n} entries {cl}"),
                _ => format!("exactly {n} of the entries {cl}"),
            }
        };
        return if op == NotEq { format!("it is false that {body}") } else { body };
    }
    if let LfExpr::Apply(Hop, hargs) = lhs {
        if let LfExpr::Apply(inner, iargs) = &hargs[0] {
            if matches!(inner, Argmax | Argmin | NthArgmax | NthArgmin) {
                let v = leaf(rhs);
                let sort_col = leaf(&iargs[1]);
                let phrase = match inner {
                    Argmax => format!("no entry posts a higher {sort_col} than {v}"),
                    Argmin => format!("no entry posts a lower {sort_col} than {v}"),
                    NthArgmax => {
                        format!("{v} ranks number {} from the top in {sort_col}", leaf(&iargs[2]))
                    }
                    NthArgmin => format!(
                        "{v} ranks number {} from the bottom in {sort_col}",
                        leaf(&iargs[2])
                    ),
                    // The `matches!` guard admits only the four arg ops.
                    _ => format!("{v} is the selected entry's {sort_col}"),
                };
                return if op == NotEq { format!("it is false that {phrase}") } else { phrase };
            }
        }
    }
    let body = format!("{} works out to {}", scalar_np(lhs), leaf(rhs));
    if op == NotEq {
        format!("it is false that {body}")
    } else {
        body
    }
}

fn clause(view: &LfExpr) -> String {
    use LfOp::*;
    match view {
        LfExpr::AllRows => String::new(),
        LfExpr::Apply(op, args) => {
            let inner = clause(&args[0]);
            let this = match op {
                FilterEq => format!("list {} as their {}", leaf(&args[2]), leaf(&args[1])),
                FilterNotEq => format!("avoid {} in {}", leaf(&args[2]), leaf(&args[1])),
                FilterGreater => format!("push {} past {}", leaf(&args[1]), leaf(&args[2])),
                FilterLess => format!("keep {} beneath {}", leaf(&args[1]), leaf(&args[2])),
                FilterGreaterEq => {
                    format!("reach {} or more in {}", leaf(&args[2]), leaf(&args[1]))
                }
                FilterLessEq => format!("stay at {} or less in {}", leaf(&args[2]), leaf(&args[1])),
                FilterAll => format!("report a {}", leaf(&args[1])),
                _ => return inner,
            };
            if inner.is_empty() {
                this
            } else {
                format!("{inner} and {this}")
            }
        }
        _ => String::new(),
    }
}

fn scalar_np(e: &LfExpr) -> String {
    use LfOp::*;
    match e {
        LfExpr::Apply(op, args) => match op {
            Hop => format!("the {} recorded for {}", leaf(&args[1]), row_np(&args[0])),
            Count => "the number of matching entries".to_string(),
            Max => format!("the peak {}", leaf(&args[1])),
            Min => format!("the floor {}", leaf(&args[1])),
            Sum => format!("the overall {}", leaf(&args[1])),
            Avg => format!("the typical {}", leaf(&args[1])),
            NthMax => format!("the number {} {} from the top", leaf(&args[2]), leaf(&args[1])),
            NthMin => format!("the number {} {} from the bottom", leaf(&args[2]), leaf(&args[1])),
            Diff => format!("the gap between {} and {}", scalar_np(&args[0]), scalar_np(&args[1])),
            _ => e.to_string(),
        },
        other => leaf(other),
    }
}

fn row_np(e: &LfExpr) -> String {
    use LfOp::*;
    match e {
        LfExpr::Apply(op, args) => match op {
            FilterEq => leaf(&args[2]),
            Argmax => format!("the leader in {}", leaf(&args[1])),
            Argmin => format!("the last-place entry in {}", leaf(&args[1])),
            NthArgmax => format!("the rank-{} entry in {}", leaf(&args[2]), leaf(&args[1])),
            NthArgmin => {
                format!("the rank-{} entry from the bottom in {}", leaf(&args[2]), leaf(&args[1]))
            }
            _ => "that entry".to_string(),
        },
        _ => "that entry".to_string(),
    }
}

fn leaf(e: &LfExpr) -> String {
    match e {
        LfExpr::Column(c) => c.clone(),
        LfExpr::Const(v) => v.clone(),
        other => other.to_string(),
    }
}

/// Human phrasing of an instantiated arithmetic program.
pub fn human_arith_question(program: &arithexpr::AeProgram, rng: &mut impl Rng) -> String {
    use arithexpr::{AeArg, AeOp};
    let steps = &program.steps;
    let cell = |a: &AeArg| -> String {
        match a {
            AeArg::Cell { col, row } => format!("{row}'s {col} figure"),
            AeArg::Const(n) => tabular::format_number(*n),
            AeArg::Column(c) => format!("the {c} column"),
            other => other.to_string(),
        }
    };
    // percentage change idiom
    if steps.len() == 2
        && steps[0].op == AeOp::Subtract
        && steps[1].op == AeOp::Divide
        && steps[1].args[0] == AeArg::StepRef(0)
        && steps[1].args[1] == steps[0].args[1]
    {
        if let (AeArg::Cell { col: ca, row: ra }, AeArg::Cell { col: cb, row: rb }) =
            (&steps[0].args[0], &steps[0].args[1])
        {
            let q = if ra.eq_ignore_ascii_case(rb) {
                format!("in percentage terms, how did {ra} move between {cb} and {ca}")
            } else {
                format!("in percentage terms, how did {ca} move from {rb} to {ra}")
            };
            return finish(&q, '?');
        }
        return finish("in percentage terms, how did the figure move", '?');
    }
    // two-value average idiom: add(a, b), divide(#0, 2)
    if steps.len() == 2
        && steps[0].op == AeOp::Add
        && steps[1].op == AeOp::Divide
        && steps[1].args[0] == AeArg::StepRef(0)
        && steps[1].args[1] == AeArg::Const(2.0)
    {
        let q = format!(
            "taken together, what do {} and {} average out to",
            cell(&steps[0].args[0]),
            cell(&steps[0].args[1])
        );
        return finish(&q, '?');
    }
    // proportion idiom: table_sum(c), divide(val, #0)
    if steps.len() == 2
        && steps[0].op == AeOp::TableSum
        && steps[1].op == AeOp::Divide
        && steps[1].args[1] == AeArg::StepRef(0)
    {
        let q = format!(
            "what share of {} does {} account for",
            cell(&steps[0].args[0]),
            cell(&steps[1].args[0])
        );
        return finish(&q, '?');
    }
    // sum-difference idiom: table_sum(a), table_sum(b), subtract(#0, #1)
    if steps.len() == 3
        && steps[0].op == AeOp::TableSum
        && steps[1].op == AeOp::TableSum
        && steps[2].op == AeOp::Subtract
        && steps[2].args[0] == AeArg::StepRef(0)
        && steps[2].args[1] == AeArg::StepRef(1)
    {
        let q = format!(
            "how much larger is the sum of {} than the sum of {}",
            cell(&steps[0].args[0]),
            cell(&steps[1].args[0])
        );
        return finish(&q, '?');
    }
    if steps.len() == 1 {
        let s = &steps[0];
        let q = match s.op {
            AeOp::Subtract => {
                format!("how far apart are {} and {}", cell(&s.args[0]), cell(&s.args[1]))
            }
            AeOp::Add => format!("adding {} to {} gives what", cell(&s.args[1]), cell(&s.args[0])),
            AeOp::Multiply => {
                format!("multiplying {} by {} gives what", cell(&s.args[0]), cell(&s.args[1]))
            }
            AeOp::Divide => {
                format!("how many times does {} fit into {}", cell(&s.args[1]), cell(&s.args[0]))
            }
            AeOp::Greater => format!("does {} top {}", cell(&s.args[0]), cell(&s.args[1])),
            AeOp::Exp => {
                format!("what does {} to the power {} equal", cell(&s.args[0]), cell(&s.args[1]))
            }
            AeOp::TableMax => format!("where does {} peak", cell(&s.args[0])),
            AeOp::TableMin => format!("what is the floor of {}", cell(&s.args[0])),
            AeOp::TableSum => format!("adding up {} gives what", cell(&s.args[0])),
            AeOp::TableAverage => format!("what does {} average out to", cell(&s.args[0])),
        };
        return finish(&q, '?');
    }
    let _ = rng;
    finish("what does the calculation over the table come to", '?')
}

fn finish(text: &str, terminal: char) -> String {
    nlgen::lexicon::sentence_case(&nlgen::lexicon::tidy(text), terminal)
}

fn lowercase_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

// ---------------------------------------------------------------------------
// Gold-sample construction.
// ---------------------------------------------------------------------------

/// Produces one gold verification sample (Supported/Refuted) on `table`.
pub fn gold_verification(table: &Table, bank: &TemplateBank, rng: &mut impl Rng) -> Option<Sample> {
    let tpl = bank.logic().choose(rng).copied()?;
    let desired = rng.gen_bool(0.5);
    let claim = tpl.instantiate(table, rng, desired)?;
    let text = human_logic_claim(&claim.expr, rng);
    let verdict = if claim.truth { Verdict::Supported } else { Verdict::Refuted };
    let mut s = Sample::verification(table.clone(), text, verdict);
    s.program = ProgramKind::Logic(claim.expr.to_string());
    Some(s)
}

/// Produces one gold SQL-based QA sample on `table`.
pub fn gold_qa_sql(table: &Table, bank: &TemplateBank, rng: &mut impl Rng) -> Option<Sample> {
    gold_qa_sql_for_topic(table, bank, "", rng)
}

/// Produces one gold SQL-based QA sample with topic-idiomatic phrasing.
pub fn gold_qa_sql_for_topic(
    table: &Table,
    bank: &TemplateBank,
    topic: &str,
    rng: &mut impl Rng,
) -> Option<Sample> {
    let tpl = bank.sql().choose(rng).copied()?;
    let stmt = tpl.instantiate(table, rng)?;
    let result = sqlexec::execute(&stmt, table).ok()?;
    if result.is_empty() {
        return None;
    }
    let answer = result.answer_text();
    if answer.is_empty() {
        return None;
    }
    let text = human_sql_question_for_topic(&stmt, topic, rng);
    let mut s = Sample::qa(table.clone(), text, answer);
    s.answer_kind =
        if stmt
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { func: AggFunc::Count, .. }))
        {
            AnswerKind::Count
        } else if stmt.items.iter().any(|i| {
            matches!(i, SelectItem::Aggregate { .. } | SelectItem::Expr(Expr::Binary { .. }))
        }) {
            AnswerKind::Arithmetic
        } else {
            AnswerKind::Span
        };
    s.program = ProgramKind::Sql(stmt.to_string());
    Some(s)
}

/// Produces one gold arithmetic QA sample on `table`.
pub fn gold_qa_arith(table: &Table, bank: &TemplateBank, rng: &mut impl Rng) -> Option<Sample> {
    let tpl = bank.arith().choose(rng).copied()?;
    let inst = tpl.instantiate(table, rng)?;
    let text = human_arith_question(&inst.program, rng);
    let mut s = Sample::qa(table.clone(), text, inst.outcome.answer.to_string());
    s.answer_kind = AnswerKind::Arithmetic;
    s.program = ProgramKind::Arith(inst.program.to_string());
    Some(s)
}

/// Converts a gold table-only sample into a joint table-text sample by
/// splitting one reasoning row into a sentence (the gold analogue of the
/// paper's combined-evidence instances).
pub fn into_table_text(sample: Sample, rng: &mut impl Rng) -> Option<Sample> {
    let highlighted_rows: Vec<usize> = match &sample.program {
        ProgramKind::Sql(q) => {
            let stmt = sqlexec::parse(q).ok()?;
            let r = sqlexec::execute(&stmt, &sample.table).ok()?;
            r.highlighted.iter().map(|&(row, _)| row).collect()
        }
        ProgramKind::Logic(f) => {
            let e = logicforms::parse(f).ok()?;
            let out = logicforms::evaluate(&e, &sample.table).ok()?;
            out.highlighted.iter().map(|&(row, _)| row).collect()
        }
        ProgramKind::Arith(p) => {
            let prog = arithexpr::parse(p).ok()?;
            let out = arithexpr::execute(&prog, &sample.table).ok()?;
            out.highlighted.iter().map(|&(row, _)| row).collect()
        }
        ProgramKind::None => return None,
    };
    let mut rows = highlighted_rows;
    rows.sort_unstable();
    rows.dedup();
    let &row = rows.choose(rng)?;
    let split = textops::table_to_text(&sample.table, row, rng)?;
    let mut s = sample;
    s.table = split.sub_table.into();
    s.context = vec![split.sentence];
    s.evidence = EvidenceType::TableText;
    Some(s)
}

/// Converts a gold sample into a text-only sample (single-row reasoning
/// expressible from one sentence); used for TAT-QA's Text partition.
pub fn gold_text_only(table: &Table, rng: &mut impl Rng) -> Option<Sample> {
    let row = rng.gen_range(0..table.n_rows());
    let sentence = textops::describe_row(table, row, rng)?;
    let ecol = textops::entity_column(table);
    let entity = table.cell(row, ecol).filter(|v| !v.is_null())?.to_string();
    let cols: Vec<usize> = (0..table.n_cols())
        .filter(|&c| c != ecol && table.cell(row, c).is_some_and(|v| !v.is_null()))
        .collect();
    let &col = cols.choose(rng)?;
    let col_name = table.column_name(col)?;
    let value = table.cell(row, col)?.to_string();
    let empty = Table::from_strings(&table.title, &[vec![]]).ok()?;
    let mut s = Sample::qa(
        empty,
        format!("According to the passage, what {col_name} does {entity} report?"),
        value,
    );
    s.context = vec![sentence];
    s.evidence = EvidenceType::TextOnly;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gold_bank_is_superset_of_builtin() {
        let gold = gold_bank();
        let builtin = TemplateBank::builtin();
        assert_eq!(gold.sql().len(), builtin.sql().len() + GOLD_EXTRA_SQL.len());
        // Of the three logic extras, one is rejected by the typechecker
        // (misplaced value holes) and one duplicates a builtin signature;
        // exactly one is net-new.
        assert_eq!(gold.logic().len(), builtin.logic().len() + 1);
    }

    #[test]
    fn gold_verification_labels_match_execution() {
        let mut rng = StdRng::seed_from_u64(1);
        let bank = gold_bank();
        let table = vocab::wiki_table("sports", &mut rng);
        let mut produced = 0;
        for _ in 0..30 {
            let Some(s) = gold_verification(&table, &bank, &mut rng) else { continue };
            produced += 1;
            let ProgramKind::Logic(f) = &s.program else { panic!() };
            let truth =
                logicforms::evaluate_truth(&logicforms::parse(f).unwrap(), &s.table).unwrap();
            let expect = if truth { Verdict::Supported } else { Verdict::Refuted };
            assert_eq!(s.label.as_verdict(), Some(expect));
        }
        assert!(produced > 10, "only {produced}/30 instantiated");
    }

    #[test]
    fn gold_qa_answers_match_execution() {
        let mut rng = StdRng::seed_from_u64(2);
        let bank = gold_bank();
        let table = vocab::wiki_table("politics", &mut rng);
        let mut produced = 0;
        for _ in 0..30 {
            let Some(s) = gold_qa_sql(&table, &bank, &mut rng) else { continue };
            produced += 1;
            assert!(!s.label.as_answer().unwrap().is_empty());
            assert!(s.text.ends_with('?'));
        }
        assert!(produced > 10);
    }

    #[test]
    fn human_phrasing_differs_from_nlgen() {
        // The same program realized by both generators should rarely match
        // exactly — that's the supervised/unsupervised distribution gap.
        let mut rng = StdRng::seed_from_u64(3);
        let stmt = sqlexec::parse("select [team] from w order by [points] desc limit 1").unwrap();
        let human = human_sql_question(&stmt, &mut rng);
        let g = nlgen::NlGenerator::new().with_noise(nlgen::NoiseConfig::off());
        let machine = g.sql_question(&stmt, &mut rng).text;
        assert_ne!(human, machine);
    }

    #[test]
    fn into_table_text_moves_row_to_context() {
        let mut rng = StdRng::seed_from_u64(4);
        let bank = gold_bank();
        let table = vocab::wiki_table("sports", &mut rng);
        let mut done = false;
        for _ in 0..40 {
            let Some(s) = gold_qa_sql(&table, &bank, &mut rng) else { continue };
            let before_rows = s.table.n_rows();
            if let Some(tt) = into_table_text(s, &mut rng) {
                assert_eq!(tt.table.n_rows(), before_rows - 1);
                assert_eq!(tt.context.len(), 1);
                assert_eq!(tt.evidence, EvidenceType::TableText);
                done = true;
                break;
            }
        }
        assert!(done, "no sample could be converted to table-text");
    }

    #[test]
    fn human_sql_covers_all_shapes() {
        let mut rng = StdRng::seed_from_u64(9);
        let cases = [
            ("select [team] from w order by [points] desc limit 1", &["team", "points"][..]),
            ("select count(*) from w where [points] > 50", &["points", "50"]),
            ("select sum([points]) from w", &["points"]),
            ("select [points] - [wins] from w where [team] = 'Reds'", &["points", "wins", "Reds"]),
            ("select [team] from w where [city] = 'Oslo'", &["team", "Oslo"]),
        ];
        for (q, must_contain) in cases {
            let stmt = sqlexec::parse(q).unwrap();
            let text = human_sql_question(&stmt, &mut rng);
            assert!(text.ends_with('?'), "{text}");
            for needle in must_contain {
                assert!(
                    text.to_lowercase().contains(&needle.to_lowercase()),
                    "`{text}` missing `{needle}` (query `{q}`)"
                );
            }
        }
    }

    #[test]
    fn human_logic_covers_all_shapes() {
        let mut rng = StdRng::seed_from_u64(10);
        let cases = [
            "eq { count { filter_eq { all_rows ; team ; Reds } } ; 2 }",
            "eq { hop { argmax { all_rows ; points } ; team } ; Reds }",
            "most_greater { all_rows ; points ; 50 }",
            "only { filter_eq { all_rows ; city ; Oslo } }",
            "round_eq { avg { all_rows ; points } ; 70 }",
            "greater { hop { filter_eq { all_rows ; team ; Reds } ; points } ; hop { filter_eq { all_rows ; team ; Blues } ; points } }",
        ];
        for f in cases {
            let e = logicforms::parse(f).unwrap();
            let text = human_logic_claim(&e, &mut rng);
            assert!(text.ends_with('.'), "{text}");
            assert!(text.len() > 15, "too short: {text}");
        }
    }

    #[test]
    fn human_arith_covers_idioms() {
        let mut rng = StdRng::seed_from_u64(11);
        let pct = arithexpr::parse(
            "subtract( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , the 2018 of Revenue )",
        )
        .unwrap();
        let t = human_arith_question(&pct, &mut rng);
        assert!(t.to_lowercase().contains("percentage"), "{t}");
        let avg2 =
            arithexpr::parse("add( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , 2 )")
                .unwrap();
        let t = human_arith_question(&avg2, &mut rng);
        assert!(t.to_lowercase().contains("average"), "{t}");
        let prop =
            arithexpr::parse("table_sum( 2019 ) , divide( the 2019 of Costs , #0 )").unwrap();
        let t = human_arith_question(&prop, &mut rng);
        assert!(t.to_lowercase().contains("share"), "{t}");
        let sumdiff =
            arithexpr::parse("table_sum( 2019 ) , table_sum( 2018 ) , subtract( #0 , #1 )")
                .unwrap();
        let t = human_arith_question(&sumdiff, &mut rng);
        assert!(t.to_lowercase().contains("sum"), "{t}");
    }

    #[test]
    fn topic_idioms_differ_by_topic() {
        let stmt = sqlexec::parse("select [team] from w order by [points] desc limit 1").unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for topic in crate::vocab::TOPICS {
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..20 {
                seen.insert(human_sql_question_for_topic(&stmt, topic, &mut rng));
            }
        }
        // Five topics with distinct idioms plus generic variants.
        assert!(seen.len() >= 6, "not enough phrasing diversity: {seen:?}");
    }

    #[test]
    fn gold_text_only_has_sentence_evidence() {
        let mut rng = StdRng::seed_from_u64(5);
        let table = vocab::finance_table(&mut rng);
        let s = gold_text_only(&table, &mut rng).unwrap();
        assert_eq!(s.evidence, EvidenceType::TextOnly);
        assert_eq!(s.table.n_rows(), 0);
        assert!(!s.context[0].is_empty());
        // The answer must appear in the sentence.
        assert!(s.context[0].contains(s.label.as_answer().unwrap()));
    }

    #[test]
    fn gold_arith_on_finance_tables() {
        let mut rng = StdRng::seed_from_u64(6);
        let bank = gold_bank();
        let table = vocab::finance_table(&mut rng);
        let mut produced = 0;
        for _ in 0..20 {
            if let Some(s) = gold_qa_arith(&table, &bank, &mut rng) {
                produced += 1;
                assert_eq!(s.answer_kind, AnswerKind::Arithmetic);
            }
        }
        assert!(produced > 10);
    }
}
