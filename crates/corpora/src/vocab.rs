//! Domain vocabularies and random table generators.
//!
//! Substitutes for the benchmark datasets' table sources (Wikipedia pages,
//! financial reports, scientific articles): each domain has schema families
//! with realistic headers and value generators, and every generated table
//! carries a topic tag (the Figure 1 topic-shift experiment partitions by
//! it).

use rand::seq::SliceRandom;
use rand::Rng;
use tabular::{Table, Value};

/// Adjective + noun pools for synthesizing entity names.
const TEAM_ADJ: &[&str] = &[
    "Red", "Blue", "Golden", "Silver", "Northern", "Southern", "Royal", "Flying", "Iron",
    "Crimson", "Emerald", "Thunder", "Shadow", "Coastal", "Mountain", "Desert",
];
const TEAM_NOUN: &[&str] = &[
    "Lions", "Eagles", "Sharks", "Wolves", "Hawks", "Bears", "Tigers", "Falcons", "Panthers",
    "Dragons", "Knights", "Raiders", "Rangers", "Comets", "Pirates", "Giants",
];
const CITIES: &[&str] = &[
    "Oslo", "Lima", "Kyiv", "Quito", "Porto", "Leeds", "Graz", "Turin", "Nagoya", "Accra", "Perth",
    "Quebec", "Malmo", "Basel", "Gdansk", "Split", "Bergen", "Cork", "Ghent", "Brno",
];
const FIRST_NAMES: &[&str] = &[
    "Ada", "Boris", "Clara", "Dmitri", "Elena", "Farid", "Greta", "Hugo", "Ines", "Jonas", "Karin",
    "Luca", "Mira", "Nils", "Olga", "Pavel", "Rosa", "Sven", "Tania", "Viktor",
];
const LAST_NAMES: &[&str] = &[
    "Almeida",
    "Bergman",
    "Castro",
    "Dvorak",
    "Eriksen",
    "Fischer",
    "Gruber",
    "Haraldsen",
    "Ivanov",
    "Jansen",
    "Koval",
    "Lindqvist",
    "Moreau",
    "Novak",
    "Okafor",
    "Petrov",
    "Quist",
    "Rossi",
    "Silva",
    "Tanaka",
];
const FILM_WORDS_A: &[&str] = &[
    "Midnight",
    "Silent",
    "Broken",
    "Hidden",
    "Endless",
    "Burning",
    "Frozen",
    "Distant",
    "Golden",
    "Crimson",
    "Forgotten",
    "Wandering",
];
const FILM_WORDS_B: &[&str] = &[
    "Harbor", "Garden", "Mirror", "River", "Empire", "Voyage", "Letter", "Horizon", "Winter",
    "Promise", "Signal", "Orchard",
];
const DEPARTMENTS: &[&str] = &[
    "Commerce",
    "Defense",
    "Treasury",
    "Energy",
    "Education",
    "Transport",
    "Agriculture",
    "Justice",
    "Labor",
    "Interior",
    "Health",
    "Housing",
];
const COUNTRIES: &[(&str, &str)] = &[
    ("Norway", "Oslo"),
    ("Peru", "Lima"),
    ("Ukraine", "Kyiv"),
    ("Ecuador", "Quito"),
    ("Portugal", "Lisbon"),
    ("Austria", "Vienna"),
    ("Japan", "Tokyo"),
    ("Ghana", "Accra"),
    ("Canada", "Ottawa"),
    ("Sweden", "Stockholm"),
    ("Poland", "Warsaw"),
    ("Croatia", "Zagreb"),
    ("Ireland", "Dublin"),
    ("Belgium", "Brussels"),
    ("Czechia", "Prague"),
];
const ALBUM_WORDS: &[&str] = &[
    "Echoes", "Gravity", "Daylight", "Static", "Bloom", "Parade", "Voltage", "Mosaic", "Harvest",
    "Neon", "Tides", "Ember",
];
const FIN_ITEMS: &[&str] = &[
    "Revenue",
    "Operating costs",
    "Net income",
    "Stockholders' equity",
    "Total assets",
    "Total liabilities",
    "Cash and equivalents",
    "Gross profit",
    "R&D expenses",
    "Marketing expenses",
    "Deferred revenue",
    "Accounts receivable",
    "Inventory",
    "Long-term debt",
    "Interest expense",
];
const MATERIALS: &[&str] = &[
    "PLA",
    "ABS",
    "PETG",
    "Nylon",
    "Resin",
    "Graphene",
    "Kevlar",
    "Titanium",
    "Ceramic",
    "Basalt",
    "Aerogel",
    "Polyimide",
];
const COMPOUNDS: &[&str] = &[
    "NaCl", "KBr", "CaCO3", "MgO", "SiO2", "Fe2O3", "Al2O3", "TiO2", "ZnS", "CuSO4", "LiF", "H3BO3",
];

/// Topic families used by the general-domain (Wikipedia-like) generators.
pub const TOPICS: &[&str] = &["sports", "films", "politics", "geography", "music"];

/// Picks `n` distinct items from a pool.
fn distinct<'a>(pool: &[&'a str], n: usize, rng: &mut impl Rng) -> Vec<&'a str> {
    let mut v: Vec<&str> = pool.to_vec();
    v.shuffle(rng);
    v.truncate(n);
    v
}

/// Uniform choice from one of the const word pools above — all non-empty,
/// so the fallback never surfaces.
fn pick<'a>(pool: &'a [&'a str], rng: &mut impl Rng) -> &'a str {
    pool.choose(rng).copied().unwrap_or("")
}

/// A random person name.
pub fn person_name(rng: &mut impl Rng) -> String {
    format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng))
}

fn num(rng: &mut impl Rng, lo: i64, hi: i64) -> String {
    rng.gen_range(lo..=hi).to_string()
}

/// Generates a general-domain (Wikipedia-like) table for a topic.
pub fn wiki_table(topic: &str, rng: &mut impl Rng) -> Table {
    let rows = rng.gen_range(4..=8);
    match topic {
        "films" => {
            let names = distinct(FILM_WORDS_A, rows, rng);
            let grid_rows: Vec<Vec<String>> = names
                .iter()
                .map(|a| {
                    vec![
                        format!("{a} {}", pick(FILM_WORDS_B, rng)),
                        person_name(rng),
                        num(rng, 1970, 2022),
                        num(rng, 5, 900),
                        format!("{}.{}", rng.gen_range(4..9), rng.gen_range(0..9)),
                    ]
                })
                .collect();
            build("Feature films", &["film", "director", "year", "box office", "rating"], grid_rows)
        }
        "politics" => {
            let names = distinct(DEPARTMENTS, rows.min(DEPARTMENTS.len()), rng);
            let grid_rows: Vec<Vec<String>> = names
                .iter()
                .map(|d| {
                    vec![
                        d.to_string(),
                        person_name(rng),
                        num(rng, 8, 60),
                        num(rng, 200, 9500),
                        num(rng, 1789, 1990),
                    ]
                })
                .collect();
            build(
                "Federal departments",
                &["department", "secretary", "total deputies", "budget", "founded"],
                grid_rows,
            )
        }
        "geography" => {
            let mut pool: Vec<&(&str, &str)> = COUNTRIES.iter().collect();
            pool.shuffle(rng);
            let grid_rows: Vec<Vec<String>> = pool
                .into_iter()
                .take(rows)
                .map(|(country, capital)| {
                    vec![
                        country.to_string(),
                        capital.to_string(),
                        num(rng, 2, 140),
                        num(rng, 40, 9000),
                    ]
                })
                .collect();
            build("Countries", &["country", "capital", "population", "area"], grid_rows)
        }
        "music" => {
            let names = distinct(ALBUM_WORDS, rows.min(ALBUM_WORDS.len()), rng);
            let grid_rows: Vec<Vec<String>> = names
                .iter()
                .map(|a| {
                    vec![
                        a.to_string(),
                        person_name(rng),
                        num(rng, 1975, 2022),
                        num(rng, 100, 9000),
                        num(rng, 1, 30),
                    ]
                })
                .collect();
            build(
                "Studio albums",
                &["album", "artist", "year", "sales", "weeks on chart"],
                grid_rows,
            )
        }
        // default: sports
        _ => {
            let adjs = distinct(TEAM_ADJ, rows, rng);
            let grid_rows: Vec<Vec<String>> = adjs
                .iter()
                .map(|a| {
                    vec![
                        format!("{a} {}", pick(TEAM_NOUN, rng)),
                        pick(CITIES, rng).to_string(),
                        num(rng, 20, 99),
                        num(rng, 2, 30),
                        num(rng, 0, 20),
                        num(rng, 1000, 65000),
                    ]
                })
                .collect();
            build(
                "League standings",
                &["team", "city", "points", "wins", "losses", "attendance"],
                grid_rows,
            )
        }
    }
}

/// Generates a financial-report table (TAT-QA-like): line items × periods.
pub fn finance_table(rng: &mut impl Rng) -> Table {
    let rows = rng.gen_range(4..=8);
    let year: i64 = rng.gen_range(2015..=2020);
    let items = distinct(FIN_ITEMS, rows, rng);
    let grid_rows: Vec<Vec<String>> = items
        .iter()
        .map(|item| {
            let base = rng.gen_range(300..20000);
            let prev = (base as f64 * rng.gen_range(0.6..1.4)) as i64;
            vec![item.to_string(), base.to_string(), prev.to_string()]
        })
        .collect();
    build(
        "Consolidated statements",
        &["item", &year.to_string(), &(year - 1).to_string()],
        grid_rows,
    )
}

/// Generates a scientific table (SEM-TAB-FACTS-like): samples × measures.
pub fn science_table(rng: &mut impl Rng) -> Table {
    let rows = rng.gen_range(4..=7);
    if rng.gen_bool(0.5) {
        let mats = distinct(MATERIALS, rows, rng);
        let grid_rows: Vec<Vec<String>> = mats
            .iter()
            .map(|m| {
                vec![
                    m.to_string(),
                    format!("{:.2}", rng.gen_range(0.8..8.0)),
                    num(rng, 120, 2100),
                    num(rng, 10, 600),
                ]
            })
            .collect();
        build(
            "Material properties",
            &["material", "density", "melting point", "tensile strength"],
            grid_rows,
        )
    } else {
        let comps = distinct(COMPOUNDS, rows, rng);
        let grid_rows: Vec<Vec<String>> = comps
            .iter()
            .map(|c| {
                vec![
                    c.to_string(),
                    format!("{:.1}", rng.gen_range(20.0..400.0)),
                    format!("{:.2}", rng.gen_range(0.1..9.9)),
                    num(rng, 1, 96),
                ]
            })
            .collect();
        build("Measured compounds", &["compound", "molar mass", "solubility", "yield"], grid_rows)
    }
}

fn build(title: &str, header: &[&str], rows: Vec<Vec<String>>) -> Table {
    let mut grid: Vec<Vec<&str>> = vec![header.to_vec()];
    for r in &rows {
        if r.len() == header.len() {
            grid.push(r.iter().map(String::as_str).collect());
        }
    }
    // Row arity — the only failure `from_strings` has — is enforced above,
    // so the empty-table fallback never surfaces.
    Table::from_strings(title, &grid).unwrap_or_default()
}

/// Generates a paragraph of surrounding text for a table: one or two
/// *extra records* not present in the table (verbalized in the patterns the
/// Text-To-Table extractor understands) plus filler sentences.
pub fn surrounding_text(table: &Table, rng: &mut impl Rng) -> String {
    let mut sentences: Vec<String> = Vec::new();
    sentences.push(filler_sentence(rng));
    for _ in 0..rng.gen_range(1..=2) {
        if let Some(s) = extra_record_sentence(table, rng) {
            sentences.push(s);
        }
    }
    sentences.push(filler_sentence(rng));
    sentences.join(" ")
}

/// A sentence describing a plausible new record matching the table schema.
pub fn extra_record_sentence(table: &Table, rng: &mut impl Rng) -> Option<String> {
    let ecol = textops::entity_column(table);
    // Invent an entity name unlikely to collide with existing rows.
    let entity = loop {
        let candidate = match table.title.as_str() {
            "Consolidated statements" => FIN_ITEMS.choose(rng)?.to_string(),
            "Material properties" => MATERIALS.choose(rng)?.to_string(),
            "Measured compounds" => COMPOUNDS.choose(rng)?.to_string(),
            "Federal departments" => DEPARTMENTS.choose(rng)?.to_string(),
            _ => format!("{} {}", TEAM_ADJ.choose(rng)?, TEAM_NOUN.choose(rng)?),
        };
        let v = Value::text(candidate.clone());
        let exists =
            (0..table.n_rows()).any(|r| table.cell(r, ecol).is_some_and(|c| c.loosely_equals(&v)));
        if !exists {
            break candidate;
        }
    };
    let mut facts: Vec<String> = Vec::new();
    for ci in 0..table.n_cols() {
        if ci == ecol {
            continue;
        }
        let col = table.column_name(ci)?;
        // Sample a plausible value: reuse the column's own distribution.
        let pool: Vec<Value> =
            table.column_values(ci).into_iter().filter(|v| !v.is_null()).collect();
        let v = pool.choose(rng)?;
        let v = match v {
            Value::Number(n) => Value::number((n * rng.gen_range(0.8..1.2)).round()),
            other => other.clone(),
        };
        facts.push(format!("a {col} of {v}"));
    }
    if facts.is_empty() {
        return None;
    }
    let joined = match facts.len() {
        1 => facts.remove(0),
        _ => {
            let last = facts.pop().unwrap_or_default();
            format!("{} and {}", facts.join(", "), last)
        }
    };
    Some(format!("{entity} has {joined}."))
}

fn filler_sentence(rng: &mut impl Rng) -> String {
    const FILLER: &[&str] = &[
        "The figures were reviewed by independent auditors.",
        "Historical context is provided in the appendix.",
        "Several observers noted the unusual circumstances of the period.",
        "The methodology follows the standard reporting framework.",
        "Further details appear in the accompanying notes.",
        "Seasonal effects were not adjusted for in this summary.",
    ];
    pick(FILLER, rng).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::ColumnType;

    #[test]
    fn wiki_tables_have_expected_schemas() {
        let mut rng = StdRng::seed_from_u64(1);
        for topic in TOPICS {
            let t = wiki_table(topic, &mut rng);
            assert!(t.n_rows() >= 4, "{topic}");
            assert!(t.n_cols() >= 4, "{topic}");
            // Every topic schema has at least one text and one numeric column.
            assert!(!t.schema().columns_of_type(ColumnType::Text).is_empty(), "{topic}");
            assert!(!t.schema().columns_of_type(ColumnType::Number).is_empty(), "{topic}");
        }
    }

    #[test]
    fn finance_tables_are_item_by_year() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = finance_table(&mut rng);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.schema().column(0).unwrap().ty, ColumnType::Text);
        assert_eq!(t.schema().column(1).unwrap().ty, ColumnType::Number);
    }

    #[test]
    fn science_tables_have_numeric_measures() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = science_table(&mut rng);
        assert!(t.schema().columns_of_type(ColumnType::Number).len() >= 2);
    }

    #[test]
    fn surrounding_text_is_extractable() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = finance_table(&mut rng);
        // At least one generated paragraph in 10 must yield an expansion.
        let mut ok = false;
        for _ in 0..10 {
            let p = surrounding_text(&t, &mut rng);
            if textops::text_to_table(&t, &p).is_some() {
                ok = true;
                break;
            }
        }
        assert!(ok, "no surrounding text yielded a table expansion");
    }

    #[test]
    fn extra_record_entities_not_in_table() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = wiki_table("politics", &mut rng);
        for _ in 0..10 {
            if let Some(s) = extra_record_sentence(&t, &mut rng) {
                let entity = s.split(" has ").next().unwrap();
                let ecol = textops::entity_column(&t);
                let exists = (0..t.n_rows())
                    .any(|r| t.cell(r, ecol).unwrap().to_string().eq_ignore_ascii_case(entity));
                assert!(!exists, "{entity} already in table");
            }
        }
    }

    #[test]
    fn tables_are_random_but_seed_deterministic() {
        let a = wiki_table("sports", &mut StdRng::seed_from_u64(7));
        let b = wiki_table("sports", &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = wiki_table("sports", &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }
}
