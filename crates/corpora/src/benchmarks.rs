//! Synthetic stand-ins for the four evaluation benchmarks (paper §V-A,
//! Table II): FEVEROUS, TAT-QA, WikiSQL and SEM-TAB-FACTS.
//!
//! Each generator produces a [`Benchmark`]: gold train/dev/test splits
//! annotated by the [`crate::annotator`] simulator, plus the *unlabeled*
//! tables-with-context that UCTR is allowed to see (the paper uses the
//! original datasets' tables for synthesis, §V-B). Evidence-type, label and
//! answer-type proportions follow Table II.

use crate::annotator::{
    gold_bank, gold_qa_arith, gold_qa_sql, gold_qa_sql_for_topic, gold_text_only,
    gold_verification, into_table_text,
};
use crate::vocab::{self, TOPICS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tabular::Table;
use textops::{describe_row, entity_column};
use uctr::{Dataset, EvidenceType, Label, Sample, TableWithContext, Verdict};

/// A benchmark: gold splits + the unlabeled synthesis inputs.
#[derive(Debug, Clone)]
pub struct Benchmark {
    pub gold: Dataset,
    pub unlabeled: Vec<TableWithContext>,
}

/// Generation scale. The defaults are sized so every experiment binary
/// trains in seconds on a laptop while leaving enough data for the learned
/// models to show the paper's trends.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    pub n_tables: usize,
    /// Gold samples attempted per table for the train split.
    pub train_per_table: usize,
    /// Gold samples attempted per table for dev and test tables (each).
    pub eval_per_table: usize,
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { n_tables: 120, train_per_table: 10, eval_per_table: 16, seed: 2023 }
    }
}

impl CorpusConfig {
    /// A miniature configuration for unit tests.
    pub fn tiny() -> CorpusConfig {
        CorpusConfig { n_tables: 40, train_per_table: 4, eval_per_table: 4, seed: 7 }
    }
}

/// Split assignment by table: like the real benchmarks, train/dev/test use
/// DISJOINT tables (75% / 12.5% / 12.5%). Tables are assigned in blocks of
/// five — one full topic cycle — so every topic appears in every split.
fn split_of(table_index: usize) -> usize {
    match (table_index / 5) % 8 {
        0..=5 => 0,
        6 => 1,
        _ => 2,
    }
}

fn push_split(d: &mut Dataset, split: usize, s: Sample) {
    match split {
        0 => d.train.push(s),
        1 => d.dev.push(s),
        _ => d.test.push(s),
    }
}

/// WikiSQL-like: general-domain QA over tables only, topic-tagged.
pub fn wikisql_like(cfg: CorpusConfig) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let bank = gold_bank();
    let mut gold = Dataset::new("wikisql-like");
    let mut unlabeled = Vec::with_capacity(cfg.n_tables);
    for i in 0..cfg.n_tables {
        let topic = TOPICS[i % TOPICS.len()];
        let table = vocab::wiki_table(topic, &mut rng);
        let split = split_of(i);
        if split == 0 {
            // Only train-split tables are visible to the unsupervised
            // pipeline (no test-table leakage).
            unlabeled.push(TableWithContext {
                table: table.clone().into(),
                paragraph: None,
                topic: topic.to_string(),
            });
        }
        let budget = if split == 0 { cfg.train_per_table } else { cfg.eval_per_table };
        for _ in 0..budget {
            if let Some(mut s) = gold_qa_sql_for_topic(&table, &bank, topic, &mut rng) {
                s.topic = topic.to_string();
                push_split(&mut gold, split, s);
            }
        }
    }
    Benchmark { gold, unlabeled }
}

/// FEVEROUS-like: general-domain fact verification over tables + text,
/// mostly Supported/Refuted with a small NEI slice (paper: NEI is tiny and
/// is dropped at training time, following Malon \[35\]).
pub fn feverous_like(cfg: CorpusConfig) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let bank = gold_bank();
    let mut gold = Dataset::new("feverous-like");
    let mut unlabeled = Vec::with_capacity(cfg.n_tables);
    for i in 0..cfg.n_tables {
        let topic = TOPICS[i % TOPICS.len()];
        let table = vocab::wiki_table(topic, &mut rng);
        let paragraph = vocab::surrounding_text(&table, &mut rng);
        let split = split_of(i);
        if split == 0 {
            unlabeled.push(TableWithContext {
                table: table.clone().into(),
                paragraph: Some(paragraph.clone()),
                topic: topic.to_string(),
            });
        }
        let budget = if split == 0 { cfg.train_per_table } else { cfg.eval_per_table };
        for _ in 0..budget {
            // Evidence mix per Table II: ~40% sentence, ~33% table, ~28%
            // combined.
            let roll: f64 = rng.gen();
            let sample = if roll < 0.40 {
                text_verification(&table, &mut rng)
            } else if roll < 0.73 {
                gold_verification(&table, &bank, &mut rng)
            } else {
                gold_verification(&table, &bank, &mut rng)
                    .and_then(|s| into_table_text(s, &mut rng))
            };
            if let Some(mut s) = sample {
                s.topic = topic.to_string();
                push_split(&mut gold, split, s);
            }
        }
    }
    // NEI slice (~5%): claims paired with mismatched evidence.
    inject_unknowns(&mut gold, 0.05, &mut rng);
    Benchmark { gold, unlabeled }
}

/// TAT-QA-like: financial QA over tables + text with the Table II answer
/// mix (Span ≈ 55%, Arithmetic ≈ 42%, Counting ≈ 3%) and evidence mix.
pub fn tatqa_like(cfg: CorpusConfig) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
    let bank = gold_bank();
    let mut gold = Dataset::new("tatqa-like");
    let mut unlabeled = Vec::with_capacity(cfg.n_tables);
    for i in 0..cfg.n_tables {
        let table = vocab::finance_table(&mut rng);
        let paragraph = vocab::surrounding_text(&table, &mut rng);
        let split = split_of(i);
        if split == 0 {
            unlabeled.push(TableWithContext {
                table: table.clone().into(),
                paragraph: Some(paragraph.clone()),
                topic: "finance".to_string(),
            });
        }
        let budget = if split == 0 { cfg.train_per_table } else { cfg.eval_per_table };
        for _ in 0..budget {
            let roll: f64 = rng.gen();
            // Answer-type mix drives program choice.
            let base = if roll < 0.44 {
                gold_qa_arith(&table, &bank, &mut rng)
            } else {
                gold_qa_sql(&table, &bank, &mut rng)
            };
            let Some(sample) = base else { continue };
            // Evidence mix: table ≈ 45%, combined ≈ 31%, text ≈ 24%.
            let eroll: f64 = rng.gen();
            let finished = if eroll < 0.45 {
                Some(sample)
            } else if eroll < 0.76 {
                into_table_text(sample, &mut rng)
            } else {
                gold_text_only(&table, &mut rng)
            };
            if let Some(mut s) = finished {
                s.topic = "finance".to_string();
                push_split(&mut gold, split, s);
            }
        }
    }
    Benchmark { gold, unlabeled }
}

/// SEM-TAB-FACTS-like: scientific fact verification, 3-way labels with a
/// small Unknown slice (224 / 5715 ≈ 4% in the original).
pub fn semtab_like(cfg: CorpusConfig) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(3));
    let bank = gold_bank();
    let mut gold = Dataset::new("semtabfacts-like");
    let mut unlabeled = Vec::with_capacity(cfg.n_tables);
    for i in 0..cfg.n_tables {
        let table = vocab::science_table(&mut rng);
        let split = split_of(i);
        if split == 0 {
            unlabeled.push(TableWithContext {
                table: table.clone().into(),
                paragraph: None,
                topic: "science".to_string(),
            });
        }
        let budget = if split == 0 { cfg.train_per_table } else { cfg.eval_per_table };
        for _ in 0..budget {
            if let Some(mut s) = gold_verification(&table, &bank, &mut rng) {
                s.topic = "science".to_string();
                push_split(&mut gold, split, s);
            }
        }
    }
    inject_unknowns(&mut gold, 0.06, &mut rng);
    Benchmark { gold, unlabeled }
}

/// A verification sample whose evidence is a sentence (no table rows).
fn text_verification(table: &Table, rng: &mut StdRng) -> Option<Sample> {
    let row = rng.gen_range(0..table.n_rows());
    let sentence = describe_row(table, row, rng)?;
    let ecol = entity_column(table);
    let entity = table.cell(row, ecol).filter(|v| !v.is_null())?.to_string();
    let cols: Vec<usize> = (0..table.n_cols())
        .filter(|&c| c != ecol && table.cell(row, c).is_some_and(|v| !v.is_null()))
        .collect();
    let &col = cols.choose(rng)?;
    let col_name = table.column_name(col)?;
    let value = table.cell(row, col)?.to_string();
    let supported = rng.gen_bool(0.5);
    let (claim_value, verdict) = if supported {
        (value.clone(), Verdict::Supported)
    } else {
        let alternatives: Vec<String> = table
            .column_values(col)
            .iter()
            .filter(|v| !v.is_null() && v.to_string() != value)
            .map(|v| v.to_string())
            .collect();
        (alternatives.choose(rng)?.clone(), Verdict::Refuted)
    };
    let empty = Table::from_strings(&table.title, &[vec![]]).ok()?;
    let mut s = Sample::verification(
        empty,
        format!("{entity} reports {claim_value} as its {col_name}."),
        verdict,
    );
    s.context = vec![sentence];
    s.evidence = EvidenceType::TextOnly;
    Some(s)
}

/// Relabels a random fraction of verification samples Unknown by swapping
/// in evidence from a different sample.
fn inject_unknowns(d: &mut Dataset, rate: f64, rng: &mut StdRng) {
    for split in [&mut d.train, &mut d.dev, &mut d.test] {
        let n = split.len();
        if n < 2 {
            continue;
        }
        for i in 0..n {
            if !rng.gen_bool(rate) {
                continue;
            }
            let j = rng.gen_range(0..n - 1);
            let j = if j >= i { j + 1 } else { j };
            if split[j].table.title == split[i].table.title && split[j].table == split[i].table {
                continue;
            }
            let (table, context, evidence) =
                (split[j].table.clone(), split[j].context.clone(), split[j].evidence);
            split[i].table = table;
            split[i].context = context;
            split[i].evidence = evidence;
            split[i].label = Label::Verdict(Verdict::Unknown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uctr::AnswerKind;

    #[test]
    fn wikisql_like_structure() {
        let b = wikisql_like(CorpusConfig::tiny());
        assert!(!b.gold.train.is_empty());
        assert!(!b.gold.dev.is_empty());
        assert!(!b.gold.test.is_empty());
        assert_eq!(b.unlabeled.len(), 30); // 75% of 40 tables
                                           // All QA, all table-only.
        for s in &b.gold.train {
            assert!(s.label.as_answer().is_some());
            assert_eq!(s.evidence, EvidenceType::TableOnly);
            assert!(!s.topic.is_empty());
        }
    }

    #[test]
    fn wikisql_topics_are_diverse() {
        let b = wikisql_like(CorpusConfig::tiny());
        let mut topics: Vec<&str> = b.gold.train.iter().map(|s| s.topic.as_str()).collect();
        topics.sort_unstable();
        topics.dedup();
        assert!(topics.len() >= 4, "{topics:?}");
    }

    #[test]
    fn feverous_like_mixes_evidence() {
        let b = feverous_like(CorpusConfig::default());
        let counts = b.gold.evidence_counts();
        assert!(counts[0].1 > 0, "no table-only");
        assert!(counts[1].1 > 0, "no text-only");
        assert!(counts[2].1 > 0, "no combined");
        let verdicts = b.gold.verdict_counts();
        assert!(verdicts[0].1 > 0 && verdicts[1].1 > 0);
        // NEI small but present.
        let total = b.gold.len() as f64;
        assert!(verdicts[2].1 as f64 / total < 0.12);
    }

    #[test]
    fn tatqa_like_answer_mix() {
        let b = tatqa_like(CorpusConfig::default());
        let arith = b.gold.train.iter().filter(|s| s.answer_kind == AnswerKind::Arithmetic).count();
        let span = b.gold.train.iter().filter(|s| s.answer_kind == AnswerKind::Span).count();
        assert!(arith > 0 && span > 0);
        // Arithmetic should be a large minority (Table II: ~42%).
        let frac = arith as f64 / b.gold.train.len() as f64;
        assert!(frac > 0.2 && frac < 0.7, "arithmetic fraction {frac}");
    }

    #[test]
    fn semtab_like_three_way() {
        let b = semtab_like(CorpusConfig::default());
        let v = b.gold.verdict_counts();
        assert!(v[0].1 > 0 && v[1].1 > 0 && v[2].1 > 0, "{v:?}");
        assert!(v[2].1 < v[0].1 && v[2].1 < v[1].1, "Unknown must be the smallest: {v:?}");
    }

    #[test]
    fn unlabeled_matches_gold_tables() {
        let b = tatqa_like(CorpusConfig::tiny());
        assert_eq!(b.unlabeled.len(), 30); // train-split tables only
        assert!(b.unlabeled.iter().all(|u| u.paragraph.is_some()));
    }

    #[test]
    fn splits_use_disjoint_tables() {
        let b = wikisql_like(CorpusConfig::tiny());
        let titles = |ss: &[Sample]| -> std::collections::BTreeSet<String> {
            ss.iter().map(|s| format!("{}", s.table)).collect()
        };
        let train = titles(&b.gold.train);
        let dev = titles(&b.gold.dev);
        let test = titles(&b.gold.test);
        assert!(train.is_disjoint(&dev), "train/dev share tables");
        assert!(train.is_disjoint(&test), "train/test share tables");
        assert!(dev.is_disjoint(&test), "dev/test share tables");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = wikisql_like(CorpusConfig::tiny());
        let b = wikisql_like(CorpusConfig::tiny());
        assert_eq!(a.gold.train.len(), b.gold.train.len());
        for (x, y) in a.gold.train.iter().zip(&b.gold.train) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn text_only_answers_recoverable_from_sentence() {
        let b = feverous_like(CorpusConfig::tiny());
        for s in b.gold.train.iter().filter(|s| s.evidence == EvidenceType::TextOnly) {
            assert!(!s.context.is_empty());
            assert_eq!(s.table.n_rows(), 0);
        }
    }
}
