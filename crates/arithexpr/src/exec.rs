//! Arithmetic-expression executor.
//!
//! Resolves cell references against a table using TAT-QA's convention: the
//! first text column holds row names, other columns are addressed by header.
//! Executes steps in order, resolving `#N` references, and answers with the
//! final step's value. `greater` steps produce yes/no answers.

use crate::ast::{AeArg, AeOp, AeProgram};
use std::fmt;
use tabular::{format_number, kernels, ColumnType, ExecContext, KernelScratch, Table, Value};

/// The answer of an arithmetic program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AeAnswer {
    Number(f64),
    /// Result of a `greater` comparison.
    YesNo(bool),
}

impl AeAnswer {
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AeAnswer::Number(n) => Some(*n),
            AeAnswer::YesNo(_) => None,
        }
    }
}

impl fmt::Display for AeAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AeAnswer::Number(n) => write!(f, "{}", format_number(*n)),
            AeAnswer::YesNo(b) => write!(f, "{}", if *b { "yes" } else { "no" }),
        }
    }
}

/// Execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum AeError {
    UnknownColumn(String),
    UnknownRow(String),
    /// The addressed cell exists but holds no number.
    NonNumericCell {
        col: String,
        row: String,
    },
    DivisionByZero,
    /// The program still contains template holes.
    Uninstantiated,
    /// A step used a boolean result as a number.
    BoolAsNumber,
    EmptyColumn(String),
    /// An executor invariant was violated (never expected on any input; a
    /// `Discard`-able stand-in for what would otherwise be a panic).
    Internal(&'static str),
}

impl fmt::Display for AeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AeError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            AeError::UnknownRow(r) => write!(f, "unknown row `{r}`"),
            AeError::NonNumericCell { col, row } => {
                write!(f, "cell `{col}` of `{row}` is not numeric")
            }
            AeError::DivisionByZero => write!(f, "division by zero"),
            AeError::Uninstantiated => write!(f, "program still contains template holes"),
            AeError::BoolAsNumber => write!(f, "boolean step result used as a number"),
            AeError::EmptyColumn(c) => write!(f, "column `{c}` has no numeric values"),
            AeError::Internal(what) => write!(f, "executor invariant violated: {what}"),
        }
    }
}

impl std::error::Error for AeError {}

/// Outcome with the highlighted cells that fed the computation.
#[derive(Debug, Clone, PartialEq)]
pub struct AeOutcome {
    pub answer: AeAnswer,
    pub highlighted: Vec<(usize, usize)>,
}

/// The index of the row-name column: the first `Text` column, falling back
/// to column 0 (financial tables lead with a label column).
pub fn row_name_column(table: &Table) -> usize {
    table.schema().columns().iter().position(|c| c.ty == ColumnType::Text).unwrap_or(0)
}

/// Resolves `col of row` to a (row, col) pair.
pub fn resolve_cell(table: &Table, col: &str, row: &str) -> Result<(usize, usize), AeError> {
    resolve_cell_impl(table, None, col, row)
}

fn resolve_cell_impl(
    table: &Table,
    ctx: Option<&ExecContext>,
    col: &str,
    row: &str,
) -> Result<(usize, usize), AeError> {
    let ci = table.column_index(col).ok_or_else(|| AeError::UnknownColumn(col.to_string()))?;
    let target = Value::parse(row);
    let ri = match ctx {
        // Same first-match scan, but the row-name renderings come from the
        // context's lowercase cache instead of a `to_string` per row.
        Some(ctx) => {
            let name_col = ctx.row_name_column();
            (0..table.n_rows()).find(|&ri| {
                table.cell(ri, name_col).is_some_and(|v| {
                    v.loosely_equals(&target)
                        || ctx.name_lower(ri).is_some_and(|n| n.eq_ignore_ascii_case(row))
                })
            })
        }
        None => {
            let name_col = row_name_column(table);
            (0..table.n_rows()).find(|&ri| {
                table.cell(ri, name_col).is_some_and(|v| {
                    v.loosely_equals(&target) || v.to_string().eq_ignore_ascii_case(row)
                })
            })
        }
    }
    .ok_or_else(|| AeError::UnknownRow(row.to_string()))?;
    Ok((ri, ci))
}

/// Executes a fully instantiated program against a table.
pub fn execute(program: &AeProgram, table: &Table) -> Result<AeOutcome, AeError> {
    execute_impl(program, table, None, &mut KernelScratch::default(), &mut Vec::new())
}

/// [`execute`] using a prebuilt [`ExecContext`]: table aggregations read the
/// cached per-column numeric pairs and cell addressing uses the cached
/// row-name renderings. Result-identical to [`execute`].
pub fn execute_in(
    program: &AeProgram,
    table: &Table,
    ctx: &ExecContext,
) -> Result<AeOutcome, AeError> {
    execute_impl(program, table, Some(ctx), &mut KernelScratch::default(), &mut Vec::new())
}

/// [`execute_in`] reusing caller-owned kernel buffers so failed attempts in
/// the instantiation loop stop allocating. Result-identical to [`execute`].
pub fn execute_in_with(
    program: &AeProgram,
    table: &Table,
    ctx: &ExecContext,
    kern: &mut KernelScratch,
) -> Result<AeOutcome, AeError> {
    execute_impl(program, table, Some(ctx), kern, &mut Vec::new())
}

pub(crate) fn execute_impl(
    program: &AeProgram,
    table: &Table,
    ctx: Option<&ExecContext>,
    kern: &mut KernelScratch,
    results: &mut Vec<AeAnswer>,
) -> Result<AeOutcome, AeError> {
    if program.has_holes() {
        return Err(AeError::Uninstantiated);
    }
    results.clear();
    // Accumulate highlights in the pooled buffer; only a successful run
    // clones them out into the returned outcome.
    let mut highlighted = std::mem::take(&mut kern.hl);
    highlighted.clear();
    let res = execute_steps(program, table, ctx, kern, results, &mut highlighted);
    let out = res.map(|answer| {
        highlighted.sort_unstable();
        highlighted.dedup();
        AeOutcome { answer, highlighted: highlighted.clone() }
    });
    kern.hl = highlighted;
    out
}

fn execute_steps(
    program: &AeProgram,
    table: &Table,
    ctx: Option<&ExecContext>,
    kern: &mut KernelScratch,
    results: &mut Vec<AeAnswer>,
    highlighted: &mut Vec<(usize, usize)>,
) -> Result<AeAnswer, AeError> {
    for step in &program.steps {
        let answer = if step.op.is_table_op() {
            let col_name = match &step.args[0] {
                AeArg::Column(c) => c.as_str(),
                AeArg::Cell { col, .. } => col.as_str(),
                _ => return Err(AeError::Uninstantiated),
            };
            let ci = table
                .column_index(col_name)
                .ok_or_else(|| AeError::UnknownColumn(col_name.to_string()))?;
            let mut nums = std::mem::take(&mut kern.nums);
            nums.clear();
            match ctx {
                Some(ctx) => {
                    for &(ri, n) in ctx.numeric_pairs(ci) {
                        highlighted.push((ri, ci));
                        nums.push(n);
                    }
                }
                None => {
                    for ri in 0..table.n_rows() {
                        if let Some(n) = table.cell(ri, ci).and_then(Value::as_number) {
                            highlighted.push((ri, ci));
                            nums.push(n);
                        }
                    }
                }
            }
            if nums.is_empty() {
                kern.nums = nums;
                return Err(AeError::EmptyColumn(col_name.to_string()));
            }
            let v = match step.op {
                AeOp::TableMax => Ok(kernels::fold_max(&nums)),
                AeOp::TableMin => Ok(kernels::fold_min(&nums)),
                AeOp::TableSum => Ok(kernels::sum(&nums)),
                AeOp::TableAverage => Ok(kernels::sum(&nums) / nums.len() as f64),
                _ => Err(AeError::Internal("scalar op in table-op dispatch")),
            };
            kern.nums = nums;
            AeAnswer::Number(v?)
        } else {
            let a = resolve_numeric(&step.args[0], table, ctx, results, highlighted)?;
            let b = resolve_numeric(&step.args[1], table, ctx, results, highlighted)?;
            match step.op {
                AeOp::Add => AeAnswer::Number(a + b),
                AeOp::Subtract => AeAnswer::Number(a - b),
                AeOp::Multiply => AeAnswer::Number(a * b),
                AeOp::Divide => {
                    if b == 0.0 {
                        return Err(AeError::DivisionByZero);
                    }
                    AeAnswer::Number(a / b)
                }
                AeOp::Greater => AeAnswer::YesNo(a > b),
                AeOp::Exp => {
                    let v = a.powf(b);
                    if !v.is_finite() {
                        return Err(AeError::DivisionByZero);
                    }
                    AeAnswer::Number(v)
                }
                _ => return Err(AeError::Internal("table op in scalar-op dispatch")),
            }
        };
        results.push(answer);
    }
    results.pop().ok_or(AeError::Internal("program with no steps"))
}

fn resolve_numeric(
    arg: &AeArg,
    table: &Table,
    ctx: Option<&ExecContext>,
    results: &[AeAnswer],
    highlighted: &mut Vec<(usize, usize)>,
) -> Result<f64, AeError> {
    match arg {
        AeArg::Const(n) => Ok(*n),
        AeArg::StepRef(i) => {
            results.get(*i).ok_or(AeError::BoolAsNumber)?.as_number().ok_or(AeError::BoolAsNumber)
        }
        AeArg::Cell { col, row } => {
            let (ri, ci) = resolve_cell_impl(table, ctx, col, row)?;
            highlighted.push((ri, ci));
            match ctx {
                Some(ctx) => ctx.number_at(ri, ci),
                None => table.cell(ri, ci).and_then(Value::as_number),
            }
            .ok_or_else(|| AeError::NonNumericCell { col: col.clone(), row: row.clone() })
        }
        AeArg::Column(c) => Err(AeError::UnknownColumn(c.clone())),
        AeArg::CellHole(_) | AeArg::ColumnHole(_) => Err(AeError::Uninstantiated),
    }
}

/// Convenience: parse + execute.
pub fn run_arith(program: &str, table: &Table) -> Result<AeOutcome, String> {
    let p = crate::parser::parse(program).map_err(|e| e.to_string())?;
    execute(&p, table).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn financials() -> Table {
        Table::from_strings(
            "Balance sheet",
            &[
                vec!["item", "2019", "2018"],
                vec!["Stockholders' equity", "3200", "4000"],
                vec!["Revenue", "8800", "8000"],
                vec!["Operating costs", "6100", "5900"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    #[test]
    fn paper_percentage_change() -> Result<(), Box<dyn std::error::Error>> {
        // (equity2019 - equity2018) / equity2018 = (3200-4000)/4000 = -0.2
        let out = run_arith(
            "subtract( the 2019 of Stockholders' equity , the 2018 of Stockholders' equity ), divide( #0 , the 2018 of Stockholders' equity )",
            &financials(),
        )
        ?;
        assert_eq!(out.answer, AeAnswer::Number(-0.2));
        Ok(())
    }

    #[test]
    fn add_and_multiply() -> Result<(), Box<dyn std::error::Error>> {
        let out = run_arith("add( the 2019 of Revenue , the 2018 of Revenue )", &financials())?;
        assert_eq!(out.answer, AeAnswer::Number(16800.0));
        let out = run_arith("multiply( the 2019 of Revenue , 0.5 )", &financials())?;
        assert_eq!(out.answer, AeAnswer::Number(4400.0));
        Ok(())
    }

    #[test]
    fn greater_yields_yes_no() -> Result<(), Box<dyn std::error::Error>> {
        let out = run_arith("greater( the 2019 of Revenue , the 2018 of Revenue )", &financials())?;
        assert_eq!(out.answer, AeAnswer::YesNo(true));
        assert_eq!(out.answer.to_string(), "yes");
        let out = run_arith(
            "greater( the 2019 of Stockholders' equity , the 2018 of Stockholders' equity )",
            &financials(),
        )?;
        assert_eq!(out.answer.to_string(), "no");
        Ok(())
    }

    #[test]
    fn exp_operation() -> Result<(), Box<dyn std::error::Error>> {
        let out = run_arith("exp( 2 , 10 )", &financials())?;
        assert_eq!(out.answer, AeAnswer::Number(1024.0));
        Ok(())
    }

    #[test]
    fn table_aggregations() -> Result<(), Box<dyn std::error::Error>> {
        let out = run_arith("table_sum( 2019 )", &financials())?;
        assert_eq!(out.answer, AeAnswer::Number(18100.0));
        let out = run_arith("table_max( 2018 )", &financials())?;
        assert_eq!(out.answer, AeAnswer::Number(8000.0));
        let out = run_arith("table_average( 2018 )", &financials())?;
        assert_eq!(out.answer.as_number().ok_or("non-numeric answer")?.round(), 5967.0);
        Ok(())
    }

    #[test]
    fn chained_table_op() -> Result<(), Box<dyn std::error::Error>> {
        let out = run_arith("table_sum( 2019 ) , divide( #0 , 3 )", &financials())?;
        assert!((out.answer.as_number().ok_or("non-numeric answer")? - 6033.333).abs() < 0.001);
        Ok(())
    }

    #[test]
    fn division_by_zero() {
        let err = run_arith("subtract( 5 , 5 ) , divide( 1 , #0 )", &financials()).unwrap_err();
        assert!(err.contains("division"));
    }

    #[test]
    fn unknown_row_and_column() {
        assert!(run_arith("add( the 2019 of Dividends , 1 )", &financials())
            .unwrap_err()
            .contains("unknown row"));
        assert!(run_arith("add( the 2031 of Revenue , 1 )", &financials())
            .unwrap_err()
            .contains("unknown column"));
    }

    #[test]
    fn bool_as_number_error() {
        let err = run_arith("greater( 2 , 1 ) , add( #0 , 1 )", &financials()).unwrap_err();
        assert!(err.contains("boolean"));
    }

    #[test]
    fn uninstantiated_template_error() {
        let err = run_arith("subtract( val1 , val2 )", &financials()).unwrap_err();
        assert!(err.contains("holes"));
    }

    #[test]
    fn highlights_recorded() -> Result<(), Box<dyn std::error::Error>> {
        let out =
            run_arith("subtract( the 2019 of Revenue , the 2018 of Revenue )", &financials())?;
        assert_eq!(out.highlighted, vec![(1, 1), (1, 2)]);
        Ok(())
    }

    #[test]
    fn row_name_column_detection() -> Result<(), Box<dyn std::error::Error>> {
        assert_eq!(row_name_column(&financials()), 0);
        let t = Table::from_strings("t", &[vec!["x", "label"], vec!["1", "a"], vec!["2", "b"]])?;
        assert_eq!(row_name_column(&t), 1);
        Ok(())
    }
}
