//! Static analysis of arithmetic-expression templates: typechecking
//! without a table.
//!
//! [`analyze`] inspects a parsed [`AeTemplate`] and reports the defects the
//! executor (`crate::exec`) would otherwise turn into deterministic runtime
//! discards, plus the [`SchemaRequirement`] a table must satisfy for
//! instantiation to have any chance of succeeding.
//!
//! Type rules (each mirrors an exact executor code path):
//!
//! * **empty-program** — a program with no steps has no final answer.
//! * **arity-mismatch** — a step with the wrong argument count. The parser
//!   enforces arity, so this fires only for programmatically built
//!   templates (`AeTemplate::from_program`).
//! * **dangling-step-ref** — `#N` referencing the current or a later step;
//!   step results are only available to *later* steps.
//! * **bool-as-number** — `#N` referencing a `greater` step used where a
//!   number is required; `greater` yields a yes/no answer, so the executor
//!   fails with `BoolAsNumber` on every table.
//! * **invalid-table-op-arg** — a table aggregation whose argument is not a
//!   column or cell (hole); constants and step refs make the executor
//!   return `Uninstantiated` unconditionally.
//! * **column-as-scalar** — a column (hole) argument in a scalar step;
//!   `resolve_numeric` rejects whole-column arguments on every table.
//!
//! Requirement rules: the sampler rejects the pair before any RNG draw when
//! the table has fewer addressable numeric cells than the template has
//! distinct cell holes, and a column hole can only bind when at least one
//! schema-`Number` column exists (an empty pool fails the draw on every
//! stream).

use crate::ast::{AeArg, AeOp};
use crate::template::AeTemplate;
use tabular::{SchemaRequirement, TemplateAnalysis, TemplateIssue};

/// Statically analyzes an arithmetic template. See the module docs for the
/// rules.
pub fn analyze(template: &AeTemplate) -> TemplateAnalysis {
    let program = template.program();
    let mut issues = Vec::new();

    if program.steps.is_empty() {
        issues.push(TemplateIssue::new(
            "empty-program",
            "program",
            "program has no steps, so it has no final answer",
        ));
    }

    let mut has_column_hole = false;
    for (si, step) in program.steps.iter().enumerate() {
        let locus = |slot: usize| format!("{}[{slot}]@step{si}", step.op);
        if step.args.len() != step.op.arity() {
            issues.push(TemplateIssue::new(
                "arity-mismatch",
                format!("{}@step{si}", step.op),
                format!(
                    "{} takes {} arguments, step supplies {}",
                    step.op,
                    step.op.arity(),
                    step.args.len()
                ),
            ));
            continue;
        }
        for (slot, arg) in step.args.iter().enumerate() {
            match arg {
                AeArg::StepRef(r) => {
                    if *r >= si {
                        issues.push(TemplateIssue::new(
                            "dangling-step-ref",
                            locus(slot),
                            format!("#{r} must reference an earlier step (this is step {si})"),
                        ));
                    } else if program.steps[*r].op == AeOp::Greater {
                        issues.push(TemplateIssue::new(
                            "bool-as-number",
                            locus(slot),
                            format!(
                                "#{r} is the yes/no result of a greater step; it cannot be \
                                 used as a number"
                            ),
                        ));
                    }
                }
                AeArg::ColumnHole(_) | AeArg::Column(_) if !step.op.is_table_op() => {
                    issues.push(TemplateIssue::new(
                        "column-as-scalar",
                        locus(slot),
                        format!(
                            "{} is a scalar operation; a whole-column argument always fails \
                             to resolve",
                            step.op
                        ),
                    ));
                }
                _ => {}
            }
            if step.op.is_table_op()
                && slot == 0
                && !matches!(
                    arg,
                    AeArg::Column(_)
                        | AeArg::ColumnHole(_)
                        | AeArg::Cell { .. }
                        | AeArg::CellHole(_)
                )
            {
                issues.push(TemplateIssue::new(
                    "invalid-table-op-arg",
                    locus(slot),
                    format!("{} aggregates a column; its argument must name one", step.op),
                ));
            }
            if matches!(arg, AeArg::ColumnHole(_)) {
                has_column_hole = true;
            }
        }
    }

    let requirement = SchemaRequirement {
        min_addressable_cells: template.cell_holes().len(),
        needs_number_column: has_column_hole,
        ..SchemaRequirement::NONE
    };
    if issues.is_empty() {
        let abs = crate::absint::interpret(template);
        TemplateAnalysis {
            issues,
            requirement,
            degeneracies: abs.degeneracies,
            summary: abs.summary,
            survival: abs.survival,
        }
    } else {
        // Malformed templates never reach a bank; the abstract layer stays
        // at its sound default and the cost model writes them off.
        TemplateAnalysis {
            issues,
            requirement,
            degeneracies: Vec::new(),
            summary: tabular::AbsSummary::TOP,
            survival: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AeProgram, AeStep};

    fn parse(text: &str) -> AeTemplate {
        AeTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}"))
    }

    #[test]
    fn well_typed_template_is_clean_with_exact_requirement() {
        let a = analyze(&parse("subtract( val1 , val2 ), divide( #0 , val2 )"));
        assert!(a.is_clean(), "{:?}", a.issues);
        assert_eq!(
            a.requirement,
            SchemaRequirement { min_addressable_cells: 2, ..SchemaRequirement::NONE }
        );
    }

    #[test]
    fn column_hole_requires_a_number_column() {
        let a = analyze(&parse("table_sum( c1 ) , divide( #0 , 3 )"));
        assert!(a.is_clean(), "{:?}", a.issues);
        assert!(a.requirement.needs_number_column);
        assert_eq!(a.requirement.min_addressable_cells, 0);
    }

    #[test]
    fn dangling_step_ref_is_flagged() {
        // The parser rejects forward references, so this can only arrive
        // through from_program.
        let a = analyze(&AeTemplate::from_program(AeProgram {
            steps: vec![AeStep {
                op: AeOp::Add,
                args: vec![AeArg::StepRef(0), AeArg::CellHole(1)],
            }],
        }));
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, "dangling-step-ref");
    }

    #[test]
    fn bool_result_used_as_number_is_flagged() {
        let a = analyze(&parse("greater( val1 , val2 ) , add( #0 , 1 )"));
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, "bool-as-number");
        assert_eq!(a.issues[0].locus, "add[0]@step1");
    }

    #[test]
    fn column_hole_in_scalar_op_is_flagged() {
        let a = analyze(&parse("add( c1 , 1 )"));
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, "column-as-scalar");
    }

    #[test]
    fn invalid_table_op_arg_is_flagged() {
        let a = analyze(&parse("add( 1 , 2 ) , table_sum( #0 )"));
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, "invalid-table-op-arg");
    }

    #[test]
    fn programmatic_defects_are_flagged() {
        let empty = analyze(&AeTemplate::from_program(AeProgram { steps: vec![] }));
        assert_eq!(empty.issues[0].code, "empty-program");

        let bad_arity = analyze(&AeTemplate::from_program(AeProgram {
            steps: vec![AeStep { op: AeOp::Add, args: vec![AeArg::Const(1.0)] }],
        }));
        assert_eq!(bad_arity.issues[0].code, "arity-mismatch");
    }

    #[test]
    fn schema_infeasible_requirement_is_reported_not_flagged() {
        // Three distinct cell holes: fine as a template, needs a table with
        // three addressable numeric cells.
        let a = analyze(&parse("add( val1 , val2 ) , subtract( #0 , val3 )"));
        assert!(a.is_clean());
        assert_eq!(a.requirement.min_addressable_cells, 3);
    }
}
