//! Canonical forms for arithmetic templates (cross-template dedup).
//!
//! Two templates are *equivalent* when every seed instantiates them to the
//! same answer on the same table — the witnessable notion `uctr::analysis`
//! verifies differentially. The canonical form is a rewrite that provably
//! preserves the per-seed draw stream, so equal canonical forms imply
//! equivalence:
//!
//! * `add` / `multiply` operands are sorted under a hole-index-blind
//!   structural order. This is unconditionally safe: cell holes bind
//!   positionally (`CellHole(i)` takes the cell at the index of `i` in the
//!   appearance-ordered hole list), so any operand permutation instantiates
//!   to the *identical* concrete program, and IEEE `+`/`*` are commutative
//!   for the executed value.
//! * Holes are alpha-renamed into first-use order afterwards, making the
//!   form invariant under hole renaming.
//!
//! `subtract` / `divide` / `greater` / `exp` operands are order-sensitive
//! and never reordered. Step references (`#k`) are stable because sorting
//! happens within a step's argument list only — step order is untouched.

use crate::ast::{AeArg, AeOp, AeProgram};
use crate::template::AeTemplate;

/// The canonical signature of a template: the rendered canonical program.
/// Equal canonical forms ⇒ draw-stream-identical instantiation.
pub fn canonical_form(t: &AeTemplate) -> String {
    canonical_program(t.program()).to_string()
}

/// The canonicalized program: commutative operands sorted, holes
/// alpha-renamed in first-use order.
pub fn canonical_program(p: &AeProgram) -> AeProgram {
    let mut p = p.clone();
    for step in &mut p.steps {
        if matches!(step.op, AeOp::Add | AeOp::Multiply) {
            // Stable sort on the hole-index-blind render: ties between two
            // holes keep their original order and the renumbering below
            // makes the result alpha-invariant.
            step.args.sort_by_key(anon_arg);
        }
    }
    renumber(&mut p);
    p
}

/// Render with hole indices blinded, so the sort order cannot depend on
/// the (arbitrary) numbering a template happens to use.
fn anon_arg(a: &AeArg) -> String {
    match a {
        AeArg::CellHole(_) => "val".to_string(),
        AeArg::ColumnHole(_) => "c".to_string(),
        other => other.to_string(),
    }
}

/// Alpha-rename cell holes and column holes (separately) into first-use
/// order, preserving repeated-hole identity.
fn renumber(p: &mut AeProgram) {
    let mut cells: Vec<usize> = Vec::new();
    let mut cols: Vec<usize> = Vec::new();
    for step in &mut p.steps {
        for a in &mut step.args {
            match a {
                AeArg::CellHole(i) => *i = first_use(&mut cells, *i),
                AeArg::ColumnHole(i) => *i = first_use(&mut cols, *i),
                _ => {}
            }
        }
    }
}

fn first_use(seen: &mut Vec<usize>, i: usize) -> usize {
    match seen.iter().position(|&x| x == i) {
        Some(p) => p + 1,
        None => {
            seen.push(i);
            seen.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(text: &str) -> String {
        canonical_form(
            &AeTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}")),
        )
    }

    #[test]
    fn add_and_multiply_operands_commute() {
        assert_eq!(canon("add( val1 , val2 )"), canon("add( val2 , val1 )"));
        assert_eq!(canon("multiply( val1 , 100 )"), canon("multiply( 100 , val1 )"));
        assert_eq!(
            canon("add( val1 , val2 ) , multiply( #0 , 100 )"),
            canon("add( val2 , val1 ) , multiply( 100 , #0 )")
        );
    }

    #[test]
    fn ordered_operands_do_not_commute() {
        // Note `subtract( val1 , val2 )` vs `subtract( val2 , val1 )` IS a
        // merge — fresh holes bind positionally, so those are alpha-equal.
        // Order only matters when the operands are structurally distinct.
        assert_ne!(canon("subtract( val1 , 100 )"), canon("subtract( 100 , val1 )"));
        assert_ne!(canon("divide( val1 , 2 )"), canon("divide( 2 , val1 )"));
        assert_ne!(canon("exp( val1 , 2 )"), canon("exp( 2 , val1 )"));
        assert_ne!(
            canon("subtract( val1 , val2 ) , divide( #0 , val2 )"),
            canon("subtract( val1 , val2 ) , divide( val2 , #0 )")
        );
        // But the same pair under a commutative op does merge.
        assert_eq!(canon("add( val1 , 100 )"), canon("add( 100 , val1 )"));
    }

    #[test]
    fn alpha_renaming_is_quotiented_out() {
        assert_eq!(canon("subtract( val3 , val7 )"), canon("subtract( val1 , val2 )"));
        assert_eq!(canon("table_sum( c4 )"), canon("table_sum( c1 )"));
        // Repeated holes keep their identity through renumbering.
        assert_eq!(
            canon("subtract( val2 , val5 ) , divide( #0 , val5 )"),
            canon("subtract( val1 , val2 ) , divide( #0 , val2 )")
        );
        assert_ne!(
            canon("subtract( val1 , val2 ) , divide( #0 , val2 )"),
            canon("subtract( val1 , val2 ) , divide( #0 , val1 )")
        );
    }

    #[test]
    fn canonical_form_is_idempotent() {
        for text in [
            "add( val2 , val1 ) , divide( #0 , 2 )",
            "table_sum( c1 ) , divide( val1 , #0 )",
            "multiply( 100 , val3 )",
        ] {
            let t = AeTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}"));
            let once = canonical_program(t.program());
            let twice = canonical_program(&once);
            assert_eq!(once, twice, "canonicalizing {text:?} twice must be a fixed point");
        }
    }
}
