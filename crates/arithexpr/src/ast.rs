//! Arithmetic-expression AST (the FinQA DSL of Chen et al. \[6\]).
//!
//! A program is a sequence of steps, each applying one operation; later
//! steps reference earlier results with `#0`, `#1`, ... The paper's example
//! (§IV-B):
//!
//! ```text
//! subtract( the Stockholders' equity of 2019 , the Stockholders' equity of 2018 ),
//! divide( #0 , the Stockholders' equity of 2018 )
//! ```
//!
//! Cell arguments use the `col_name of row_name` convention the paper
//! introduces so programs carry enough information to resolve against a
//! table. Six math operations and four table aggregations are supported.

use std::fmt;

/// An arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AeOp {
    Add,
    Subtract,
    Multiply,
    Divide,
    /// `greater(a, b)` — yields a yes/no answer.
    Greater,
    /// `exp(a, b)` — a raised to the b-th power.
    Exp,
    /// `table_max(col)` — max over a numeric column.
    TableMax,
    TableMin,
    TableSum,
    TableAverage,
}

impl AeOp {
    pub fn name(self) -> &'static str {
        match self {
            AeOp::Add => "add",
            AeOp::Subtract => "subtract",
            AeOp::Multiply => "multiply",
            AeOp::Divide => "divide",
            AeOp::Greater => "greater",
            AeOp::Exp => "exp",
            AeOp::TableMax => "table_max",
            AeOp::TableMin => "table_min",
            AeOp::TableSum => "table_sum",
            AeOp::TableAverage => "table_average",
        }
    }

    pub fn from_name(name: &str) -> Option<AeOp> {
        Some(match name {
            "add" => AeOp::Add,
            "subtract" => AeOp::Subtract,
            "multiply" => AeOp::Multiply,
            "divide" => AeOp::Divide,
            "greater" => AeOp::Greater,
            "exp" => AeOp::Exp,
            "table_max" => AeOp::TableMax,
            "table_min" => AeOp::TableMin,
            "table_sum" => AeOp::TableSum,
            "table_average" => AeOp::TableAverage,
            _ => return None,
        })
    }

    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            AeOp::TableMax | AeOp::TableMin | AeOp::TableSum | AeOp::TableAverage => 1,
            _ => 2,
        }
    }

    /// Whether this is a whole-column aggregation.
    pub fn is_table_op(self) -> bool {
        matches!(self, AeOp::TableMax | AeOp::TableMin | AeOp::TableSum | AeOp::TableAverage)
    }
}

impl fmt::Display for AeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An argument of a step.
#[derive(Debug, Clone, PartialEq)]
pub enum AeArg {
    /// A numeric constant.
    Const(f64),
    /// Reference to an earlier step's result (`#0` is the first step).
    StepRef(usize),
    /// A table cell addressed as `col of row`.
    Cell { col: String, row: String },
    /// A whole column (argument of table ops).
    Column(String),
    /// Template hole for a cell (`val1`).
    CellHole(usize),
    /// Template hole for a column (`c1`).
    ColumnHole(usize),
}

impl fmt::Display for AeArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AeArg::Const(n) => write!(f, "{}", tabular::format_number(*n)),
            AeArg::StepRef(i) => write!(f, "#{i}"),
            AeArg::Cell { col, row } => write!(f, "the {col} of {row}"),
            AeArg::Column(c) => write!(f, "{c}"),
            AeArg::CellHole(i) => write!(f, "val{i}"),
            AeArg::ColumnHole(i) => write!(f, "c{i}"),
        }
    }
}

/// One step of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct AeStep {
    pub op: AeOp,
    pub args: Vec<AeArg>,
}

impl fmt::Display for AeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(|a| a.to_string()).collect();
        write!(f, "{}( {} )", self.op, args.join(" , "))
    }
}

/// A complete arithmetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct AeProgram {
    pub steps: Vec<AeStep>,
}

impl AeProgram {
    /// True if any argument is a template hole.
    pub fn has_holes(&self) -> bool {
        self.steps
            .iter()
            .any(|s| s.args.iter().any(|a| matches!(a, AeArg::CellHole(_) | AeArg::ColumnHole(_))))
    }

    /// The final step's index (programs answer with their last result).
    pub fn final_step(&self) -> Option<usize> {
        self.steps.len().checked_sub(1)
    }

    /// All cell references in order.
    pub fn cells(&self) -> Vec<(&str, &str)> {
        self.steps
            .iter()
            .flat_map(|s| s.args.iter())
            .filter_map(|a| match a {
                AeArg::Cell { col, row } => Some((col.as_str(), row.as_str())),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for AeProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let steps: Vec<String> = self.steps.iter().map(|s| s.to_string()).collect();
        write!(f, "{}", steps.join(" , "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_name_roundtrip() {
        for op in [
            AeOp::Add,
            AeOp::Subtract,
            AeOp::Divide,
            AeOp::Greater,
            AeOp::Exp,
            AeOp::TableSum,
            AeOp::TableAverage,
        ] {
            assert_eq!(AeOp::from_name(op.name()), Some(op));
        }
        assert_eq!(AeOp::from_name("modulo"), None);
    }

    #[test]
    fn arity() {
        assert_eq!(AeOp::Add.arity(), 2);
        assert_eq!(AeOp::TableMax.arity(), 1);
    }

    #[test]
    fn display_paper_example() {
        let p = AeProgram {
            steps: vec![
                AeStep {
                    op: AeOp::Subtract,
                    args: vec![
                        AeArg::Cell { col: "Stockholders' equity".into(), row: "2019".into() },
                        AeArg::Cell { col: "Stockholders' equity".into(), row: "2018".into() },
                    ],
                },
                AeStep {
                    op: AeOp::Divide,
                    args: vec![
                        AeArg::StepRef(0),
                        AeArg::Cell { col: "Stockholders' equity".into(), row: "2018".into() },
                    ],
                },
            ],
        };
        assert_eq!(
            p.to_string(),
            "subtract( the Stockholders' equity of 2019 , the Stockholders' equity of 2018 ) , divide( #0 , the Stockholders' equity of 2018 )"
        );
        assert_eq!(p.cells().len(), 3);
    }

    #[test]
    fn has_holes() {
        let p = AeProgram {
            steps: vec![AeStep {
                op: AeOp::Subtract,
                args: vec![AeArg::CellHole(1), AeArg::CellHole(2)],
            }],
        };
        assert!(p.has_holes());
    }
}
