//! Arithmetic-expression templates: abstraction and sampling.
//!
//! FinQA templates address cells through `valN` holes (the paper replaces
//! `vali` with `col_name of row_name` at instantiation time, §IV-B). A hole
//! appearing multiple times (as `val2` does in the paper's percentage-change
//! template) binds once, so the instantiated program keeps the original
//! internal relationships.

use crate::ast::{AeArg, AeProgram, AeStep};
use crate::exec::{row_name_column, AeOutcome};
use crate::parser::{parse, AeParseError};
use rand::seq::SliceRandom;
use rand::Rng;
use rustc_hash::FxHashMap;
use tabular::{ColumnType, ExecContext, Table, Value};

/// Why instantiation failed — the structured discard reasons the pipeline
/// telemetry aggregates (instead of an opaque `None`). For the retrying
/// entry point the reported reason is the one from the *last* attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AeInstantiateError {
    /// The table has fewer addressable numeric cells than the template has
    /// distinct holes.
    NotEnoughNumericCells,
    /// No numeric column available for a column hole, or a dangling
    /// reference during substitution.
    MalformedTemplate,
    /// The instantiated program failed to execute (e.g. divide-by-zero).
    ExecutionFailed,
}

impl std::fmt::Display for AeInstantiateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeInstantiateError::NotEnoughNumericCells => write!(f, "not enough numeric cells"),
            AeInstantiateError::MalformedTemplate => write!(f, "malformed template"),
            AeInstantiateError::ExecutionFailed => write!(f, "execution failed"),
        }
    }
}

impl std::error::Error for AeInstantiateError {}

/// A reusable arithmetic-expression template.
#[derive(Debug, Clone, PartialEq)]
pub struct AeTemplate {
    program: AeProgram,
}

/// An instantiated program together with its executed answer.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantiatedArith {
    pub program: AeProgram,
    pub outcome: AeOutcome,
}

/// Reusable sampling buffers for [`AeTemplate::try_instantiate_in_with`].
///
/// Instantiation retries up to 8 times per call and each attempt needs the
/// hole list, the shuffled addressable-cell pool, the same-row/same-column
/// filtered views and the hole→cell binding map. Holding them here lets the
/// hot generation loop reuse the allocations across attempts, templates and
/// samples. A default-constructed scratch is always valid; the buffers are
/// cleared on entry, never read.
#[derive(Debug, Clone, Default)]
pub struct AeScratch {
    holes: Vec<usize>,
    cells: Vec<(usize, usize)>,
    same_row: Vec<(usize, usize)>,
    same_col: Vec<(usize, usize)>,
    results: Vec<crate::exec::AeAnswer>,
    /// Kernel buffers shared with the executor (numeric gathers, highlight
    /// accumulation) so per-attempt execution stops allocating.
    pub kern: tabular::KernelScratch,
}

impl AeTemplate {
    /// Parses template text such as `subtract( val1 , val2 ), divide( #0 , val2 )`.
    pub fn parse(text: &str) -> Result<AeTemplate, AeParseError> {
        Ok(AeTemplate { program: parse(text)? })
    }

    pub fn from_program(program: AeProgram) -> AeTemplate {
        AeTemplate { program }
    }

    pub fn program(&self) -> &AeProgram {
        &self.program
    }

    /// Normalized signature for deduplication.
    pub fn signature(&self) -> String {
        self.program.to_string()
    }

    /// Distinct cell-hole indexes in first-appearance order.
    pub fn cell_holes(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.cell_holes_into(&mut out);
        out
    }

    /// Allocation-reusing core of [`AeTemplate::cell_holes`]: clears `out`
    /// and refills it in the same order.
    fn cell_holes_into(&self, out: &mut Vec<usize>) {
        out.clear();
        for s in &self.program.steps {
            for a in &s.args {
                if let AeArg::CellHole(i) = a {
                    if !out.contains(i) {
                        out.push(*i);
                    }
                }
            }
        }
    }

    /// Instantiates on `table`: distinct holes get distinct numeric cells,
    /// repeated holes share a binding, column holes get numeric columns.
    /// Returns the program and its executed answer, or `None` when the table
    /// cannot support it (or execution degenerates, e.g. divide-by-zero).
    pub fn instantiate(&self, table: &Table, rng: &mut impl Rng) -> Option<InstantiatedArith> {
        self.try_instantiate(table, rng).ok()
    }

    /// Like [`AeTemplate::instantiate`], but reports the failure reason of
    /// the last sampling attempt.
    pub fn try_instantiate(
        &self,
        table: &Table,
        rng: &mut impl Rng,
    ) -> Result<InstantiatedArith, AeInstantiateError> {
        self.try_instantiate_impl(table, None, rng, &mut AeScratch::default())
    }

    /// [`AeTemplate::try_instantiate`] using a prebuilt [`ExecContext`]: the
    /// addressable-cell and numeric-column scans come from the context, as
    /// does the execution of the instantiated program. Draw-for-draw
    /// identical to the context-free path.
    pub fn try_instantiate_in(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut impl Rng,
    ) -> Result<InstantiatedArith, AeInstantiateError> {
        self.try_instantiate_impl(table, Some(ctx), rng, &mut AeScratch::default())
    }

    /// [`AeTemplate::try_instantiate_in`] reusing caller-owned sampling
    /// buffers. Draw-for-draw identical to the other entry points.
    pub fn try_instantiate_in_with(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut impl Rng,
        scratch: &mut AeScratch,
    ) -> Result<InstantiatedArith, AeInstantiateError> {
        self.try_instantiate_impl(table, Some(ctx), rng, scratch)
    }

    fn try_instantiate_impl(
        &self,
        table: &Table,
        ctx: Option<&ExecContext>,
        rng: &mut impl Rng,
        scratch: &mut AeScratch,
    ) -> Result<InstantiatedArith, AeInstantiateError> {
        let mut last = AeInstantiateError::NotEnoughNumericCells;
        for _ in 0..8 {
            match self.attempt_instantiate(table, ctx, rng, scratch) {
                Ok(done) => return Ok(done),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn attempt_instantiate(
        &self,
        table: &Table,
        ctx: Option<&ExecContext>,
        rng: &mut impl Rng,
        scratch: &mut AeScratch,
    ) -> Result<InstantiatedArith, AeInstantiateError> {
        let AeScratch { holes, cells, same_row, same_col, results, kern } = scratch;
        let name_col = match ctx {
            Some(ctx) => ctx.row_name_column(),
            None => row_name_column(table),
        };
        // Numeric cells addressable as (col of row): need a non-null row name.
        cells.clear();
        match ctx {
            Some(ctx) => cells.extend_from_slice(ctx.addressable_cells()),
            None => {
                for ri in 0..table.n_rows() {
                    let has_name = table.cell(ri, name_col).is_some_and(|v| !v.is_null());
                    if !has_name {
                        continue;
                    }
                    for ci in 0..table.n_cols() {
                        if ci == name_col {
                            continue;
                        }
                        if table.cell(ri, ci).and_then(Value::as_number).is_some() {
                            cells.push((ri, ci));
                        }
                    }
                }
            }
        };
        self.cell_holes_into(holes);
        if cells.len() < holes.len() {
            return Err(AeInstantiateError::NotEnoughNumericCells);
        }
        cells.shuffle(rng);
        // Real FinQA programs relate cells that share a line item (same row,
        // different periods) or a period (same column, different items);
        // prefer such structured tuples when the table allows it.
        if holes.len() > 1 {
            let (r0, c0) = cells[0];
            same_row.clear();
            same_row.extend(cells.iter().copied().filter(|&(r, _)| r == r0));
            same_col.clear();
            same_col.extend(cells.iter().copied().filter(|&(_, c)| c == c0));
            let preferred: &[(usize, usize)] = if rng.gen_bool(0.5) { same_row } else { same_col };
            let fallback: &[(usize, usize)] = if preferred.len() >= holes.len() {
                preferred
            } else if same_row.len() >= holes.len() {
                same_row
            } else {
                same_col
            };
            if fallback.len() >= holes.len() {
                cells.clear();
                cells.extend_from_slice(fallback);
            }
        }
        // Hole `holes[k]` is bound to `cells[k]`; the owned `Cell` strings
        // are rendered once per use site below (they end up owned by the
        // instantiated program either way — binding them here as strings
        // would only add a map of clones that is dropped on return).
        let owned_numeric_cols;
        let numeric_cols: &[usize] = match ctx {
            Some(ctx) => ctx.numeric_columns(),
            None => {
                owned_numeric_cols = table.schema().columns_of_type(ColumnType::Number);
                &owned_numeric_cols
            }
        };
        let steps = self
            .program
            .steps
            .iter()
            .map(|s| {
                let args = s
                    .args
                    .iter()
                    .map(|a| match a {
                        AeArg::CellHole(i) => {
                            let k = holes
                                .iter()
                                .position(|h| h == i)
                                .ok_or(AeInstantiateError::MalformedTemplate)?;
                            let (ri, ci) = cells[k];
                            let col = table
                                .column_name(ci)
                                .ok_or(AeInstantiateError::MalformedTemplate)?
                                .to_string();
                            let row = table
                                .cell(ri, name_col)
                                .ok_or(AeInstantiateError::MalformedTemplate)?
                                .to_string();
                            Ok(AeArg::Cell { col, row })
                        }
                        AeArg::ColumnHole(_) => {
                            let ci = numeric_cols
                                .choose(rng)
                                .ok_or(AeInstantiateError::NotEnoughNumericCells)?;
                            let name = table
                                .column_name(*ci)
                                .ok_or(AeInstantiateError::MalformedTemplate)?;
                            Ok(AeArg::Column(name.to_string()))
                        }
                        other => Ok(other.clone()),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(AeStep { op: s.op, args })
            })
            .collect::<Result<Vec<_>, AeInstantiateError>>()?;
        let program = AeProgram { steps };
        let outcome = crate::exec::execute_impl(&program, table, ctx, kern, results)
            .map_err(|_| AeInstantiateError::ExecutionFailed)?;
        Ok(InstantiatedArith { program, outcome })
    }
}

/// Abstracts a concrete program into a template: cell references become
/// `valN` (identical references share a hole) and column arguments become
/// `cN`. Constants stay concrete (they encode the question's semantics,
/// e.g. `divide( #0 , 100 )` for percentages).
pub fn abstract_program(program: &AeProgram) -> AeTemplate {
    let mut cell_map: FxHashMap<(String, String), usize> = FxHashMap::default();
    let mut col_map: FxHashMap<String, usize> = FxHashMap::default();
    let mut next_val = 1usize;
    let mut next_col = 1usize;
    let steps = program
        .steps
        .iter()
        .map(|s| AeStep {
            op: s.op,
            args: s
                .args
                .iter()
                .map(|a| match a {
                    AeArg::Cell { col, row } => {
                        let key = (col.to_ascii_lowercase(), row.to_ascii_lowercase());
                        let idx = *cell_map.entry(key).or_insert_with(|| {
                            let i = next_val;
                            next_val += 1;
                            i
                        });
                        AeArg::CellHole(idx)
                    }
                    AeArg::Column(c) => {
                        let idx = *col_map.entry(c.to_ascii_lowercase()).or_insert_with(|| {
                            let i = next_col;
                            next_col += 1;
                            i
                        });
                        AeArg::ColumnHole(idx)
                    }
                    other => other.clone(),
                })
                .collect(),
        })
        .collect();
    AeTemplate { program: AeProgram { steps } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::AeAnswer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn financials() -> Table {
        Table::from_strings(
            "Balance sheet",
            &[
                vec!["item", "2019", "2018"],
                vec!["Equity", "3200", "4000"],
                vec!["Revenue", "8800", "8000"],
                vec!["Costs", "6100", "5900"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    #[test]
    fn instantiate_paper_template() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = AeTemplate::parse("subtract( val1 , val2 ), divide( #0 , val2 )")?;
        let mut rng = StdRng::seed_from_u64(42);
        let inst = tpl.instantiate(&financials(), &mut rng).ok_or("instantiate returned None")?;
        assert!(!inst.program.has_holes());
        assert!(matches!(inst.outcome.answer, AeAnswer::Number(_)));
        // val2 appears twice: both occurrences must be the same cell.
        let cells = inst.program.cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1], cells[2]);
        Ok(())
    }

    #[test]
    fn instantiate_distinct_holes_get_distinct_cells() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = AeTemplate::parse("subtract( val1 , val2 )")?;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let inst =
                tpl.instantiate(&financials(), &mut rng).ok_or("instantiate returned None")?;
            let cells = inst.program.cells();
            assert_ne!(cells[0], cells[1]);
        }
        Ok(())
    }

    #[test]
    fn instantiate_table_op_template() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = AeTemplate::parse("table_sum( c1 ) , divide( #0 , 3 )")?;
        let mut rng = StdRng::seed_from_u64(5);
        let inst = tpl.instantiate(&financials(), &mut rng).ok_or("instantiate returned None")?;
        let n = inst.outcome.answer.as_number().ok_or("non-numeric answer")?;
        // one of sum(2019)/3, sum(2018)/3
        assert!((n - 18100.0 / 3.0).abs() < 1e-9 || (n - 17900.0 / 3.0).abs() < 1e-9);
        Ok(())
    }

    #[test]
    fn instantiate_fails_on_text_only_table() -> Result<(), Box<dyn std::error::Error>> {
        let t = Table::from_strings("t", &[vec!["a", "b"], vec!["x", "y"]])?;
        let tpl = AeTemplate::parse("add( val1 , val2 )")?;
        let mut rng = StdRng::seed_from_u64(1);
        assert!(tpl.instantiate(&t, &mut rng).is_none());
        assert_eq!(
            tpl.try_instantiate(&t, &mut rng),
            Err(AeInstantiateError::NotEnoughNumericCells)
        );
        Ok(())
    }

    #[test]
    fn abstraction_shares_holes_for_repeated_cells() -> Result<(), Box<dyn std::error::Error>> {
        let p = parse(
            "subtract( the 2019 of Equity , the 2018 of Equity ), divide( #0 , the 2018 of Equity )",
        )
        ?;
        let tpl = abstract_program(&p);
        assert_eq!(tpl.signature(), "subtract( val1 , val2 ) , divide( #0 , val2 )");
        Ok(())
    }

    #[test]
    fn abstraction_keeps_constants() -> Result<(), Box<dyn std::error::Error>> {
        let p = parse("subtract( the 2019 of Equity , the 2018 of Equity ), divide( #0 , 100 )")?;
        let tpl = abstract_program(&p);
        assert!(tpl.signature().ends_with("divide( #0 , 100 )"));
        Ok(())
    }

    #[test]
    fn abstract_then_instantiate_roundtrip() -> Result<(), Box<dyn std::error::Error>> {
        let p = parse("greater( the 2019 of Revenue , the 2018 of Revenue )")?;
        let tpl = abstract_program(&p);
        let mut rng = StdRng::seed_from_u64(3);
        let inst = tpl.instantiate(&financials(), &mut rng).ok_or("instantiate returned None")?;
        assert!(matches!(inst.outcome.answer, AeAnswer::YesNo(_)));
        Ok(())
    }

    #[test]
    fn cell_holes_order() -> Result<(), Box<dyn std::error::Error>> {
        let tpl = AeTemplate::parse("subtract( val2 , val1 ), add( #0 , val1 )")?;
        assert_eq!(tpl.cell_holes(), vec![2, 1]);
        Ok(())
    }
}
