//! Parser for the FinQA arithmetic-expression surface syntax.
//!
//! Programs are comma-separated steps `op( arg , arg )`. Distinguishing the
//! step-separating commas from argument-separating commas only requires
//! tracking parenthesis depth. Arguments:
//!
//! * `#N` — earlier step reference;
//! * `val3` / `c2` — template holes;
//! * a number — constant;
//! * `the <col> of <row>` (or `<col> of <row>`) — cell reference;
//! * anything else — a column name (table-op argument).

use crate::ast::{AeArg, AeOp, AeProgram, AeStep};
use std::fmt;

/// Parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AeParseError {
    pub message: String,
}

impl fmt::Display for AeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arithmetic expression parse error: {}", self.message)
    }
}

impl std::error::Error for AeParseError {}

fn err(message: impl Into<String>) -> AeParseError {
    AeParseError { message: message.into() }
}

/// Parses a program like `subtract( val1 , val2 ) , divide( #0 , val2 )`.
pub fn parse(input: &str) -> Result<AeProgram, AeParseError> {
    let step_texts = split_top_level(input);
    if step_texts.is_empty() {
        return Err(err("empty program"));
    }
    let mut steps = Vec::with_capacity(step_texts.len());
    for (i, text) in step_texts.iter().enumerate() {
        let step = parse_step(text)?;
        // Step refs must point backwards.
        for a in &step.args {
            if let AeArg::StepRef(r) = a {
                if *r >= i {
                    return Err(err(format!("step {i} references #{r} which is not yet computed")));
                }
            }
        }
        steps.push(step);
    }
    Ok(AeProgram { steps })
}

/// Splits on commas at parenthesis depth zero.
fn split_top_level(input: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in input.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts.into_iter().map(|p| p.trim().to_string()).filter(|p| !p.is_empty()).collect()
}

fn parse_step(text: &str) -> Result<AeStep, AeParseError> {
    let open = text.find('(').ok_or_else(|| err(format!("missing '(' in step `{text}`")))?;
    if !text.trim_end().ends_with(')') {
        return Err(err(format!("missing ')' in step `{text}`")));
    }
    let name = text[..open].trim();
    let op = AeOp::from_name(name).ok_or_else(|| err(format!("unknown operation `{name}`")))?;
    let close = text.rfind(')').ok_or_else(|| err(format!("missing ')' in step `{text}`")))?;
    let inner = &text[open + 1..close];
    let arg_texts = split_top_level(inner);
    if arg_texts.len() != op.arity() {
        return Err(err(format!(
            "`{name}` expects {} arguments, got {}",
            op.arity(),
            arg_texts.len()
        )));
    }
    let args = arg_texts.iter().map(|a| parse_arg(a, op)).collect::<Result<Vec<_>, _>>()?;
    Ok(AeStep { op, args })
}

fn parse_arg(text: &str, op: AeOp) -> Result<AeArg, AeParseError> {
    let t = text.trim();
    if t.is_empty() {
        return Err(err("empty argument"));
    }
    if let Some(digits) = t.strip_prefix('#') {
        let i: usize = digits.parse().map_err(|_| err(format!("bad step reference `{t}`")))?;
        return Ok(AeArg::StepRef(i));
    }
    if let Some(idx) = strip_indexed(t, "val") {
        return Ok(AeArg::CellHole(idx));
    }
    if let Some(idx) = strip_indexed(t, "c") {
        return Ok(AeArg::ColumnHole(idx));
    }
    // Table ops take a column argument, so a bare token (even one that
    // looks numeric, like a year header "2019") is a column name there.
    if op.is_table_op() {
        return Ok(AeArg::Column(t.to_string()));
    }
    // Numeric constant? (allow %, $, commas via Value::parse)
    if let tabular::Value::Number(n) = tabular::Value::parse(t) {
        return Ok(AeArg::Const(n));
    }
    // `the X of Y` cell reference: split on the LAST " of " so column names
    // containing "of" still work when the row name does not.
    let stripped = t.strip_prefix("the ").unwrap_or(t);
    if let Some(pos) = stripped.rfind(" of ") {
        let col = stripped[..pos].trim();
        let row = stripped[pos + 4..].trim();
        if !col.is_empty() && !row.is_empty() {
            return Ok(AeArg::Cell { col: col.to_string(), row: row.to_string() });
        }
    }
    if op.is_table_op() {
        return Ok(AeArg::Column(t.to_string()));
    }
    Err(err(format!("cannot interpret argument `{t}`")))
}

fn strip_indexed(t: &str, prefix: &str) -> Option<usize> {
    let rest = t.strip_prefix(prefix)?;
    if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
        rest.parse().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_template() -> Result<(), Box<dyn std::error::Error>> {
        let p = parse("subtract( val1 , val2 ), divide( #0 , val2 )")?;
        assert_eq!(p.steps.len(), 2);
        assert!(p.has_holes());
        assert_eq!(p.steps[1].args[0], AeArg::StepRef(0));
        Ok(())
    }

    #[test]
    fn parse_cell_references() -> Result<(), Box<dyn std::error::Error>> {
        let p = parse(
            "subtract( the Stockholders' equity of 2019 , the Stockholders' equity of 2018 )",
        )?;
        assert_eq!(
            p.steps[0].args[0],
            AeArg::Cell { col: "Stockholders' equity".into(), row: "2019".into() }
        );
        Ok(())
    }

    #[test]
    fn parse_cell_reference_without_the() -> Result<(), Box<dyn std::error::Error>> {
        let p = parse("add( revenue of 2020 , revenue of 2021 )")?;
        assert_eq!(p.cells().len(), 2);
        Ok(())
    }

    #[test]
    fn cell_reference_with_of_in_column() -> Result<(), Box<dyn std::error::Error>> {
        let p = parse("add( the cost of goods of 2020 , 5 )")?;
        assert_eq!(
            p.steps[0].args[0],
            AeArg::Cell { col: "cost of goods".into(), row: "2020".into() }
        );
        Ok(())
    }

    #[test]
    fn parse_table_ops() -> Result<(), Box<dyn std::error::Error>> {
        let p = parse("table_sum( revenue )")?;
        assert_eq!(p.steps[0].args[0], AeArg::Column("revenue".into()));
        let p = parse("table_average( c1 )")?;
        assert_eq!(p.steps[0].args[0], AeArg::ColumnHole(1));
        Ok(())
    }

    #[test]
    fn parse_constants() -> Result<(), Box<dyn std::error::Error>> {
        let p = parse("divide( #0 , 100 )").unwrap_err();
        // #0 in the first step is a forward reference -> error
        assert!(p.message.contains("not yet computed"));
        let p = parse("add( 3.5 , -2 )")?;
        assert_eq!(p.steps[0].args, vec![AeArg::Const(3.5), AeArg::Const(-2.0)]);
        Ok(())
    }

    #[test]
    fn roundtrip_display_parse() -> Result<(), Box<dyn std::error::Error>> {
        let programs = [
            "subtract( val1 , val2 ) , divide( #0 , val2 )",
            "table_sum( c1 ) , divide( #0 , 4 )",
            "greater( the revenue of 2020 , the revenue of 2019 )",
            "exp( 2 , 10 )",
        ];
        for text in programs {
            let p = parse(text)?;
            let rendered = p.to_string();
            let reparsed = parse(&rendered)?;
            assert_eq!(p, reparsed, "roundtrip failed for `{text}`");
        }
        Ok(())
    }

    #[test]
    fn arity_errors() {
        assert!(parse("add( 1 )").is_err());
        assert!(parse("table_max( a , b )").is_err());
    }

    #[test]
    fn unknown_op_error() {
        assert!(parse("modulo( 1 , 2 )").is_err());
    }

    #[test]
    fn malformed_step_errors() {
        assert!(parse("add 1 , 2").is_err());
        assert!(parse("add( 1 , 2").is_err());
        assert!(parse("").is_err());
    }
}
