//! # arithexpr — the FinQA arithmetic-expression DSL for UCTR
//!
//! Parser, executor and template machinery for the arithmetic programs UCTR
//! uses on numeracy-heavy QA tasks (paper §II-C): six math operations
//! (`add`, `subtract`, `multiply`, `divide`, `greater`, `exp`) and four
//! table aggregations (`table_max`, `table_min`, `table_sum`,
//! `table_average`), with `#N` step references and `col of row` cell
//! addressing.
//!
//! ```
//! use tabular::Table;
//! use arithexpr::run_arith;
//!
//! let t = Table::from_strings("b", &[
//!     vec!["item", "2019", "2018"],
//!     vec!["Equity", "3200", "4000"],
//! ]).unwrap();
//! let out = run_arith(
//!     "subtract( the 2019 of Equity , the 2018 of Equity ), divide( #0 , the 2018 of Equity )",
//!     &t,
//! ).unwrap();
//! assert_eq!(out.answer.to_string(), "-0.2");
//! ```

pub mod absint;
pub mod analysis;
pub mod ast;
pub mod canon;
pub mod exec;
pub mod parser;
pub mod template;

pub use ast::{AeArg, AeOp, AeProgram, AeStep};
pub use canon::{canonical_form, canonical_program};
pub use exec::{
    execute, execute_in, execute_in_with, resolve_cell, row_name_column, run_arith, AeAnswer,
    AeError, AeOutcome,
};
pub use parser::{parse, AeParseError};
pub use template::{
    abstract_program, AeInstantiateError, AeScratch, AeTemplate, InstantiatedArith,
};
