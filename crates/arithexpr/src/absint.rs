//! Abstract interpretation of arithmetic templates over the interval
//! domain.
//!
//! [`interpret`] evaluates a template's step list once over
//! `tabular::absdom`, joining across *all* hole assignments: a cell hole
//! denotes "any finite cell number" ([`Interval::FINITE`]), a column
//! aggregation "any aggregate of finite cells", so each step's abstract
//! value encloses every value the concrete executor (`crate::exec`) can
//! produce for it on any table. On top of the plain transfer functions the
//! pass applies one *relational* refinement the interval product domain
//! cannot see: syntactically identical arguments denote the **same**
//! concrete value (`AeArg` equality — a repeated `valN` binds to one cell,
//! a repeated `#N` to one step result), so `subtract(e, e)` is exactly `0`,
//! `divide(e, e)` is exactly `1` (finite-bounded `e`; a zero value errors
//! rather than escaping the point), and `greater(e, e)` is always *no*.
//!
//! From the final step the pass derives the degeneracy convictions:
//!
//! * **A001** — the program's answer is a compile-time constant (point
//!   interval or constant yes/no), or the program errors on every table
//!   (empty interval): every generated sample would teach the model a
//!   tautology.
//! * **A002** — a dead comparison: a non-final `greater` step whose
//!   outcome the intervals already decide.
//!
//! It also estimates funnel survival (the static discard-cost model): a
//! per-construct product reflecting which executor error paths
//! (`DivisionByZero`, non-finite `exp`, `EmptyColumn`) each operator risks,
//! calibrated against `PipelineReport` counters in the workspace
//! calibration test.

use crate::ast::{AeArg, AeOp, AeProgram};
use crate::template::AeTemplate;
use tabular::absdom::{AbsSummary, Card, Interval, Kleene};
use tabular::TemplateIssue;

/// The abstract layer [`crate::analysis::analyze`] merges into its
/// `TemplateAnalysis`.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsResult {
    pub summary: AbsSummary,
    pub degeneracies: Vec<TemplateIssue>,
    pub survival: f64,
}

/// Per-step abstract value: a numeric interval for math/table steps, a
/// Kleene truth for `greater` steps (numeric component empty — the
/// executor rejects bool-as-number refs).
#[derive(Debug, Clone, Copy)]
struct StepAbs {
    num: Interval,
    truth: Kleene,
}

/// The abstract numeric value of one argument. `None` when the argument is
/// malformed for this position (callers bail out to the sound default).
fn arg_interval(arg: &AeArg, steps: &[StepAbs], si: usize) -> Option<Interval> {
    match arg {
        AeArg::Const(x) => Some(Interval::point(*x)),
        // Cell values pass Value::parse's is_finite filter.
        AeArg::Cell { .. } | AeArg::CellHole(_) => Some(Interval::FINITE),
        AeArg::StepRef(r) if *r < si => {
            let s = &steps[*r];
            // A truth-valued step used as a number is a typechecker issue;
            // its numeric component is already EMPTY.
            Some(s.num)
        }
        _ => None,
    }
}

/// Whether two arguments provably denote the same concrete value on every
/// instantiation: syntactic identity is enough because a repeated cell
/// hole index binds to one sampled cell, a repeated `#N` to one step
/// result, and constants/addressed cells are fixed.
fn same_value(a: &AeArg, b: &AeArg) -> bool {
    a == b
        && matches!(
            a,
            AeArg::Const(_) | AeArg::Cell { .. } | AeArg::CellHole(_) | AeArg::StepRef(_)
        )
}

fn scalar_step(op: AeOp, a: Interval, b: Interval, identical: bool) -> StepAbs {
    let never = StepAbs { num: Interval::EMPTY, truth: Kleene::Never };
    if a.is_empty() || b.is_empty() {
        return never;
    }
    // Identical-argument refinements. They need finite bounds (a step
    // result can be ±inf, where inf - inf and inf / inf are NaN); the
    // comparison refinement is exempt because `x > x` is false even for
    // NaN operands under IEEE ordering.
    let finite = a.lo.is_finite() && a.hi.is_finite();
    let num = match op {
        AeOp::Add => a.add(b),
        AeOp::Subtract if identical && finite => Interval::point(0.0),
        AeOp::Subtract => a.sub(b),
        AeOp::Multiply => a.mul(b),
        // x / x is exactly 1.0 for finite nonzero x; x == 0 errors, which
        // produces no value and so stays inside the point abstraction.
        AeOp::Divide if identical && finite => Interval::point(1.0),
        AeOp::Divide => a.div(b),
        AeOp::Exp => a.exp(b),
        AeOp::Greater => Interval::EMPTY,
        _ => Interval::TOP,
    };
    let truth = if op == AeOp::Greater {
        // Plain IEEE `a > b`. The always-yes bound needs both sides
        // NaN-free, which the interval shape encodes: a TOP operand has
        // lo = -inf / hi = +inf and can never witness `lo > hi`.
        if identical || a.hi <= b.lo {
            Kleene::False
        } else if a.lo > b.hi {
            Kleene::True
        } else {
            Kleene::Unknown
        }
    } else {
        Kleene::Never
    };
    StepAbs { num, truth }
}

fn table_step(op: AeOp, arg: &AeArg) -> StepAbs {
    let ok = matches!(
        arg,
        AeArg::Column(_) | AeArg::ColumnHole(_) | AeArg::Cell { .. } | AeArg::CellHole(_)
    );
    if !ok {
        // invalid-table-op-arg: Uninstantiated on every table.
        return StepAbs { num: Interval::EMPTY, truth: Kleene::Never };
    }
    let num = match op {
        // Max/min of a non-empty set of finite cells stays finite; sums
        // (and hence averages) of many finite values can overflow.
        AeOp::TableMax | AeOp::TableMin => Interval::FINITE,
        _ => Interval::TOP,
    };
    StepAbs { num, truth: Kleene::Never }
}

/// Funnel-survival factor of one step: which executor error paths it
/// risks. Constants are fitted against `PipelineReport` acceptance
/// counters (see the workspace calibration test); the model only has to
/// *rank* templates and land within a loose band of the measured per-kind
/// rate.
fn step_survival(op: AeOp) -> f64 {
    match op {
        // b == 0.0 aborts the instantiation attempt.
        AeOp::Divide => 0.93,
        // powf overflows to non-finite easily with cell-sized operands.
        AeOp::Exp => 0.80,
        // EmptyColumn on all-null / non-numeric columns.
        op if op.is_table_op() => 0.95,
        _ => 1.0,
    }
}

/// Abstractly interprets a (well-formed) template. See the module docs.
pub fn interpret(template: &AeTemplate) -> AbsResult {
    let program = template.program();
    let mut steps: Vec<StepAbs> = Vec::with_capacity(program.steps.len());
    let mut degeneracies = Vec::new();
    let mut survival = survival_base(program);

    for (si, step) in program.steps.iter().enumerate() {
        let abs = if step.op.is_table_op() {
            match step.args.first() {
                Some(arg) if step.args.len() == 1 => table_step(step.op, arg),
                _ => StepAbs { num: Interval::EMPTY, truth: Kleene::Never },
            }
        } else {
            match step.args.as_slice() {
                [a, b] => {
                    let (ia, ib) = match (arg_interval(a, &steps, si), arg_interval(b, &steps, si))
                    {
                        (Some(ia), Some(ib)) => (ia, ib),
                        // Malformed argument (column-as-scalar, dangling
                        // ref): the typechecker owns the report; the value
                        // is unreachable.
                        _ => (Interval::EMPTY, Interval::EMPTY),
                    };
                    scalar_step(step.op, ia, ib, same_value(a, b))
                }
                _ => StepAbs { num: Interval::EMPTY, truth: Kleene::Never },
            }
        };
        survival *= step_survival(step.op);
        if step.op == AeOp::Greater && abs.truth.is_constant() && si + 1 < program.steps.len() {
            degeneracies.push(TemplateIssue::new(
                "A002",
                format!("{}@step{si}", step.op),
                format!(
                    "comparison is decided statically (always {}); the branch is dead",
                    if abs.truth == Kleene::True { "yes" } else { "no" }
                ),
            ));
        }
        steps.push(abs);
    }

    let last =
        steps.last().copied().unwrap_or(StepAbs { num: Interval::EMPTY, truth: Kleene::Never });
    let is_bool = program.steps.last().map(|s| s.op == AeOp::Greater).unwrap_or(false);
    let final_locus = format!("final@step{}", steps.len().saturating_sub(1));
    if is_bool {
        if last.truth.is_constant() {
            degeneracies.push(TemplateIssue::new(
                "A001",
                final_locus.clone(),
                format!("program's yes/no answer is constant (always {})", last.truth),
            ));
        } else if last.truth == Kleene::Never {
            degeneracies.push(TemplateIssue::new(
                "A001",
                final_locus.clone(),
                "program errors on every table; it can never yield an answer".to_string(),
            ));
            survival = 0.0;
        }
    } else if !program.steps.is_empty() {
        if last.num.is_point() {
            degeneracies.push(TemplateIssue::new(
                "A001",
                final_locus.clone(),
                format!("program's numeric answer is the constant {}", last.num.lo),
            ));
        } else if last.num.is_empty() {
            degeneracies.push(TemplateIssue::new(
                "A001",
                final_locus.clone(),
                "program errors on every table; it can never yield an answer".to_string(),
            ));
            survival = 0.0;
        }
    }

    let summary = AbsSummary {
        value: last.num,
        truth: last.truth,
        // Arithmetic programs never emit row sets.
        rows: Card::NEVER,
    };
    AbsResult { summary, degeneracies, survival: survival.clamp(0.0, 1.0) }
}

/// Kind-level base survival: instantiation retries sampling 8 times but
/// must still find enough addressable numeric cells, and cell-heavy
/// templates fail on small tables more often.
fn survival_base(program: &AeProgram) -> f64 {
    let holes = program
        .steps
        .iter()
        .flat_map(|s| s.args.iter())
        .filter_map(|a| match a {
            AeArg::CellHole(i) => Some(*i),
            _ => None,
        })
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    0.9 * 0.97f64.powi(holes as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> AeTemplate {
        AeTemplate::parse(text).unwrap_or_else(|e| panic!("template {text:?}: {e}"))
    }

    fn run(text: &str) -> AbsResult {
        interpret(&parse(text))
    }

    #[test]
    fn healthy_templates_have_no_convictions() {
        for t in [
            "subtract( val1 , val2 ), divide( #0 , val2 )",
            "table_sum( c1 ) , divide( #0 , 3 )",
            "greater( val1 , val2 )",
            "add( val1 , val2 )",
        ] {
            let r = run(t);
            assert!(r.degeneracies.is_empty(), "{t}: {:?}", r.degeneracies);
            assert!(r.survival > 0.0 && r.survival <= 1.0, "{t}: {}", r.survival);
        }
    }

    #[test]
    fn identical_args_fold_to_constants() {
        let sub = run("subtract( val1 , val1 )");
        assert_eq!(sub.summary.value, Interval::point(0.0));
        assert_eq!(sub.degeneracies.len(), 1);
        assert_eq!(sub.degeneracies[0].code, "A001");

        let div = run("divide( val1 , val1 )");
        assert_eq!(div.summary.value, Interval::point(1.0));
        assert_eq!(div.degeneracies[0].code, "A001");

        let gt = run("greater( val1 , val1 )");
        assert_eq!(gt.summary.truth, Kleene::False);
        assert_eq!(gt.degeneracies[0].code, "A001");
    }

    #[test]
    fn distinct_holes_are_not_identical() {
        // val1 and val2 are different cells; nothing constant here.
        assert!(run("subtract( val1 , val2 )").degeneracies.is_empty());
    }

    #[test]
    fn step_ref_identity_needs_finite_bounds() {
        // #0 can overflow to inf (inf - inf = NaN), so the subtraction
        // must stay TOP rather than fold to zero.
        let r = run("multiply( val1 , val2 ) , subtract( #0 , #0 )");
        assert!(r.summary.value.is_top(), "{}", r.summary.value);
        assert!(r.degeneracies.is_empty());
    }

    #[test]
    fn constant_folding_convicts_const_programs() {
        let r = run("add( 2 , 3 ) , multiply( #0 , 10 )");
        assert_eq!(r.summary.value, Interval::point(50.0));
        assert_eq!(r.degeneracies[0].code, "A001");
    }

    #[test]
    fn multiply_by_zero_constant_folds_through_cells() {
        let r = run("multiply( val1 , 0 )");
        assert!(r.summary.value.is_point(), "{}", r.summary.value);
        assert_eq!(r.degeneracies[0].code, "A001");
    }

    #[test]
    fn division_by_zero_constant_is_always_error() {
        let r = run("divide( val1 , 0 )");
        assert!(r.summary.value.is_empty());
        assert_eq!(r.degeneracies[0].code, "A001");
        assert_eq!(r.survival, 0.0);
    }

    #[test]
    fn interval_decided_comparison_is_constant() {
        // count-free arith has no Card bridge, but constants vs cell
        // bounds still decide: nothing finite exceeds f64::MAX.
        let r = run("greater( val1 , val2 )");
        assert_eq!(r.summary.truth, Kleene::Unknown);
        let decided = run("exp( val1 , 0 ) , greater( #0 , 2 )");
        assert_eq!(decided.summary.truth, Kleene::False);
        assert_eq!(decided.degeneracies[0].code, "A001");
    }

    #[test]
    fn dead_intermediate_comparison_is_a002() {
        // A greater step that is not final and is statically decided. Its
        // result cannot legally be consumed, so the program is also
        // flagged by the typechecker — absint still reports the dead
        // branch specifically.
        use crate::ast::{AeProgram, AeStep};
        let t = AeTemplate::from_program(AeProgram {
            steps: vec![
                AeStep { op: AeOp::Greater, args: vec![AeArg::CellHole(0), AeArg::CellHole(0)] },
                AeStep { op: AeOp::Add, args: vec![AeArg::CellHole(0), AeArg::Const(1.0)] },
            ],
        });
        let r = interpret(&t);
        assert!(r.degeneracies.iter().any(|d| d.code == "A002"), "{:?}", r.degeneracies);
    }

    #[test]
    fn exp_shapes() {
        assert_eq!(run("exp( val1 , 0 )").summary.value, Interval::point(1.0));
        assert_eq!(run("exp( 1 , val1 )").summary.value, Interval::point(1.0));
        assert!(run("exp( val1 , 2 )").summary.value.is_top());
    }

    #[test]
    fn survival_orders_risky_constructs() {
        let plain = run("add( val1 , val2 )").survival;
        let divy = run("divide( val1 , val2 )").survival;
        let expy = run("exp( val1 , val2 )").survival;
        assert!(plain > divy && divy > expy, "{plain} {divy} {expy}");
    }
}
