//! Trainable n-gram language model with interpolated smoothing.
//!
//! Stands in for the fine-tuned generator's learned fluency preferences:
//! the grammar proposes several candidate realizations of a program, and
//! the LM (fit on a seed corpus of gold-style questions/claims, playing the
//! role of the paper's fine-tuning sets) reranks them. Stupid-backoff-style
//! interpolation over orders 1..=N keeps unseen n-grams from zeroing a
//! candidate.
//!
//! Scoring is the pipeline's verbalization hot path (every candidate of
//! every sample is scored), so the model interns tokens to `u32` ids at
//! training time and keys its count tables by id slices: a `score` call
//! performs no per-token `String` allocation and no key `join`s — tokens
//! stream through one reusable buffer and n-gram lookups borrow subslices
//! of one id vector.

use rustc_hash::FxHashMap;
use tabular::text::for_each_token;

/// Sentence-boundary markers (interned like ordinary tokens).
const BOS: &str = "<s>";
const EOS: &str = "</s>";

/// Id for tokens never seen at training time. Never interned, so lookups
/// containing it miss every count table — exactly how an unseen token
/// string behaved when the tables were string-keyed.
const UNSEEN: u32 = u32::MAX;

/// An interpolated n-gram language model.
#[derive(Debug, Clone, Default)]
pub struct NgramLm {
    order: usize,
    /// Token interner: populated by `observe`, read-only during `score`.
    ids: FxHashMap<String, u32>,
    /// counts[k] maps a (k+1)-gram of token ids to its count.
    counts: Vec<FxHashMap<Box<[u32]>, u32>>,
    /// context counts for each order (k-gram prefix counts).
    context: Vec<FxHashMap<Box<[u32]>, u32>>,
    vocab: usize,
    total_unigrams: u64,
}

/// Reusable buffers for [`NgramLm::score_with`]: the token-id sequence of
/// the sentence being scored and the tokenizer's string scratch.
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    ids: Vec<u32>,
    buf: String,
}

impl NgramLm {
    /// Creates an empty model of the given order (≥ 1).
    pub fn new(order: usize) -> NgramLm {
        let order = order.max(1);
        NgramLm {
            order,
            ids: FxHashMap::default(),
            counts: vec![FxHashMap::default(); order],
            context: vec![FxHashMap::default(); order],
            vocab: 0,
            total_unigrams: 0,
        }
    }

    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of training sentences is not stored; vocabulary size is.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(token.to_string(), id);
        id
    }

    fn lookup(&self, token: &str) -> u32 {
        self.ids.get(token).copied().unwrap_or(UNSEEN)
    }

    /// Adds one sentence to the model.
    pub fn observe(&mut self, sentence: &str) {
        let mut toks: Vec<u32> = Vec::with_capacity(16);
        let bos = self.intern(BOS);
        for _ in 0..self.order.saturating_sub(1) {
            toks.push(bos);
        }
        let mut buf = String::new();
        let mut raw: Vec<String> = Vec::with_capacity(16);
        for_each_token(sentence, &mut buf, |t| raw.push(t.to_string()));
        for t in &raw {
            let id = self.intern(t);
            toks.push(id);
        }
        toks.push(self.intern(EOS));
        for n in 1..=self.order {
            if toks.len() < n {
                continue;
            }
            for w in toks.windows(n) {
                *self.counts[n - 1].entry(Box::from(w)).or_insert(0) += 1;
                if n > 1 {
                    *self.context[n - 1].entry(Box::from(&w[..n - 1])).or_insert(0) += 1;
                }
            }
        }
        self.vocab = self.counts[0].len();
        self.total_unigrams = self.counts[0].values().map(|&c| u64::from(c)).sum();
    }

    /// Trains on a corpus of sentences.
    pub fn fit<S: AsRef<str>>(&mut self, corpus: &[S]) {
        for s in corpus {
            self.observe(s.as_ref());
        }
    }

    /// Average per-token log2 probability of a sentence (higher = more
    /// fluent under the model). Length-normalized so candidates of
    /// different lengths are comparable.
    pub fn score(&self, sentence: &str) -> f64 {
        self.score_with(sentence, &mut ScoreScratch::default())
    }

    /// [`NgramLm::score`] with caller-owned buffers — the zero-allocation
    /// form the generation hot path uses.
    pub fn score_with(&self, sentence: &str, scratch: &mut ScoreScratch) -> f64 {
        let toks = &mut scratch.ids;
        toks.clear();
        let bos = self.lookup(BOS);
        for _ in 0..self.order.saturating_sub(1) {
            toks.push(bos);
        }
        for_each_token(sentence, &mut scratch.buf, |t| {
            toks.push(self.ids.get(t).copied().unwrap_or(UNSEEN));
        });
        toks.push(self.lookup(EOS));
        let start = self.order.saturating_sub(1);
        if toks.len() <= start {
            return f64::NEG_INFINITY;
        }
        let mut total = 0.0;
        let mut n_scored = 0usize;
        for i in start..toks.len() {
            let p = self.token_prob(toks, i);
            total += p.log2();
            n_scored += 1;
        }
        total / n_scored.max(1) as f64
    }

    /// Probability of token i given its history: stupid backoff with a 0.4
    /// discount per backoff level, ending at an add-one unigram estimate.
    fn token_prob(&self, toks: &[u32], i: usize) -> f64 {
        let mut discount = 1.0;
        let max_n = self.order.min(i + 1);
        for n in (2..=max_n).rev() {
            let gram = &toks[i + 1 - n..=i];
            let ctx = &toks[i + 1 - n..i];
            if let (Some(&c), Some(&cc)) =
                (self.counts[n - 1].get(gram), self.context[n - 1].get(ctx))
            {
                if cc > 0 && c > 0 {
                    return discount * f64::from(c) / f64::from(cc);
                }
            }
            discount *= 0.4;
        }
        let c = self.counts[0].get(&toks[i..=i]).copied().unwrap_or(0);
        discount * (f64::from(c) + 1.0) / (self.total_unigrams as f64 + self.vocab as f64 + 1.0)
    }

    /// Selects the best candidate under the model. Each candidate is scored
    /// exactly once; ties keep the *later* candidate, matching
    /// `Iterator::max_by` over the score-per-comparison form this replaced.
    pub fn best<'a>(&self, candidates: &'a [String]) -> Option<&'a String> {
        self.best_index_with(candidates, &mut ScoreScratch::default()).map(|i| &candidates[i])
    }

    /// Index form of [`NgramLm::best`] with caller-owned score buffers —
    /// the zero-allocation selection the generation hot path uses.
    pub fn best_index_with(
        &self,
        candidates: &[String],
        scratch: &mut ScoreScratch,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in candidates.iter().enumerate() {
            let s = self.score_with(cand, scratch);
            best = match best {
                Some((bi, bs))
                    if s.partial_cmp(&bs).unwrap_or(std::cmp::Ordering::Equal)
                        == std::cmp::Ordering::Less =>
                {
                    Some((bi, bs))
                }
                _ => Some((i, s)),
            };
        }
        best.map(|(i, _)| i)
    }
}

/// Built-in seed corpus standing in for the SQUALL / Logic2Text / FinQA
/// fine-tuning sets: gold-style questions and claims in the phrasing the
/// benchmarks use. The default generator's LM is fit on this.
pub fn seed_corpus() -> Vec<&'static str> {
    vec![
        // SQUALL-style questions
        "what is the department with the most amount of total deputies?",
        "which team has the highest number of points?",
        "which player scored the fewest goals in the season?",
        "what is the name of the city with the largest population?",
        "how many teams scored more than 50 points?",
        "how many players are from brazil?",
        "what is the total number of wins for the reds?",
        "what is the average attendance across all games?",
        "what is the sum of the budgets of all departments?",
        "which country finished first in the rankings?",
        "what is the difference between the highest and lowest scores?",
        "who was the first driver to finish the race?",
        "what was the score of the last game of the season?",
        "which model has the highest speed?",
        // Logic2Text-style claims
        "there are 3 materials used for basic printer settings.",
        "the reds scored the most points in the league.",
        "most of the teams scored more than 40 points.",
        "all of the games were played in october.",
        "the second highest price was 349 dollars.",
        "only one team is from oslo.",
        "the average price of the printers was 311.5.",
        "the total attendance for the season was 50000.",
        "the blues scored 13 fewer points than the reds.",
        "there is only one printer that uses abs material.",
        // FinQA / TAT-QA-style questions
        "what was the percentage change in stockholders' equity between 2018 and 2019?",
        "what was the change in revenue from 2018 to 2019?",
        "what was the total of operating costs in 2019 and 2018?",
        "what was the average revenue for 2018 and 2019?",
        "what was the ratio of revenue to operating costs in 2019?",
        "was the revenue in 2019 greater than the revenue in 2018?",
        "what was the difference between revenue and operating costs in 2019?",
        "what was the sum of all values for revenue?",
        "what was the highest quarterly revenue during 2019?",
        "what percentage did operating costs decrease from 2018 to 2019?",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> NgramLm {
        let mut lm = NgramLm::new(3);
        lm.fit(&seed_corpus());
        lm
    }

    #[test]
    fn prefers_fluent_order() {
        let lm = trained();
        let fluent = "what is the department with the most total deputies?";
        let shuffled = "deputies what most the is department total with the?";
        assert!(lm.score(fluent) > lm.score(shuffled));
    }

    #[test]
    fn prefers_seen_phrasing() {
        let lm = trained();
        let natural = "which team has the highest number of points?";
        let awkward = "which team has the maximum magnitude of points?";
        assert!(lm.score(natural) > lm.score(awkward));
    }

    #[test]
    fn best_picks_highest() {
        let lm = trained();
        let candidates = vec![
            "points team which highest has the?".to_string(),
            "which team has the highest points?".to_string(),
        ];
        let best = lm.best(&candidates).unwrap_or_else(|| panic!("no best candidate"));
        assert_eq!(best, &candidates[1]);
    }

    #[test]
    fn best_matches_max_by_tie_semantics() {
        // Identical candidates score identically; `max_by` keeps the last
        // of equally-maximal elements, and `best` must do the same.
        let lm = trained();
        let candidates = vec![
            "what is the total?".to_string(),
            "completely different phrasing here".to_string(),
            "what is the total?".to_string(),
        ];
        let best = lm.best(&candidates).unwrap_or_else(|| panic!("no best candidate"));
        assert!(std::ptr::eq(best, &candidates[2]), "tie must keep the later candidate");
        let reference = candidates
            .iter()
            .max_by(|a, b| {
                lm.score(a).partial_cmp(&lm.score(b)).unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or_else(|| panic!("reference max_by"));
        assert!(std::ptr::eq(best, reference));
    }

    #[test]
    fn score_with_reused_scratch_is_identical() {
        let lm = trained();
        let mut scratch = ScoreScratch::default();
        for s in ["what is the total?", "the reds scored the most points.", "zyzzyva"] {
            let fresh = lm.score(s);
            let reused = lm.score_with(s, &mut scratch);
            assert_eq!(fresh.to_bits(), reused.to_bits(), "score divergence on {s:?}");
        }
    }

    #[test]
    fn unseen_tokens_get_nonzero_probability() {
        let lm = trained();
        let s = lm.score("zyzzyva quux flibbertigibbet");
        assert!(s.is_finite());
        assert!(s < lm.score("what is the total?"));
    }

    #[test]
    fn empty_model_scores_finite() {
        let lm = NgramLm::new(2);
        assert!(lm.score("anything at all").is_finite());
    }

    #[test]
    fn order_one_model_works() {
        let mut lm = NgramLm::new(1);
        lm.fit(&["a a a b"]);
        assert!(lm.score("a a") > lm.score("b b"));
    }

    #[test]
    fn observe_updates_vocab() {
        let mut lm = NgramLm::new(2);
        assert_eq!(lm.vocab_size(), 0);
        lm.observe("one two three");
        assert!(lm.vocab_size() >= 3);
    }
}
