//! Surface realization of SQL queries into natural-language questions.
//!
//! The realizer inspects the instantiated query's shape (superlative,
//! counting, aggregation, lookup, difference, ...) and emits several
//! candidate phrasings with randomized lexical choices; the caller reranks
//! them with the n-gram LM. This mirrors how the paper's fine-tuned BART
//! maps SQUALL-style queries to questions (Table IX row 1).

use crate::lexicon::*;
use rand::Rng;
use sqlexec::{AggFunc, ArithOp, CmpOp, ColumnRef, Cond, Expr, OrderDir, SelectItem, SelectStmt};

/// Renders a column reference (placeholders should not reach realization).
fn col_name(c: &ColumnRef) -> String {
    match c {
        ColumnRef::Named(n) => n.clone(),
        ColumnRef::Placeholder { index, .. } => format!("column {index}"),
    }
}

/// Renders a scalar expression as a noun phrase.
fn expr_phrase(e: &Expr) -> String {
    match e {
        Expr::Column(c) => col_name(c),
        Expr::Literal(v) => v.to_string(),
        Expr::ValuePlaceholder(i) => format!("value {i}"),
        Expr::Binary { op, lhs, rhs } => {
            let word = match op {
                ArithOp::Add => "plus",
                ArithOp::Sub => "minus",
                ArithOp::Mul => "times",
                ArithOp::Div => "divided by",
            };
            format!("{} {} {}", expr_phrase(lhs), word, expr_phrase(rhs))
        }
    }
}

/// Renders a condition tree as an English clause ("the city is Oslo and the
/// score is more than 10").
fn cond_phrase(c: &Cond, rng: &mut impl Rng) -> String {
    match c {
        Cond::Compare { op, lhs, rhs } => {
            let l = expr_phrase(lhs);
            let r = expr_phrase(rhs);
            match op {
                CmpOp::Eq => format!("the {l} is {r}"),
                CmpOp::NotEq => format!("the {l} is not {r}"),
                CmpOp::Gt => format!("the {l} is {} {r}", MORE_THAN.pick(rng)),
                CmpOp::Lt => format!("the {l} is {} {r}", LESS_THAN.pick(rng)),
                CmpOp::GtEq => format!("the {l} is at least {r}"),
                CmpOp::LtEq => format!("the {l} is at most {r}"),
            }
        }
        Cond::And(a, b) => format!("{} and {}", cond_phrase(a, rng), cond_phrase(b, rng)),
        Cond::Or(a, b) => format!("{} or {}", cond_phrase(a, rng), cond_phrase(b, rng)),
    }
}

/// Produces `k` candidate questions for an instantiated query.
pub fn realize_sql(stmt: &SelectStmt, rng: &mut impl Rng, k: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(k);
    realize_sql_into(stmt, rng, k, &mut out);
    out
}

/// [`realize_sql`] writing into a caller-owned buffer (cleared first), so the
/// generation hot path reuses one candidate vector across samples. Draw-
/// for-draw and candidate-for-candidate identical to the allocating form.
pub fn realize_sql_into(stmt: &SelectStmt, rng: &mut impl Rng, k: usize, out: &mut Vec<String>) {
    out.clear();
    for _ in 0..k.max(1) {
        out.push(realize_once(stmt, rng));
    }
    out.dedup();
}

fn realize_once(stmt: &SelectStmt, rng: &mut impl Rng) -> String {
    let where_suffix = stmt.where_clause.as_ref().map(|w| cond_phrase(w, rng));

    // Superlative: `select X from w order by Y desc limit 1`.
    if let (Some((Expr::Column(order_col), dir)), Some(1)) = (&stmt.order_by, stmt.limit) {
        if let Some(SelectItem::Expr(Expr::Column(sel))) = stmt.items.first() {
            let adj = match dir {
                OrderDir::Desc => MOST.pick(rng),
                OrderDir::Asc => LEAST.pick(rng),
            };
            let sel = col_name(sel);
            let order = col_name(order_col);
            let base = match rng.gen_range(0..3) {
                0 => format!("{} {sel} has the {adj} {order}", WHICH.pick(rng)),
                1 => format!("{} the {sel} with the {adj} {order}", WHAT_IS.pick(rng)),
                _ => format!("{} the {sel} with the {adj} amount of {order}", WHAT_IS.pick(rng)),
            };
            let full = match &where_suffix {
                Some(w) => format!("{base} when {w}"),
                None => base,
            };
            return sentence_case(&tidy(&full), '?');
        }
    }

    // Aggregates.
    if let Some(SelectItem::Aggregate { func, arg, .. }) = stmt.items.first() {
        let text = match (func, arg) {
            (AggFunc::Count, None) => {
                let noun = Slot::new(&["rows", "entries", "records", "times"]).pick(rng);
                match &where_suffix {
                    Some(w) => format!("{} {noun} are there where {w}", HOW_MANY.pick(rng)),
                    None => format!("{} {noun} are in the table", HOW_MANY.pick(rng)),
                }
            }
            (AggFunc::Count, Some(e)) => {
                let target = expr_phrase(e);
                match &where_suffix {
                    Some(w) => {
                        format!("{} {} values are there where {w}", HOW_MANY.pick(rng), target)
                    }
                    None => {
                        format!("{} {} values are listed", HOW_MANY.pick(rng), pluralize(&target))
                    }
                }
            }
            (agg, Some(e)) => {
                let noun = match agg {
                    AggFunc::Sum => TOTAL.pick(rng),
                    AggFunc::Avg => AVERAGE.pick(rng),
                    AggFunc::Min => LEAST.pick(rng),
                    AggFunc::Max => MOST.pick(rng),
                    // Count is consumed by the two arms above; keep a
                    // neutral noun for any future aggregate.
                    AggFunc::Count => TOTAL.pick(rng),
                };
                let target = expr_phrase(e);
                match &where_suffix {
                    Some(w) => format!("{} the {noun} {target} when {w}", WHAT_IS.pick(rng)),
                    None => format!("{} the {noun} {target}", WHAT_IS.pick(rng)),
                }
            }
            (_, None) => format!("{} the result", WHAT_IS.pick(rng)),
        };
        return sentence_case(&tidy(&text), '?');
    }

    // Difference between two columns.
    if let Some(SelectItem::Expr(Expr::Binary { op: ArithOp::Sub, lhs, rhs })) = stmt.items.first()
    {
        let text = match &where_suffix {
            Some(w) => format!(
                "{} the {} between {} and {} when {w}",
                WHAT_IS.pick(rng),
                DIFFERENCE.pick(rng),
                expr_phrase(lhs),
                expr_phrase(rhs)
            ),
            None => format!(
                "{} the {} between {} and {}",
                WHAT_IS.pick(rng),
                DIFFERENCE.pick(rng),
                expr_phrase(lhs),
                expr_phrase(rhs)
            ),
        };
        return sentence_case(&tidy(&text), '?');
    }

    // Plain lookup: `select X from w where ...`.
    if let Some(SelectItem::Expr(e)) = stmt.items.first() {
        let target = expr_phrase(e);
        let text = match &where_suffix {
            Some(w) => match rng.gen_range(0..3) {
                0 => format!("{} the {target} when {w}", WHAT_IS.pick(rng)),
                1 => format!("{} {target} is listed where {w}", WHICH.pick(rng)),
                _ => format!("{} the {target} for the row where {w}", WHAT_IS.pick(rng)),
            },
            None => format!("{} all the {} in the table", WHAT_IS.pick(rng), pluralize(&target)),
        };
        return sentence_case(&tidy(&text), '?');
    }

    // `select *` fallback.
    let text = match &where_suffix {
        Some(w) => format!("{} the full record where {w}", WHAT_IS.pick(rng)),
        None => format!("{} in the table", WHAT_IS.pick(rng)),
    };
    sentence_case(&tidy(&text), '?')
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqlexec::parse;

    fn realize(q: &str, seed: u64) -> String {
        let stmt = parse(q).unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(seed);
        realize_sql(&stmt, &mut rng, 1).remove(0)
    }

    #[test]
    fn superlative_question() {
        let q = realize("select [department] from w order by [total deputies] desc limit 1", 1);
        let lower = q.to_lowercase();
        assert!(lower.contains("department"), "{q}");
        assert!(lower.contains("total deputies"), "{q}");
        assert!(q.ends_with('?'));
        assert!(
            ["highest", "most", "greatest", "largest", "top", "maximum"]
                .iter()
                .any(|w| lower.contains(w)),
            "{q}"
        );
    }

    #[test]
    fn minimum_question() {
        let q = realize("select [name] from w order by [score] asc limit 1", 2);
        let lower = q.to_lowercase();
        assert!(
            ["lowest", "least", "smallest", "fewest", "minimum"].iter().any(|w| lower.contains(w)),
            "{q}"
        );
    }

    #[test]
    fn count_question() {
        let q = realize("select count(*) from w where [points] > 50", 3);
        let lower = q.to_lowercase();
        assert!(lower.starts_with("how many") || lower.starts_with("what number of"), "{q}");
        assert!(lower.contains("points"), "{q}");
        assert!(lower.contains("50"), "{q}");
    }

    #[test]
    fn aggregation_question() {
        let q = realize("select sum([budget]) from w", 4);
        let lower = q.to_lowercase();
        assert!(lower.contains("budget"), "{q}");
        assert!(["total", "sum", "combined total"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn lookup_question() {
        let q = realize("select [budget] from w where [department] = 'Treasury'", 5);
        let lower = q.to_lowercase();
        assert!(lower.contains("budget"), "{q}");
        assert!(lower.contains("treasury"), "{q}");
    }

    #[test]
    fn conjunction_appears() {
        let q = realize("select [name] from w where [points] > 10 and [wins] < 5", 6);
        let lower = q.to_lowercase();
        assert!(lower.contains(" and "), "{q}");
    }

    #[test]
    fn difference_question() {
        let q = realize("select [budget] - [spend] from w where [dept] = 'X'", 7);
        let lower = q.to_lowercase();
        assert!(["difference", "change", "gap"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn candidates_vary() {
        let stmt = parse("select [name] from w order by [score] desc limit 1")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(8);
        let cands = realize_sql(&stmt, &mut rng, 8);
        assert!(cands.len() > 1, "expected lexical variety, got {cands:?}");
    }
}
