//! Surface realization of SQL queries into natural-language questions.
//!
//! The realizer inspects the instantiated query's shape (superlative,
//! counting, aggregation, lookup, difference, ...) and emits several
//! candidate phrasings with randomized lexical choices; the caller reranks
//! them with the n-gram LM. This mirrors how the paper's fine-tuned BART
//! maps SQUALL-style queries to questions (Table IX row 1).
//!
//! Candidates stream into pooled buffers (see [`StrPool`]): phrases are
//! appended in place rather than composed from intermediate `String`s, and
//! the few sub-phrases that must be materialized (pluralization targets,
//! the shared WHERE clause) come from the pool. RNG draw order is part of
//! the determinism contract and matches the historical compositional form
//! draw for draw.

use crate::lexicon::*;
use crate::pool::StrPool;
use rand::Rng;
use sqlexec::{AggFunc, ArithOp, CmpOp, ColumnRef, Cond, Expr, OrderDir, SelectItem, SelectStmt};
use std::fmt::Write as _;

/// Appends a column reference (placeholders should not reach realization).
fn col_into(c: &ColumnRef, out: &mut String) {
    match c {
        ColumnRef::Named(n) => out.push_str(n),
        ColumnRef::Placeholder { index, .. } => {
            let _ = write!(out, "column {index}");
        }
    }
}

/// Appends a scalar expression as a noun phrase.
fn expr_into(e: &Expr, out: &mut String) {
    match e {
        Expr::Column(c) => col_into(c, out),
        Expr::Literal(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::ValuePlaceholder(i) => {
            let _ = write!(out, "value {i}");
        }
        Expr::Binary { op, lhs, rhs } => {
            let word = match op {
                ArithOp::Add => "plus",
                ArithOp::Sub => "minus",
                ArithOp::Mul => "times",
                ArithOp::Div => "divided by",
            };
            expr_into(lhs, out);
            out.push(' ');
            out.push_str(word);
            out.push(' ');
            expr_into(rhs, out);
        }
    }
}

/// Appends a condition tree as an English clause ("the city is Oslo and the
/// score is more than 10").
fn cond_into(c: &Cond, rng: &mut impl Rng, out: &mut String) {
    match c {
        Cond::Compare { op, lhs, rhs } => {
            out.push_str("the ");
            expr_into(lhs, out);
            match op {
                CmpOp::Eq => out.push_str(" is "),
                CmpOp::NotEq => out.push_str(" is not "),
                CmpOp::Gt => {
                    out.push_str(" is ");
                    out.push_str(MORE_THAN.pick(rng));
                    out.push(' ');
                }
                CmpOp::Lt => {
                    out.push_str(" is ");
                    out.push_str(LESS_THAN.pick(rng));
                    out.push(' ');
                }
                CmpOp::GtEq => out.push_str(" is at least "),
                CmpOp::LtEq => out.push_str(" is at most "),
            }
            expr_into(rhs, out);
        }
        Cond::And(a, b) => {
            cond_into(a, rng, out);
            out.push_str(" and ");
            cond_into(b, rng, out);
        }
        Cond::Or(a, b) => {
            cond_into(a, rng, out);
            out.push_str(" or ");
            cond_into(b, rng, out);
        }
    }
}

/// Produces `k` candidate questions for an instantiated query.
pub fn realize_sql(stmt: &SelectStmt, rng: &mut impl Rng, k: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(k);
    realize_sql_into(stmt, rng, k, &mut out);
    out
}

/// [`realize_sql`] writing into a caller-owned buffer (cleared first). Draw-
/// for-draw and candidate-for-candidate identical to the allocating form.
pub fn realize_sql_into(stmt: &SelectStmt, rng: &mut impl Rng, k: usize, out: &mut Vec<String>) {
    realize_sql_pooled(stmt, rng, k, out, &mut StrPool::default());
}

/// [`realize_sql_into`] with a caller-owned scratch pool — the form the
/// generation hot path uses: candidate slots and phrase temporaries all
/// keep their capacity across samples.
pub fn realize_sql_pooled(
    stmt: &SelectStmt,
    rng: &mut impl Rng,
    k: usize,
    out: &mut Vec<String>,
    pool: &mut StrPool,
) {
    fill_slots(out, pool, k.max(1));
    for slot in out.iter_mut() {
        let mut dst = std::mem::take(slot);
        realize_once_into(stmt, rng, &mut dst, pool);
        *slot = dst;
    }
    dedup_pooled(out, pool);
}

/// Resizes `out` to exactly `k` slots, pooling removed buffers.
pub(crate) fn fill_slots(out: &mut Vec<String>, pool: &mut StrPool, k: usize) {
    while out.len() > k {
        if let Some(s) = out.pop() {
            pool.put(s);
        }
    }
    while out.len() < k {
        out.push(pool.take());
    }
}

/// `Vec::dedup` (drop all but the first of consecutive equal candidates)
/// that returns dropped buffers to the pool instead of freeing them.
pub(crate) fn dedup_pooled(out: &mut Vec<String>, pool: &mut StrPool) {
    let mut kept = 1;
    for i in 1..out.len() {
        if out[i] == out[kept - 1] {
            continue;
        }
        out.swap(kept, i);
        kept += 1;
    }
    while out.len() > kept.min(out.len()) {
        if let Some(s) = out.pop() {
            pool.put(s);
        }
    }
}

fn realize_once_into(stmt: &SelectStmt, rng: &mut impl Rng, dst: &mut String, pool: &mut StrPool) {
    let mut wher = pool.take();
    let has_where = stmt.where_clause.is_some();
    if let Some(w) = &stmt.where_clause {
        cond_into(w, rng, &mut wher);
    }
    let mut raw = pool.take();
    build_raw(stmt, rng, has_where, &wher, &mut raw, pool);
    finish_sentence(&raw, '?', dst);
    pool.put(raw);
    pool.put(wher);
}

fn build_raw(
    stmt: &SelectStmt,
    rng: &mut impl Rng,
    has_where: bool,
    wher: &str,
    raw: &mut String,
    pool: &mut StrPool,
) {
    // Superlative: `select X from w order by Y desc limit 1`.
    if let (Some((Expr::Column(order_col), dir)), Some(1)) = (&stmt.order_by, stmt.limit) {
        if let Some(SelectItem::Expr(Expr::Column(sel))) = stmt.items.first() {
            let adj = match dir {
                OrderDir::Desc => MOST.pick(rng),
                OrderDir::Asc => LEAST.pick(rng),
            };
            match rng.gen_range(0..3) {
                0 => {
                    raw.push_str(WHICH.pick(rng));
                    raw.push(' ');
                    col_into(sel, raw);
                    raw.push_str(" has the ");
                    raw.push_str(adj);
                    raw.push(' ');
                    col_into(order_col, raw);
                }
                1 => {
                    raw.push_str(WHAT_IS.pick(rng));
                    raw.push_str(" the ");
                    col_into(sel, raw);
                    raw.push_str(" with the ");
                    raw.push_str(adj);
                    raw.push(' ');
                    col_into(order_col, raw);
                }
                _ => {
                    raw.push_str(WHAT_IS.pick(rng));
                    raw.push_str(" the ");
                    col_into(sel, raw);
                    raw.push_str(" with the ");
                    raw.push_str(adj);
                    raw.push_str(" amount of ");
                    col_into(order_col, raw);
                }
            }
            if has_where {
                raw.push_str(" when ");
                raw.push_str(wher);
            }
            return;
        }
    }

    // Aggregates.
    if let Some(SelectItem::Aggregate { func, arg, .. }) = stmt.items.first() {
        match (func, arg) {
            (AggFunc::Count, None) => {
                let noun = Slot::new(&["rows", "entries", "records", "times"]).pick(rng);
                raw.push_str(HOW_MANY.pick(rng));
                raw.push(' ');
                raw.push_str(noun);
                if has_where {
                    raw.push_str(" are there where ");
                    raw.push_str(wher);
                } else {
                    raw.push_str(" are in the table");
                }
            }
            (AggFunc::Count, Some(e)) => {
                raw.push_str(HOW_MANY.pick(rng));
                raw.push(' ');
                if has_where {
                    expr_into(e, raw);
                    raw.push_str(" values are there where ");
                    raw.push_str(wher);
                } else {
                    let mut target = pool.take();
                    expr_into(e, &mut target);
                    pluralize_into(&target, raw);
                    pool.put(target);
                    raw.push_str(" values are listed");
                }
            }
            (agg, Some(e)) => {
                let noun = match agg {
                    AggFunc::Sum => TOTAL.pick(rng),
                    AggFunc::Avg => AVERAGE.pick(rng),
                    AggFunc::Min => LEAST.pick(rng),
                    AggFunc::Max => MOST.pick(rng),
                    // Count is consumed by the two arms above; keep a
                    // neutral noun for any future aggregate.
                    AggFunc::Count => TOTAL.pick(rng),
                };
                raw.push_str(WHAT_IS.pick(rng));
                raw.push_str(" the ");
                raw.push_str(noun);
                raw.push(' ');
                expr_into(e, raw);
                if has_where {
                    raw.push_str(" when ");
                    raw.push_str(wher);
                }
            }
            (_, None) => {
                raw.push_str(WHAT_IS.pick(rng));
                raw.push_str(" the result");
            }
        }
        return;
    }

    // Difference between two columns.
    if let Some(SelectItem::Expr(Expr::Binary { op: ArithOp::Sub, lhs, rhs })) = stmt.items.first()
    {
        raw.push_str(WHAT_IS.pick(rng));
        raw.push_str(" the ");
        raw.push_str(DIFFERENCE.pick(rng));
        raw.push_str(" between ");
        expr_into(lhs, raw);
        raw.push_str(" and ");
        expr_into(rhs, raw);
        if has_where {
            raw.push_str(" when ");
            raw.push_str(wher);
        }
        return;
    }

    // Plain lookup: `select X from w where ...`.
    if let Some(SelectItem::Expr(e)) = stmt.items.first() {
        if has_where {
            match rng.gen_range(0..3) {
                0 => {
                    raw.push_str(WHAT_IS.pick(rng));
                    raw.push_str(" the ");
                    expr_into(e, raw);
                    raw.push_str(" when ");
                    raw.push_str(wher);
                }
                1 => {
                    raw.push_str(WHICH.pick(rng));
                    raw.push(' ');
                    expr_into(e, raw);
                    raw.push_str(" is listed where ");
                    raw.push_str(wher);
                }
                _ => {
                    raw.push_str(WHAT_IS.pick(rng));
                    raw.push_str(" the ");
                    expr_into(e, raw);
                    raw.push_str(" for the row where ");
                    raw.push_str(wher);
                }
            }
        } else {
            raw.push_str(WHAT_IS.pick(rng));
            raw.push_str(" all the ");
            let mut target = pool.take();
            expr_into(e, &mut target);
            pluralize_into(&target, raw);
            pool.put(target);
            raw.push_str(" in the table");
        }
        return;
    }

    // `select *` fallback.
    raw.push_str(WHAT_IS.pick(rng));
    if has_where {
        raw.push_str(" the full record where ");
        raw.push_str(wher);
    } else {
        raw.push_str(" in the table");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqlexec::parse;

    fn realize(q: &str, seed: u64) -> String {
        let stmt = parse(q).unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(seed);
        realize_sql(&stmt, &mut rng, 1).remove(0)
    }

    #[test]
    fn superlative_question() {
        let q = realize("select [department] from w order by [total deputies] desc limit 1", 1);
        let lower = q.to_lowercase();
        assert!(lower.contains("department"), "{q}");
        assert!(lower.contains("total deputies"), "{q}");
        assert!(q.ends_with('?'));
        assert!(
            ["highest", "most", "greatest", "largest", "top", "maximum"]
                .iter()
                .any(|w| lower.contains(w)),
            "{q}"
        );
    }

    #[test]
    fn minimum_question() {
        let q = realize("select [name] from w order by [score] asc limit 1", 2);
        let lower = q.to_lowercase();
        assert!(
            ["lowest", "least", "smallest", "fewest", "minimum"].iter().any(|w| lower.contains(w)),
            "{q}"
        );
    }

    #[test]
    fn count_question() {
        let q = realize("select count(*) from w where [points] > 50", 3);
        let lower = q.to_lowercase();
        assert!(lower.starts_with("how many") || lower.starts_with("what number of"), "{q}");
        assert!(lower.contains("points"), "{q}");
        assert!(lower.contains("50"), "{q}");
    }

    #[test]
    fn aggregation_question() {
        let q = realize("select sum([budget]) from w", 4);
        let lower = q.to_lowercase();
        assert!(lower.contains("budget"), "{q}");
        assert!(["total", "sum", "combined total"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn lookup_question() {
        let q = realize("select [budget] from w where [department] = 'Treasury'", 5);
        let lower = q.to_lowercase();
        assert!(lower.contains("budget"), "{q}");
        assert!(lower.contains("treasury"), "{q}");
    }

    #[test]
    fn conjunction_appears() {
        let q = realize("select [name] from w where [points] > 10 and [wins] < 5", 6);
        let lower = q.to_lowercase();
        assert!(lower.contains(" and "), "{q}");
    }

    #[test]
    fn difference_question() {
        let q = realize("select [budget] - [spend] from w where [dept] = 'X'", 7);
        let lower = q.to_lowercase();
        assert!(["difference", "change", "gap"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn candidates_vary() {
        let stmt = parse("select [name] from w order by [score] desc limit 1")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(8);
        let cands = realize_sql(&stmt, &mut rng, 8);
        assert!(cands.len() > 1, "expected lexical variety, got {cands:?}");
    }

    #[test]
    fn pooled_form_matches_fresh_buffers() {
        // Same seed through the pooled and Vec-allocating forms must give
        // identical candidate lists, including with a dirty reused pool.
        let stmts = [
            "select [department] from w order by [total deputies] desc limit 1",
            "select count(*) from w where [points] > 50",
            "select sum([budget]) from w where [city] = 'Oslo'",
            "select [budget] - [spend] from w",
            "select [name] from w where [points] > 10 and [wins] < 5",
            "select [name] from w",
        ];
        let mut out = Vec::new();
        let mut pool = StrPool::default();
        for (i, q) in stmts.iter().enumerate() {
            let stmt = parse(q).unwrap_or_else(|e| panic!("parse: {e}"));
            let fresh = {
                let mut rng = StdRng::seed_from_u64(40 + i as u64);
                realize_sql(&stmt, &mut rng, 6)
            };
            let mut rng = StdRng::seed_from_u64(40 + i as u64);
            realize_sql_pooled(&stmt, &mut rng, 6, &mut out, &mut pool);
            assert_eq!(out, fresh, "pooled candidates diverge for {q}");
        }
    }

    #[test]
    fn dedup_pooled_matches_vec_dedup() {
        let cases: &[&[&str]] = &[
            &["a", "a", "b"],
            &["a", "b", "a"],
            &["a", "a", "a"],
            &["a"],
            &["a", "b", "b", "c", "c", "c", "a"],
        ];
        for case in cases {
            let mut reference: Vec<String> = case.iter().map(|s| s.to_string()).collect();
            reference.dedup();
            let mut pooled: Vec<String> = case.iter().map(|s| s.to_string()).collect();
            dedup_pooled(&mut pooled, &mut StrPool::default());
            assert_eq!(pooled, reference, "case {case:?}");
        }
    }
}
