//! The unified NL-Generator (paper §IV-A, Eq. 3: `f(P) → L`).
//!
//! Combines the per-program-type realizers, the n-gram fluency model, and
//! the noise channel into one module with the same contract as the paper's
//! fine-tuned GPT-2/BART generators: program in, natural-language sentence
//! out. `fit` plays the role of fine-tuning — it trains the reranker LM on
//! a seed corpus of gold-style sentences.

use crate::arith_gen::{realize_arith, realize_arith_pooled};
use crate::logic_gen::{realize_logic, realize_logic_pooled};
use crate::ngram::{seed_corpus, NgramLm, ScoreScratch};
use crate::noise::{apply_noise, NoiseConfig};
use crate::pool::StrPool;
use crate::sql_gen::{realize_sql, realize_sql_pooled};
use arithexpr::AeProgram;
use logicforms::LfExpr;
use rand::Rng;
use sqlexec::SelectStmt;

/// Number of candidate realizations proposed per program before reranking.
const CANDIDATES: usize = 6;

/// A generated sentence with its rejected alternatives (useful for analysis
/// binaries like the Table IX reproduction).
#[derive(Debug, Clone)]
pub struct Generated {
    /// The selected sentence.
    pub text: String,
    /// All candidates that were proposed (including the winner, pre-noise).
    pub candidates: Vec<String>,
}

/// Reusable buffers for [`NlGenerator::verbalize_with`]: the candidate
/// vector the realizers fill and the LM's scoring scratch. One per worker;
/// reused across every sample the worker generates.
#[derive(Debug, Clone, Default)]
pub struct NlScratch {
    candidates: Vec<String>,
    score: ScoreScratch,
    pool: StrPool,
}

impl NlScratch {
    /// Candidates proposed by the most recent verbalization (including the
    /// winner, pre-noise) — readable until the next `verbalize_with` call.
    pub fn candidates(&self) -> &[String] {
        &self.candidates
    }
}

/// Program-to-text generator over all three program types.
#[derive(Debug, Clone)]
pub struct NlGenerator {
    lm: NgramLm,
    noise: NoiseConfig,
}

impl Default for NlGenerator {
    fn default() -> Self {
        NlGenerator::new()
    }
}

impl NlGenerator {
    /// A generator "fine-tuned" on the built-in seed corpus.
    pub fn new() -> NlGenerator {
        let mut lm = NgramLm::new(3);
        lm.fit(&seed_corpus());
        NlGenerator { lm, noise: NoiseConfig::default() }
    }

    /// A generator with an untrained LM (candidates are picked in proposal
    /// order) — the "no fine-tuning" ablation.
    pub fn untrained() -> NlGenerator {
        NlGenerator { lm: NgramLm::new(3), noise: NoiseConfig::default() }
    }

    /// Extends the fluency model with additional in-domain sentences
    /// (the counterpart of continuing fine-tuning on domain data).
    pub fn fit<S: AsRef<str>>(&mut self, corpus: &[S]) {
        self.lm.fit(corpus);
    }

    /// Replaces the noise configuration.
    pub fn with_noise(mut self, noise: NoiseConfig) -> NlGenerator {
        self.noise = noise;
        self
    }

    /// Replaces the fluency model (used by the n-gram-order ablation).
    pub fn with_lm(mut self, lm: NgramLm) -> NlGenerator {
        self.lm = lm;
        self
    }

    /// Access to the underlying LM (for benchmarking / analysis).
    pub fn lm(&self) -> &NgramLm {
        &self.lm
    }

    fn select(&self, candidates: Vec<String>, rng: &mut impl Rng) -> Generated {
        let text = self.pick_and_noise(&candidates, &mut ScoreScratch::default(), rng);
        Generated { text, candidates }
    }

    /// Shared selection core: LM reranking (each candidate scored once,
    /// ties keeping the later candidate) followed by the noise channel.
    fn pick_and_noise(
        &self,
        candidates: &[String],
        score: &mut ScoreScratch,
        rng: &mut impl Rng,
    ) -> String {
        let chosen = match self.lm.best_index_with(candidates, score) {
            Some(i) => candidates[i].as_str(),
            // The realizers always propose at least one candidate; an empty
            // slice only reaches here through direct API misuse.
            None => "",
        };
        apply_noise(chosen, self.noise, rng)
    }

    /// Generates a question from an instantiated SQL query.
    pub fn sql_question(&self, stmt: &SelectStmt, rng: &mut impl Rng) -> Generated {
        let candidates = realize_sql(stmt, rng, CANDIDATES);
        self.select(candidates, rng)
    }

    /// Generates a claim from an instantiated logical form.
    pub fn logic_claim(&self, expr: &LfExpr, rng: &mut impl Rng) -> Generated {
        let candidates = realize_logic(expr, rng, CANDIDATES);
        self.select(candidates, rng)
    }

    /// Generates a question from an instantiated arithmetic expression.
    pub fn arith_question(&self, program: &AeProgram, rng: &mut impl Rng) -> Generated {
        let candidates = realize_arith(program, rng, CANDIDATES);
        self.select(candidates, rng)
    }

    /// Single verbalization entry point over any program kind. Dispatches to
    /// the kind-specific surface realizer; the RNG draws are identical to
    /// calling [`NlGenerator::sql_question`] / [`NlGenerator::logic_claim`] /
    /// [`NlGenerator::arith_question`] directly.
    pub fn verbalize(&self, program: ProgramRef<'_>, rng: &mut impl Rng) -> Generated {
        match program {
            ProgramRef::Sql(stmt) => self.sql_question(stmt, rng),
            ProgramRef::Logic(expr) => self.logic_claim(expr, rng),
            ProgramRef::Arith(prog) => self.arith_question(prog, rng),
        }
    }

    /// [`NlGenerator::verbalize`] through caller-owned buffers, returning
    /// only the selected sentence — the form the generation hot path uses:
    /// the candidate vector and the scoring buffers live in `scratch` and
    /// are reused across samples. Draw-for-draw and selection-identical to
    /// [`NlGenerator::verbalize`]; the proposed candidates stay readable
    /// via [`NlScratch::candidates`] until the next call.
    pub fn verbalize_with(
        &self,
        program: ProgramRef<'_>,
        rng: &mut impl Rng,
        scratch: &mut NlScratch,
    ) -> String {
        let buf = &mut scratch.candidates;
        let pool = &mut scratch.pool;
        match program {
            ProgramRef::Sql(stmt) => realize_sql_pooled(stmt, rng, CANDIDATES, buf, pool),
            ProgramRef::Logic(expr) => realize_logic_pooled(expr, rng, CANDIDATES, buf, pool),
            ProgramRef::Arith(prog) => realize_arith_pooled(prog, rng, CANDIDATES, buf, pool),
        }
        self.pick_and_noise(&scratch.candidates, &mut scratch.score, rng)
    }
}

/// A borrowed view of an instantiated program of any kind, for uniform
/// verbalization via [`NlGenerator::verbalize`].
#[derive(Debug, Clone, Copy)]
pub enum ProgramRef<'a> {
    /// An instantiated SQL `SELECT` statement.
    Sql(&'a SelectStmt),
    /// An instantiated logical-form expression.
    Logic(&'a LfExpr),
    /// An instantiated arithmetic program.
    Arith(&'a AeProgram),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sql_generation_end_to_end() {
        let g = NlGenerator::new().with_noise(NoiseConfig::off());
        let stmt =
            sqlexec::parse("select [department] from w order by [total deputies] desc limit 1")
                .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(1);
        let out = g.sql_question(&stmt, &mut rng);
        assert!(out.text.to_lowercase().contains("department"), "{}", out.text);
        assert!(out.candidates.contains(&out.text) || !out.candidates.is_empty());
    }

    #[test]
    fn logic_generation_end_to_end() {
        let g = NlGenerator::new().with_noise(NoiseConfig::off());
        let e = logicforms::parse("eq { count { filter_eq { all_rows ; material ; PLA } } ; 3 }")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(2);
        let out = g.logic_claim(&e, &mut rng);
        assert!(out.text.contains('3'), "{}", out.text);
        assert!(out.text.ends_with('.'), "{}", out.text);
    }

    #[test]
    fn arith_generation_end_to_end() {
        let g = NlGenerator::new().with_noise(NoiseConfig::off());
        let p = arithexpr::parse(
            "subtract( the 2019 of Equity , the 2018 of Equity ), divide( #0 , the 2018 of Equity )",
        )
        .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(3);
        let out = g.arith_question(&p, &mut rng);
        // Any of the percentage-change phrasings (lexicon::PCT_CHANGE or the
        // "by what percentage" form) is a faithful realization.
        let lower = out.text.to_lowercase();
        assert!(lower.contains("percent") || lower.contains("relative change"), "{}", out.text);
    }

    #[test]
    fn lm_reranking_changes_choice() {
        // With a heavily biased LM, the winner should track the bias.
        let mut biased = NlGenerator::untrained().with_noise(NoiseConfig::off());
        biased.fit(&["what is the name with the most amount of points?"]);
        let stmt = sqlexec::parse("select [name] from w order by [points] desc limit 1")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(4);
        let out = biased.sql_question(&stmt, &mut rng);
        assert!(out.text.to_lowercase().contains("points"), "{}", out.text);
    }

    #[test]
    fn fit_extends_vocabulary() {
        let mut g = NlGenerator::new();
        let before = g.lm().vocab_size();
        g.fit(&["totally new domain specific vocabulary flange widget"]);
        assert!(g.lm().vocab_size() > before);
    }

    #[test]
    fn noise_applies_when_enabled() {
        let g = NlGenerator::new().with_noise(NoiseConfig { sentence_rate: 1.0 });
        let stmt =
            sqlexec::parse("select [department] from w order by [total deputies] desc limit 1")
                .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_noise = false;
        for _ in 0..20 {
            let out = g.sql_question(&stmt, &mut rng);
            if !out.candidates.contains(&out.text) {
                saw_noise = true;
                break;
            }
        }
        assert!(saw_noise, "noise channel never fired at rate 1.0");
    }
}
