//! A tiny free-list of `String` buffers for the surface realizers.
//!
//! Realization is compositional: clauses, noun phrases, and candidate
//! sentences are built from sub-phrases, and a few of those sub-phrases
//! must be materialized before use (emptiness checks, pluralization,
//! `parse` probes). The pool lets those temporaries keep their capacity
//! across candidates and across samples instead of being reallocated for
//! every one — the same arena discipline the executor scratches use.

/// Reusable `String` buffers. `take` hands out a cleared buffer (reusing a
/// previously returned one when available); `put` returns it to the pool.
#[derive(Debug, Clone, Default)]
pub struct StrPool {
    free: Vec<String>,
}

impl StrPool {
    /// A cleared buffer, reusing pooled capacity when available.
    pub fn take(&mut self) -> String {
        let mut s = self.free.pop().unwrap_or_default();
        s.clear();
        s
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn put(&mut self, s: String) {
        self.free.push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_capacity() {
        let mut p = StrPool::default();
        let mut a = p.take();
        a.push_str("some text to grow the buffer");
        let cap = a.capacity();
        p.put(a);
        let b = p.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
    }
}
