//! # nlgen — the NL-Generator module of UCTR
//!
//! Maps programs of all three types (SQL queries, logical forms, arithmetic
//! expressions) to natural-language questions and claims (paper §IV-A,
//! `f(P) → L`). The paper fine-tunes GPT-2/BART for this; the reproduction
//! substitutes a compositional grammar realizer per program type, an
//! n-gram fluency model trained on a seed corpus (the fine-tuning stand-in)
//! that reranks candidate realizations, and a noise channel reproducing the
//! generation errors the paper reports in §V-F. See DESIGN.md for the
//! substitution rationale.
//!
//! ```
//! use nlgen::NlGenerator;
//! use rand::SeedableRng;
//!
//! let g = NlGenerator::new();
//! let stmt = sqlexec::parse("select [department] from w order by [total deputies] desc limit 1").unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let out = g.sql_question(&stmt, &mut rng);
//! assert!(out.text.ends_with('?'));
//! ```

pub mod arith_gen;
pub mod generator;
pub mod lexicon;
pub mod logic_gen;
pub mod ngram;
pub mod noise;
pub mod pool;
pub mod sql_gen;

pub use arith_gen::{realize_arith, realize_arith_into, realize_arith_pooled};
pub use generator::{Generated, NlGenerator, NlScratch, ProgramRef};
pub use logic_gen::{realize_logic, realize_logic_into, realize_logic_pooled};
pub use ngram::{seed_corpus, NgramLm, ScoreScratch};
pub use noise::{apply_noise, NoiseConfig};
pub use pool::StrPool;
pub use sql_gen::{realize_sql, realize_sql_into, realize_sql_pooled};
