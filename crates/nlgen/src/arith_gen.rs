//! Surface realization of arithmetic expressions into questions.
//!
//! FinQA-style programs map to numeracy questions through idiom detection:
//! `subtract(a,b), divide(#0,b)` is a *percentage change* question,
//! `add(a,b), divide(#0,2)` an *average*, a bare `subtract` a *difference*,
//! and so on — the same mapping the paper highlights in Table IX row 3,
//! where the generator correctly renders subtract-then-divide as
//! "by what percentage did ... change".

use crate::lexicon::*;
use arithexpr::{AeArg, AeOp, AeProgram};
use rand::Rng;

/// Produces `k` candidate questions for an instantiated program.
pub fn realize_arith(program: &AeProgram, rng: &mut impl Rng, k: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(k);
    realize_arith_into(program, rng, k, &mut out);
    out
}

/// [`realize_arith`] writing into a caller-owned buffer (cleared first), so the
/// generation hot path reuses one candidate vector across samples. Draw-
/// for-draw and candidate-for-candidate identical to the allocating form.
pub fn realize_arith_into(
    program: &AeProgram,
    rng: &mut impl Rng,
    k: usize,
    out: &mut Vec<String>,
) {
    out.clear();
    for _ in 0..k.max(1) {
        out.push(realize_once(program, rng));
    }
    out.dedup();
}

/// Renders a cell argument as a noun phrase ("the revenue of 2019").
fn arg_phrase(a: &AeArg) -> String {
    match a {
        AeArg::Const(n) => tabular::format_number(*n),
        AeArg::StepRef(i) => format!("the result of step {i}"),
        AeArg::Cell { col, row } => format!("the {col} of {row}"),
        AeArg::Column(c) => format!("the {c} column"),
        AeArg::CellHole(i) => format!("value {i}"),
        AeArg::ColumnHole(i) => format!("column {i}"),
    }
}

/// For percentage-change phrasing we want "from {row_b} to {row_a}" when the
/// two cells share a column (two periods of the same line item) or share a
/// row (two items in the same period).
fn change_endpoints<'a>(a: &'a AeArg, b: &'a AeArg) -> Option<(String, &'a str, &'a str)> {
    if let (AeArg::Cell { col: ca, row: ra }, AeArg::Cell { col: cb, row: rb }) = (a, b) {
        if ra.eq_ignore_ascii_case(rb) {
            // same line item, different period columns
            return Some((format!("the {ra}"), cb, ca));
        }
        if ca.eq_ignore_ascii_case(cb) {
            // same column, different line items/rows
            return Some((format!("the {ca}"), rb, ra));
        }
    }
    None
}

fn realize_once(program: &AeProgram, rng: &mut impl Rng) -> String {
    let steps = &program.steps;

    // Idiom: percentage change = subtract(a, b), divide(#0, b).
    if steps.len() == 2
        && steps[0].op == AeOp::Subtract
        && steps[1].op == AeOp::Divide
        && steps[1].args[0] == AeArg::StepRef(0)
        && steps[1].args[1] == steps[0].args[1]
    {
        let (a, b) = (&steps[0].args[0], &steps[0].args[1]);
        let text = if let Some((subject, from, to)) = change_endpoints(a, b) {
            match rng.gen_range(0..2) {
                0 => format!(
                    "{} the {} in {subject} from {from} to {to}",
                    WHAT_IS.pick(rng),
                    PCT_CHANGE.pick(rng)
                ),
                _ => format!("by what percentage did {subject} change between {from} and {to}"),
            }
        } else {
            format!(
                "{} the {} from {} to {}",
                WHAT_IS.pick(rng),
                PCT_CHANGE.pick(rng),
                arg_phrase(b),
                arg_phrase(a)
            )
        };
        return sentence_case(&tidy(&text), '?');
    }

    // Idiom: average of two values = add(a, b), divide(#0, 2).
    if steps.len() == 2
        && steps[0].op == AeOp::Add
        && steps[1].op == AeOp::Divide
        && steps[1].args[0] == AeArg::StepRef(0)
        && steps[1].args[1] == AeArg::Const(2.0)
    {
        let text = format!(
            "{} the {} of {} and {}",
            WHAT_IS.pick(rng),
            AVERAGE.pick(rng),
            arg_phrase(&steps[0].args[0]),
            arg_phrase(&steps[0].args[1])
        );
        return sentence_case(&tidy(&text), '?');
    }

    // Single-step idioms.
    if steps.len() == 1 {
        let step = &steps[0];
        let text = match step.op {
            AeOp::Subtract => {
                let (a, b) = (&step.args[0], &step.args[1]);
                if let Some((subject, from, to)) = change_endpoints(a, b) {
                    format!(
                        "{} the {} in {subject} from {from} to {to}",
                        WHAT_IS.pick(rng),
                        DIFFERENCE.pick(rng)
                    )
                } else {
                    format!(
                        "{} the {} between {} and {}",
                        WHAT_IS.pick(rng),
                        DIFFERENCE.pick(rng),
                        arg_phrase(a),
                        arg_phrase(b)
                    )
                }
            }
            AeOp::Add => format!(
                "{} the {} of {} and {}",
                WHAT_IS.pick(rng),
                TOTAL.pick(rng),
                arg_phrase(&step.args[0]),
                arg_phrase(&step.args[1])
            ),
            AeOp::Multiply => format!(
                "{} the product of {} and {}",
                WHAT_IS.pick(rng),
                arg_phrase(&step.args[0]),
                arg_phrase(&step.args[1])
            ),
            AeOp::Divide => format!(
                "{} the ratio of {} to {}",
                WHAT_IS.pick(rng),
                arg_phrase(&step.args[0]),
                arg_phrase(&step.args[1])
            ),
            AeOp::Greater => format!(
                "was {} {} {}",
                arg_phrase(&step.args[0]),
                MORE_THAN.pick(rng),
                arg_phrase(&step.args[1])
            ),
            AeOp::Exp => format!(
                "{} {} raised to the power of {}",
                WHAT_IS.pick(rng),
                arg_phrase(&step.args[0]),
                arg_phrase(&step.args[1])
            ),
            AeOp::TableMax => format!(
                "{} the {} value in {}",
                WHAT_IS.pick(rng),
                MOST.pick(rng),
                arg_phrase(&step.args[0])
            ),
            AeOp::TableMin => format!(
                "{} the {} value in {}",
                WHAT_IS.pick(rng),
                LEAST.pick(rng),
                arg_phrase(&step.args[0])
            ),
            AeOp::TableSum => format!(
                "{} the {} of all values in {}",
                WHAT_IS.pick(rng),
                TOTAL.pick(rng),
                arg_phrase(&step.args[0])
            ),
            AeOp::TableAverage => format!(
                "{} the {} of the values in {}",
                WHAT_IS.pick(rng),
                AVERAGE.pick(rng),
                arg_phrase(&step.args[0])
            ),
        };
        return sentence_case(&tidy(&text), '?');
    }

    // Generic multi-step fallback: describe the final step with its inputs
    // expanded recursively.
    let text = format!("{} {}", WHAT_IS.pick(rng), describe_step(program, steps.len() - 1));
    sentence_case(&tidy(&text), '?')
}

/// Recursively describes a step by inlining `#N` references.
fn describe_step(program: &AeProgram, idx: usize) -> String {
    let step = &program.steps[idx];
    let arg = |a: &AeArg| -> String {
        match a {
            AeArg::StepRef(i) => describe_step(program, *i),
            other => arg_phrase(other),
        }
    };
    match step.op {
        AeOp::Add => format!("the sum of {} and {}", arg(&step.args[0]), arg(&step.args[1])),
        AeOp::Subtract => format!("{} minus {}", arg(&step.args[0]), arg(&step.args[1])),
        AeOp::Multiply => format!("{} times {}", arg(&step.args[0]), arg(&step.args[1])),
        AeOp::Divide => format!("{} divided by {}", arg(&step.args[0]), arg(&step.args[1])),
        AeOp::Greater => format!("whether {} exceeds {}", arg(&step.args[0]), arg(&step.args[1])),
        AeOp::Exp => format!("{} to the power of {}", arg(&step.args[0]), arg(&step.args[1])),
        AeOp::TableMax => format!("the maximum of {}", arg(&step.args[0])),
        AeOp::TableMin => format!("the minimum of {}", arg(&step.args[0])),
        AeOp::TableSum => format!("the total of {}", arg(&step.args[0])),
        AeOp::TableAverage => format!("the average of {}", arg(&step.args[0])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arithexpr::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn realize(p: &str, seed: u64) -> String {
        let program = parse(p).unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(seed);
        realize_arith(&program, &mut rng, 1).remove(0)
    }

    #[test]
    fn percentage_change_idiom() {
        let q = realize(
            "subtract( the 2019 of Stockholders' equity , the 2018 of Stockholders' equity ), divide( #0 , the 2018 of Stockholders' equity )",
            1,
        );
        let lower = q.to_lowercase();
        assert!(lower.contains("percent") || lower.contains("relative change"), "{q}");
        assert!(lower.contains("2018") && lower.contains("2019"), "{q}");
        assert!(lower.contains("stockholders"), "{q}");
        assert!(q.ends_with('?'));
    }

    #[test]
    fn percentage_change_orders_from_to() {
        // subtract(new=2019, old=2018): the question must read "from 2018 to 2019".
        let q = realize(
            "subtract( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , the 2018 of Revenue )",
            2,
        );
        let lower = q.to_lowercase();
        if let (Some(f), Some(t)) = (lower.find("2018"), lower.find("2019")) {
            assert!(f < t, "{q}");
        }
    }

    #[test]
    fn difference_idiom() {
        let q = realize("subtract( the 2019 of Revenue , the 2018 of Revenue )", 3);
        let lower = q.to_lowercase();
        assert!(["difference", "change", "gap"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn total_idiom() {
        let q = realize("add( the 2019 of Revenue , the 2018 of Revenue )", 4);
        let lower = q.to_lowercase();
        assert!(["total", "sum", "combined"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn average_of_two_idiom() {
        let q = realize("add( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , 2 )", 5);
        let lower = q.to_lowercase();
        assert!(lower.contains("average") || lower.contains("mean"), "{q}");
    }

    #[test]
    fn ratio_idiom() {
        let q = realize("divide( the 2019 of Revenue , the 2019 of Costs )", 6);
        assert!(q.to_lowercase().contains("ratio"), "{q}");
    }

    #[test]
    fn greater_question() {
        let q = realize("greater( the 2019 of Revenue , the 2018 of Revenue )", 7);
        let lower = q.to_lowercase();
        assert!(lower.starts_with("was"), "{q}");
    }

    #[test]
    fn table_op_questions() {
        let q = realize("table_sum( 2019 )", 8);
        let lower = q.to_lowercase();
        assert!(lower.contains("2019"), "{q}");
        assert!(["total", "sum", "combined"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn generic_fallback_multi_step() {
        let q = realize(
            "table_sum( 2019 ) , subtract( #0 , the 2018 of Revenue ) , divide( #1 , 100 )",
            9,
        );
        let lower = q.to_lowercase();
        assert!(lower.contains("divided by 100"), "{q}");
        assert!(lower.contains("minus"), "{q}");
    }

    #[test]
    fn candidates_vary() {
        let p = parse("subtract( the 2019 of Revenue , the 2018 of Revenue )")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(10);
        let cands = realize_arith(&p, &mut rng, 8);
        assert!(cands.len() > 1, "{cands:?}");
    }
}
