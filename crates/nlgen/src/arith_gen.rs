//! Surface realization of arithmetic expressions into questions.
//!
//! FinQA-style programs map to numeracy questions through idiom detection:
//! `subtract(a,b), divide(#0,b)` is a *percentage change* question,
//! `add(a,b), divide(#0,2)` an *average*, a bare `subtract` a *difference*,
//! and so on — the same mapping the paper highlights in Table IX row 3,
//! where the generator correctly renders subtract-then-divide as
//! "by what percentage did ... change".
//!
//! Candidates stream into pooled buffers (see [`StrPool`]); RNG draw order
//! matches the historical compositional form draw for draw.

use crate::lexicon::*;
use crate::pool::StrPool;
use crate::sql_gen::{dedup_pooled, fill_slots};
use arithexpr::{AeArg, AeOp, AeProgram};
use rand::Rng;
use std::fmt::Write as _;

/// Produces `k` candidate questions for an instantiated program.
pub fn realize_arith(program: &AeProgram, rng: &mut impl Rng, k: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(k);
    realize_arith_into(program, rng, k, &mut out);
    out
}

/// [`realize_arith`] writing into a caller-owned buffer (cleared first). Draw-
/// for-draw and candidate-for-candidate identical to the allocating form.
pub fn realize_arith_into(
    program: &AeProgram,
    rng: &mut impl Rng,
    k: usize,
    out: &mut Vec<String>,
) {
    realize_arith_pooled(program, rng, k, out, &mut StrPool::default());
}

/// [`realize_arith_into`] with a caller-owned scratch pool — the form the
/// generation hot path uses.
pub fn realize_arith_pooled(
    program: &AeProgram,
    rng: &mut impl Rng,
    k: usize,
    out: &mut Vec<String>,
    pool: &mut StrPool,
) {
    fill_slots(out, pool, k.max(1));
    for slot in out.iter_mut() {
        let mut dst = std::mem::take(slot);
        let mut raw = pool.take();
        raw_question_into(program, rng, &mut raw);
        finish_sentence(&raw, '?', &mut dst);
        pool.put(raw);
        *slot = dst;
    }
    dedup_pooled(out, pool);
}

/// Appends a cell argument as a noun phrase ("the revenue of 2019").
fn arg_into(a: &AeArg, out: &mut String) {
    match a {
        AeArg::Const(n) => {
            let _ = write!(out, "{}", tabular::format_number(*n));
        }
        AeArg::StepRef(i) => {
            let _ = write!(out, "the result of step {i}");
        }
        AeArg::Cell { col, row } => {
            out.push_str("the ");
            out.push_str(col);
            out.push_str(" of ");
            out.push_str(row);
        }
        AeArg::Column(c) => {
            out.push_str("the ");
            out.push_str(c);
            out.push_str(" column");
        }
        AeArg::CellHole(i) => {
            let _ = write!(out, "value {i}");
        }
        AeArg::ColumnHole(i) => {
            let _ = write!(out, "column {i}");
        }
    }
}

/// For percentage-change phrasing we want "from {row_b} to {row_a}" when the
/// two cells share a column (two periods of the same line item) or share a
/// row (two items in the same period). Returns the change subject (rendered
/// as "the {subject}") and the from/to endpoints.
fn change_endpoints<'a>(a: &'a AeArg, b: &'a AeArg) -> Option<(&'a str, &'a str, &'a str)> {
    if let (AeArg::Cell { col: ca, row: ra }, AeArg::Cell { col: cb, row: rb }) = (a, b) {
        if ra.eq_ignore_ascii_case(rb) {
            // same line item, different period columns
            return Some((ra, cb, ca));
        }
        if ca.eq_ignore_ascii_case(cb) {
            // same column, different line items/rows
            return Some((ca, rb, ra));
        }
    }
    None
}

fn raw_question_into(program: &AeProgram, rng: &mut impl Rng, out: &mut String) {
    let steps = &program.steps;

    // Idiom: percentage change = subtract(a, b), divide(#0, b).
    if steps.len() == 2
        && steps[0].op == AeOp::Subtract
        && steps[1].op == AeOp::Divide
        && steps[1].args[0] == AeArg::StepRef(0)
        && steps[1].args[1] == steps[0].args[1]
    {
        let (a, b) = (&steps[0].args[0], &steps[0].args[1]);
        if let Some((subject, from, to)) = change_endpoints(a, b) {
            match rng.gen_range(0..2) {
                0 => {
                    out.push_str(WHAT_IS.pick(rng));
                    out.push_str(" the ");
                    out.push_str(PCT_CHANGE.pick(rng));
                    out.push_str(" in the ");
                    out.push_str(subject);
                    out.push_str(" from ");
                    out.push_str(from);
                    out.push_str(" to ");
                    out.push_str(to);
                }
                _ => {
                    out.push_str("by what percentage did the ");
                    out.push_str(subject);
                    out.push_str(" change between ");
                    out.push_str(from);
                    out.push_str(" and ");
                    out.push_str(to);
                }
            }
        } else {
            out.push_str(WHAT_IS.pick(rng));
            out.push_str(" the ");
            out.push_str(PCT_CHANGE.pick(rng));
            out.push_str(" from ");
            arg_into(b, out);
            out.push_str(" to ");
            arg_into(a, out);
        }
        return;
    }

    // Idiom: average of two values = add(a, b), divide(#0, 2).
    if steps.len() == 2
        && steps[0].op == AeOp::Add
        && steps[1].op == AeOp::Divide
        && steps[1].args[0] == AeArg::StepRef(0)
        && steps[1].args[1] == AeArg::Const(2.0)
    {
        out.push_str(WHAT_IS.pick(rng));
        out.push_str(" the ");
        out.push_str(AVERAGE.pick(rng));
        out.push_str(" of ");
        arg_into(&steps[0].args[0], out);
        out.push_str(" and ");
        arg_into(&steps[0].args[1], out);
        return;
    }

    // Single-step idioms.
    if steps.len() == 1 {
        let step = &steps[0];
        match step.op {
            AeOp::Subtract => {
                let (a, b) = (&step.args[0], &step.args[1]);
                if let Some((subject, from, to)) = change_endpoints(a, b) {
                    out.push_str(WHAT_IS.pick(rng));
                    out.push_str(" the ");
                    out.push_str(DIFFERENCE.pick(rng));
                    out.push_str(" in the ");
                    out.push_str(subject);
                    out.push_str(" from ");
                    out.push_str(from);
                    out.push_str(" to ");
                    out.push_str(to);
                } else {
                    out.push_str(WHAT_IS.pick(rng));
                    out.push_str(" the ");
                    out.push_str(DIFFERENCE.pick(rng));
                    out.push_str(" between ");
                    arg_into(a, out);
                    out.push_str(" and ");
                    arg_into(b, out);
                }
            }
            AeOp::Add => {
                out.push_str(WHAT_IS.pick(rng));
                out.push_str(" the ");
                out.push_str(TOTAL.pick(rng));
                out.push_str(" of ");
                arg_into(&step.args[0], out);
                out.push_str(" and ");
                arg_into(&step.args[1], out);
            }
            AeOp::Multiply => {
                out.push_str(WHAT_IS.pick(rng));
                out.push_str(" the product of ");
                arg_into(&step.args[0], out);
                out.push_str(" and ");
                arg_into(&step.args[1], out);
            }
            AeOp::Divide => {
                out.push_str(WHAT_IS.pick(rng));
                out.push_str(" the ratio of ");
                arg_into(&step.args[0], out);
                out.push_str(" to ");
                arg_into(&step.args[1], out);
            }
            AeOp::Greater => {
                out.push_str("was ");
                arg_into(&step.args[0], out);
                out.push(' ');
                out.push_str(MORE_THAN.pick(rng));
                out.push(' ');
                arg_into(&step.args[1], out);
            }
            AeOp::Exp => {
                out.push_str(WHAT_IS.pick(rng));
                out.push(' ');
                arg_into(&step.args[0], out);
                out.push_str(" raised to the power of ");
                arg_into(&step.args[1], out);
            }
            AeOp::TableMax => {
                out.push_str(WHAT_IS.pick(rng));
                out.push_str(" the ");
                out.push_str(MOST.pick(rng));
                out.push_str(" value in ");
                arg_into(&step.args[0], out);
            }
            AeOp::TableMin => {
                out.push_str(WHAT_IS.pick(rng));
                out.push_str(" the ");
                out.push_str(LEAST.pick(rng));
                out.push_str(" value in ");
                arg_into(&step.args[0], out);
            }
            AeOp::TableSum => {
                out.push_str(WHAT_IS.pick(rng));
                out.push_str(" the ");
                out.push_str(TOTAL.pick(rng));
                out.push_str(" of all values in ");
                arg_into(&step.args[0], out);
            }
            AeOp::TableAverage => {
                out.push_str(WHAT_IS.pick(rng));
                out.push_str(" the ");
                out.push_str(AVERAGE.pick(rng));
                out.push_str(" of the values in ");
                arg_into(&step.args[0], out);
            }
        }
        return;
    }

    // Generic multi-step fallback: describe the final step with its inputs
    // expanded recursively.
    out.push_str(WHAT_IS.pick(rng));
    out.push(' ');
    describe_step_into(program, steps.len() - 1, out);
}

/// Recursively appends a step description, inlining `#N` references.
fn describe_step_into(program: &AeProgram, idx: usize, out: &mut String) {
    let step = &program.steps[idx];
    fn arg(program: &AeProgram, a: &AeArg, out: &mut String) {
        match a {
            AeArg::StepRef(i) => describe_step_into(program, *i, out),
            other => arg_into(other, out),
        }
    }
    match step.op {
        AeOp::Add => {
            out.push_str("the sum of ");
            arg(program, &step.args[0], out);
            out.push_str(" and ");
            arg(program, &step.args[1], out);
        }
        AeOp::Subtract => {
            arg(program, &step.args[0], out);
            out.push_str(" minus ");
            arg(program, &step.args[1], out);
        }
        AeOp::Multiply => {
            arg(program, &step.args[0], out);
            out.push_str(" times ");
            arg(program, &step.args[1], out);
        }
        AeOp::Divide => {
            arg(program, &step.args[0], out);
            out.push_str(" divided by ");
            arg(program, &step.args[1], out);
        }
        AeOp::Greater => {
            out.push_str("whether ");
            arg(program, &step.args[0], out);
            out.push_str(" exceeds ");
            arg(program, &step.args[1], out);
        }
        AeOp::Exp => {
            arg(program, &step.args[0], out);
            out.push_str(" to the power of ");
            arg(program, &step.args[1], out);
        }
        AeOp::TableMax => {
            out.push_str("the maximum of ");
            arg(program, &step.args[0], out);
        }
        AeOp::TableMin => {
            out.push_str("the minimum of ");
            arg(program, &step.args[0], out);
        }
        AeOp::TableSum => {
            out.push_str("the total of ");
            arg(program, &step.args[0], out);
        }
        AeOp::TableAverage => {
            out.push_str("the average of ");
            arg(program, &step.args[0], out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arithexpr::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn realize(p: &str, seed: u64) -> String {
        let program = parse(p).unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(seed);
        realize_arith(&program, &mut rng, 1).remove(0)
    }

    #[test]
    fn percentage_change_idiom() {
        let q = realize(
            "subtract( the 2019 of Stockholders' equity , the 2018 of Stockholders' equity ), divide( #0 , the 2018 of Stockholders' equity )",
            1,
        );
        let lower = q.to_lowercase();
        assert!(lower.contains("percent") || lower.contains("relative change"), "{q}");
        assert!(lower.contains("2018") && lower.contains("2019"), "{q}");
        assert!(lower.contains("stockholders"), "{q}");
        assert!(q.ends_with('?'));
    }

    #[test]
    fn percentage_change_orders_from_to() {
        // subtract(new=2019, old=2018): the question must read "from 2018 to 2019".
        let q = realize(
            "subtract( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , the 2018 of Revenue )",
            2,
        );
        let lower = q.to_lowercase();
        if let (Some(f), Some(t)) = (lower.find("2018"), lower.find("2019")) {
            assert!(f < t, "{q}");
        }
    }

    #[test]
    fn difference_idiom() {
        let q = realize("subtract( the 2019 of Revenue , the 2018 of Revenue )", 3);
        let lower = q.to_lowercase();
        assert!(["difference", "change", "gap"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn total_idiom() {
        let q = realize("add( the 2019 of Revenue , the 2018 of Revenue )", 4);
        let lower = q.to_lowercase();
        assert!(["total", "sum", "combined"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn average_of_two_idiom() {
        let q = realize("add( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , 2 )", 5);
        let lower = q.to_lowercase();
        assert!(lower.contains("average") || lower.contains("mean"), "{q}");
    }

    #[test]
    fn ratio_idiom() {
        let q = realize("divide( the 2019 of Revenue , the 2019 of Costs )", 6);
        assert!(q.to_lowercase().contains("ratio"), "{q}");
    }

    #[test]
    fn greater_question() {
        let q = realize("greater( the 2019 of Revenue , the 2018 of Revenue )", 7);
        let lower = q.to_lowercase();
        assert!(lower.starts_with("was"), "{q}");
    }

    #[test]
    fn table_op_questions() {
        let q = realize("table_sum( 2019 )", 8);
        let lower = q.to_lowercase();
        assert!(lower.contains("2019"), "{q}");
        assert!(["total", "sum", "combined"].iter().any(|w| lower.contains(w)), "{q}");
    }

    #[test]
    fn generic_fallback_multi_step() {
        let q = realize(
            "table_sum( 2019 ) , subtract( #0 , the 2018 of Revenue ) , divide( #1 , 100 )",
            9,
        );
        let lower = q.to_lowercase();
        assert!(lower.contains("divided by 100"), "{q}");
        assert!(lower.contains("minus"), "{q}");
    }

    #[test]
    fn candidates_vary() {
        let p = parse("subtract( the 2019 of Revenue , the 2018 of Revenue )")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(10);
        let cands = realize_arith(&p, &mut rng, 8);
        assert!(cands.len() > 1, "{cands:?}");
    }

    #[test]
    fn pooled_form_matches_fresh_buffers() {
        let programs = [
            "subtract( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , the 2018 of Revenue )",
            "subtract( the 2019 of Revenue , the 2018 of Costs ), divide( #0 , the 2018 of Costs )",
            "add( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , 2 )",
            "subtract( the 2019 of Revenue , the 2018 of Revenue )",
            "divide( the 2019 of Revenue , the 2019 of Costs )",
            "greater( the 2019 of Revenue , the 2018 of Revenue )",
            "table_sum( 2019 )",
            "table_sum( 2019 ) , subtract( #0 , the 2018 of Revenue ) , divide( #1 , 100 )",
        ];
        let mut out = Vec::new();
        let mut pool = StrPool::default();
        for (i, p) in programs.iter().enumerate() {
            let program = parse(p).unwrap_or_else(|e| panic!("parse: {e}"));
            let fresh = {
                let mut rng = StdRng::seed_from_u64(70 + i as u64);
                realize_arith(&program, &mut rng, 6)
            };
            let mut rng = StdRng::seed_from_u64(70 + i as u64);
            realize_arith_pooled(&program, &mut rng, 6, &mut out, &mut pool);
            assert_eq!(out, fresh, "pooled candidates diverge for {p}");
        }
    }
}
