//! Surface realization of logical forms into natural-language claims.
//!
//! Claims are declarative sentences whose truth equals the program's
//! execution result. The realizer is compositional: filter chains become
//! relative clauses ("the rows whose material is PLA"), and the root
//! operator picks a claim frame per logic type (count / superlative /
//! ordinal / aggregation / majority / unique / comparative), matching the
//! Logic2Text phrasing the paper's fine-tuned GPT-2 produces (Table IX).

use crate::lexicon::*;
use logicforms::{LfExpr, LfOp};
use rand::Rng;

/// Produces `k` candidate claims for an instantiated logical form.
pub fn realize_logic(expr: &LfExpr, rng: &mut impl Rng, k: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(k);
    realize_logic_into(expr, rng, k, &mut out);
    out
}

/// [`realize_logic`] writing into a caller-owned buffer (cleared first), so the
/// generation hot path reuses one candidate vector across samples. Draw-
/// for-draw and candidate-for-candidate identical to the allocating form.
pub fn realize_logic_into(expr: &LfExpr, rng: &mut impl Rng, k: usize, out: &mut Vec<String>) {
    out.clear();
    for _ in 0..k.max(1) {
        out.push(realize_once(expr, rng));
    }
    out.dedup();
}

/// Describes a view as a relative clause (empty for `all_rows`).
fn view_clause(e: &LfExpr, rng: &mut impl Rng) -> String {
    match e {
        LfExpr::AllRows => String::new(),
        LfExpr::Apply(op, args) => {
            use LfOp::*;
            match op {
                FilterEq | FilterNotEq | FilterGreater | FilterLess | FilterGreaterEq
                | FilterLessEq => {
                    let inner = view_clause(&args[0], rng);
                    let col = leaf_text(&args[1]);
                    let val = leaf_text(&args[2]);
                    let this = match op {
                        FilterEq => format!("whose {col} is {val}"),
                        FilterNotEq => format!("whose {col} is not {val}"),
                        FilterGreater => format!("whose {col} is {} {val}", MORE_THAN.pick(rng)),
                        FilterLess => format!("whose {col} is {} {val}", LESS_THAN.pick(rng)),
                        FilterGreaterEq => format!("whose {col} is at least {val}"),
                        FilterLessEq => format!("whose {col} is at most {val}"),
                        // The outer arm admits only the six filter ops
                        // above; any future op falls back to the eq frame.
                        _ => format!("whose {col} is {val}"),
                    };
                    if inner.is_empty() {
                        this
                    } else {
                        format!("{inner} and {this}")
                    }
                }
                FilterAll => {
                    let inner = view_clause(&args[0], rng);
                    let col = leaf_text(&args[1]);
                    let this = format!("with a listed {col}");
                    if inner.is_empty() {
                        this
                    } else {
                        format!("{inner} {this}")
                    }
                }
                _ => String::new(),
            }
        }
        _ => String::new(),
    }
}

fn leaf_text(e: &LfExpr) -> String {
    match e {
        LfExpr::Column(c) => c.clone(),
        LfExpr::Const(v) => v.clone(),
        LfExpr::AllRows => "all rows".to_string(),
        LfExpr::ColumnHole(i) => format!("column {i}"),
        LfExpr::ValueHole(i) => format!("value {i}"),
        LfExpr::Apply(..) => describe_scalar(e),
    }
}

/// Describes a scalar-producing subtree as a noun phrase.
fn describe_scalar(e: &LfExpr) -> String {
    match e {
        LfExpr::Apply(op, args) => {
            use LfOp::*;
            match op {
                Hop => {
                    let row = describe_row(&args[0]);
                    let col = leaf_text(&args[1]);
                    format!("the {col} of {row}")
                }
                Count => format!("the number of rows {}", describe_view_np(&args[0])),
                Max => {
                    format!("the highest {} {}", leaf_text(&args[1]), describe_view_np(&args[0]))
                }
                Min => format!("the lowest {} {}", leaf_text(&args[1]), describe_view_np(&args[0])),
                Sum => format!("the total {} {}", leaf_text(&args[1]), describe_view_np(&args[0])),
                Avg => {
                    format!("the average {} {}", leaf_text(&args[1]), describe_view_np(&args[0]))
                }
                NthMax => format!(
                    "the {} highest {}",
                    ordinal_word(parse_ordinal(&args[2])),
                    leaf_text(&args[1])
                ),
                NthMin => format!(
                    "the {} lowest {}",
                    ordinal_word(parse_ordinal(&args[2])),
                    leaf_text(&args[1])
                ),
                Diff => format!(
                    "the difference between {} and {}",
                    describe_scalar(&args[0]),
                    describe_scalar(&args[1])
                ),
                _ => e.to_string(),
            }
        }
        other => leaf_text(other),
    }
}

/// Describes a row-producing subtree.
fn describe_row(e: &LfExpr) -> String {
    match e {
        LfExpr::Apply(op, args) => {
            use LfOp::*;
            match op {
                Argmax => format!(
                    "the row with the highest {} {}",
                    leaf_text(&args[1]),
                    describe_view_np(&args[0])
                ),
                Argmin => format!(
                    "the row with the lowest {} {}",
                    leaf_text(&args[1]),
                    describe_view_np(&args[0])
                ),
                NthArgmax => format!(
                    "the row with the {} highest {}",
                    ordinal_word(parse_ordinal(&args[2])),
                    leaf_text(&args[1])
                ),
                NthArgmin => format!(
                    "the row with the {} lowest {}",
                    ordinal_word(parse_ordinal(&args[2])),
                    leaf_text(&args[1])
                ),
                FilterEq => {
                    // hop over a filter: identify the row by its filter
                    // value; text filters read naturally as the entity name
                    // ("P300"), numeric ones keep the column for clarity
                    // ("the row whose wins is 24").
                    let val = leaf_text(&args[2]);
                    if val.parse::<f64>().is_ok() {
                        format!("the row whose {} is {val}", leaf_text(&args[1]))
                    } else {
                        val
                    }
                }
                _ => "the selected row".to_string(),
            }
        }
        _ => "the selected row".to_string(),
    }
}

/// View description as a trailing prepositional phrase ("among the rows
/// whose X is V"), empty for all_rows.
fn describe_view_np(e: &LfExpr) -> String {
    let mut throwaway = rand::rngs::mock::StepRng::new(7, 11);
    let clause = view_clause(e, &mut throwaway);
    if clause.is_empty() {
        String::new()
    } else {
        format!("among the rows {clause}")
    }
}

fn parse_ordinal(e: &LfExpr) -> usize {
    match e {
        LfExpr::Const(t) => t.parse().unwrap_or(1),
        _ => 1,
    }
}

fn realize_once(expr: &LfExpr, rng: &mut impl Rng) -> String {
    use LfOp::*;
    let text = match expr {
        LfExpr::Apply(op, args) => match op {
            Eq | RoundEq | NotEq => realize_comparison(*op, &args[0], &args[1], rng),
            Greater | Less => {
                let a = describe_scalar(&args[0]);
                let b = describe_scalar(&args[1]);
                let cmp =
                    if matches!(op, Greater) { MORE_THAN.pick(rng) } else { LESS_THAN.pick(rng) };
                format!("{a} {} {cmp} {b}", IS_ARE.pick(rng))
            }
            And => {
                let a = realize_once(&args[0], rng);
                let b = realize_once(&args[1], rng);
                format!(
                    "{} and {}",
                    a.trim_end_matches(['.', '?']),
                    lowercase_first(b.trim_end_matches(['.', '?']))
                )
            }
            Only => {
                let clause = view_clause(&args[0], rng);
                format!("there is only one row {clause}")
            }
            AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq | MostEq
            | MostNotEq | MostGreater | MostLess | MostGreaterEq | MostLessEq => {
                let quant = if matches!(
                    op,
                    AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq
                ) {
                    ALL_OF.pick(rng)
                } else {
                    MAJORITY.pick(rng)
                };
                let inner = view_clause(&args[0], rng);
                let col = leaf_text(&args[1]);
                let val = leaf_text(&args[2]);
                let pred = match op {
                    AllEq | MostEq => format!("a {col} of {val}"),
                    AllNotEq | MostNotEq => format!("a {col} other than {val}"),
                    AllGreater | MostGreater => format!("a {col} {} {val}", MORE_THAN.pick(rng)),
                    AllLess | MostLess => format!("a {col} {} {val}", LESS_THAN.pick(rng)),
                    AllGreaterEq | MostGreaterEq => format!("a {col} of at least {val}"),
                    AllLessEq | MostLessEq => format!("a {col} of at most {val}"),
                    // The outer arm admits only the quantifier ops above;
                    // any future op falls back to the eq frame.
                    _ => format!("a {col} of {val}"),
                };
                if inner.is_empty() {
                    format!("{quant} rows have {pred}")
                } else {
                    format!("{quant} rows {inner} have {pred}")
                }
            }
            _ => describe_scalar(expr),
        },
        other => leaf_text(other),
    };
    sentence_case(&tidy(&text), '.')
}

fn realize_comparison(op: LfOp, lhs: &LfExpr, rhs: &LfExpr, rng: &mut impl Rng) -> String {
    use LfOp::*;
    // Count claims: "there are N rows ..."
    if let LfExpr::Apply(Count, count_args) = lhs {
        let n = leaf_text(rhs);
        let clause = view_clause(&count_args[0], rng);
        let frame = rng.gen_range(0..2);
        let body = if clause.is_empty() {
            match frame {
                0 => format!("there are {n} rows in the table"),
                _ => format!("the table has {n} rows"),
            }
        } else {
            match frame {
                0 => format!("there are {n} rows {clause}"),
                _ => format!("{n} of the rows are {clause}"),
            }
        };
        return match op {
            NotEq => format!("it is not the case that {body}"),
            _ => body,
        };
    }
    // Superlative / ordinal hop claims: "{v} has the highest {col}".
    if let LfExpr::Apply(Hop, hop_args) = lhs {
        if let LfExpr::Apply(inner_op, inner_args) = &hop_args[0] {
            if matches!(inner_op, Argmax | Argmin | NthArgmax | NthArgmin) {
                let target_col = leaf_text(&hop_args[1]);
                let sort_col = leaf_text(&inner_args[1]);
                let v = leaf_text(rhs);
                let among = describe_view_np(&inner_args[0]);
                let adj: String = match inner_op {
                    Argmax => MOST.pick(rng).to_string(),
                    Argmin => LEAST.pick(rng).to_string(),
                    NthArgmax => format!("{} highest", ordinal_word(parse_ordinal(&inner_args[2]))),
                    NthArgmin => format!("{} lowest", ordinal_word(parse_ordinal(&inner_args[2]))),
                    // Guarded by the matches! above; fall back to the
                    // superlative frame for any future row op.
                    _ => MOST.pick(rng).to_string(),
                };
                let body = match rng.gen_range(0..2) {
                    0 => format!(
                        "the {target_col} with the {adj} {sort_col} {among} {} {v}",
                        IS_ARE.pick(rng)
                    ),
                    _ => format!("{v} has the {adj} {sort_col} {among}"),
                };
                return negate_if(op == NotEq, body);
            }
        }
    }
    // Generic scalar comparison.
    let a = describe_scalar(lhs);
    let b = describe_scalar(rhs);
    let body = format!("{a} {} {b}", IS_ARE.pick(rng));
    negate_if(op == NotEq, body)
}

fn negate_if(neg: bool, body: String) -> String {
    if neg {
        format!("it is not the case that {body}")
    } else {
        body
    }
}

fn lowercase_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicforms::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn realize(form: &str, seed: u64) -> String {
        let e = parse(form).unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(seed);
        realize_logic(&e, &mut rng, 1).remove(0)
    }

    #[test]
    fn count_claim() {
        let c = realize("eq { count { filter_eq { all_rows ; material ; PLA } } ; 2 }", 1);
        let lower = c.to_lowercase();
        assert!(lower.contains('2'), "{c}");
        assert!(lower.contains("material"), "{c}");
        assert!(lower.contains("pla"), "{c}");
        assert!(c.ends_with('.'));
    }

    #[test]
    fn superlative_claim() {
        let c = realize("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }", 2);
        let lower = c.to_lowercase();
        assert!(lower.contains("p300"), "{c}");
        assert!(lower.contains("speed"), "{c}");
        assert!(
            ["highest", "most", "greatest", "largest", "top", "maximum"]
                .iter()
                .any(|w| lower.contains(w)),
            "{c}"
        );
    }

    #[test]
    fn ordinal_claim() {
        let c = realize("eq { hop { nth_argmax { all_rows ; price ; 2 } ; model } ; P400 }", 3);
        assert!(c.to_lowercase().contains("second highest"), "{c}");
    }

    #[test]
    fn aggregation_claim() {
        let c = realize("round_eq { avg { all_rows ; price } ; 311.5 }", 4);
        let lower = c.to_lowercase();
        assert!(lower.contains("average") || lower.contains("mean"), "{c}");
        assert!(lower.contains("311.5"), "{c}");
    }

    #[test]
    fn majority_claim() {
        let c = realize("most_greater { all_rows ; speed ; 70 }", 5);
        let lower = c.to_lowercase();
        assert!(lower.contains("most of the") || lower.contains("majority"), "{c}");
        assert!(lower.contains("70"), "{c}");
    }

    #[test]
    fn all_claim() {
        let c = realize("all_greater { all_rows ; price ; 100 }", 6);
        let lower = c.to_lowercase();
        assert!(lower.contains("all") || lower.contains("every"), "{c}");
    }

    #[test]
    fn unique_claim() {
        let c = realize("only { filter_eq { all_rows ; material ; ABS } }", 7);
        let lower = c.to_lowercase();
        assert!(lower.contains("only one"), "{c}");
        assert!(lower.contains("abs"), "{c}");
    }

    #[test]
    fn comparative_claim() {
        let c = realize(
            "greater { hop { filter_eq { all_rows ; model ; P200 } ; price } ; hop { filter_eq { all_rows ; model ; P100 } ; price } }",
            8,
        );
        let lower = c.to_lowercase();
        assert!(lower.contains("p200"), "{c}");
        assert!(lower.contains("p100"), "{c}");
    }

    #[test]
    fn negated_claim() {
        let c = realize("not_eq { count { all_rows } ; 5 }", 9);
        assert!(c.to_lowercase().contains("not the case"), "{c}");
    }

    #[test]
    fn conjunction_claim() {
        let c = realize(
            "and { eq { count { all_rows } ; 4 } ; greater { max { all_rows ; speed } ; 90 } }",
            10,
        );
        assert!(c.contains(" and "), "{c}");
        assert_eq!(c.matches('.').count(), 1, "{c}");
    }

    #[test]
    fn filtered_view_clause() {
        let c = realize(
            "eq { count { filter_greater { filter_eq { all_rows ; material ; PLA } ; price ; 200 } } ; 1 }",
            11,
        );
        let lower = c.to_lowercase();
        assert!(lower.contains("pla") && lower.contains("200"), "{c}");
        assert!(lower.contains(" and "), "{c}");
    }

    #[test]
    fn candidates_vary() {
        let e = parse("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(12);
        let cands = realize_logic(&e, &mut rng, 8);
        assert!(cands.len() > 1, "{cands:?}");
    }
}
