//! Surface realization of logical forms into natural-language claims.
//!
//! Claims are declarative sentences whose truth equals the program's
//! execution result. The realizer is compositional: filter chains become
//! relative clauses ("the rows whose material is PLA"), and the root
//! operator picks a claim frame per logic type (count / superlative /
//! ordinal / aggregation / majority / unique / comparative), matching the
//! Logic2Text phrasing the paper's fine-tuned GPT-2 produces (Table IX).
//!
//! Phrases stream into pooled buffers (see [`StrPool`]) instead of being
//! composed from intermediate `String`s; RNG draw order is part of the
//! determinism contract and matches the historical compositional form draw
//! for draw.

use crate::lexicon::*;
use crate::pool::StrPool;
use crate::sql_gen::{dedup_pooled, fill_slots};
use logicforms::{LfExpr, LfOp};
use rand::Rng;
use std::fmt::Write as _;

/// Produces `k` candidate claims for an instantiated logical form.
pub fn realize_logic(expr: &LfExpr, rng: &mut impl Rng, k: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(k);
    realize_logic_into(expr, rng, k, &mut out);
    out
}

/// [`realize_logic`] writing into a caller-owned buffer (cleared first). Draw-
/// for-draw and candidate-for-candidate identical to the allocating form.
pub fn realize_logic_into(expr: &LfExpr, rng: &mut impl Rng, k: usize, out: &mut Vec<String>) {
    realize_logic_pooled(expr, rng, k, out, &mut StrPool::default());
}

/// [`realize_logic_into`] with a caller-owned scratch pool — the form the
/// generation hot path uses.
pub fn realize_logic_pooled(
    expr: &LfExpr,
    rng: &mut impl Rng,
    k: usize,
    out: &mut Vec<String>,
    pool: &mut StrPool,
) {
    fill_slots(out, pool, k.max(1));
    for slot in out.iter_mut() {
        let mut dst = std::mem::take(slot);
        realize_once_into(expr, rng, &mut dst, pool);
        *slot = dst;
    }
    dedup_pooled(out, pool);
}

/// Appends a view as a relative clause (nothing for `all_rows`).
fn view_clause_into(e: &LfExpr, rng: &mut impl Rng, out: &mut String) {
    match e {
        LfExpr::AllRows => {}
        LfExpr::Apply(op, args) => {
            use LfOp::*;
            match op {
                FilterEq | FilterNotEq | FilterGreater | FilterLess | FilterGreaterEq
                | FilterLessEq => {
                    let start = out.len();
                    view_clause_into(&args[0], rng, out);
                    if out.len() > start {
                        out.push_str(" and ");
                    }
                    out.push_str("whose ");
                    leaf_into(&args[1], out);
                    match op {
                        FilterEq => out.push_str(" is "),
                        FilterNotEq => out.push_str(" is not "),
                        FilterGreater => {
                            out.push_str(" is ");
                            out.push_str(MORE_THAN.pick(rng));
                            out.push(' ');
                        }
                        FilterLess => {
                            out.push_str(" is ");
                            out.push_str(LESS_THAN.pick(rng));
                            out.push(' ');
                        }
                        FilterGreaterEq => out.push_str(" is at least "),
                        FilterLessEq => out.push_str(" is at most "),
                        // The outer arm admits only the six filter ops
                        // above; any future op falls back to the eq frame.
                        _ => out.push_str(" is "),
                    }
                    leaf_into(&args[2], out);
                }
                FilterAll => {
                    let start = out.len();
                    view_clause_into(&args[0], rng, out);
                    if out.len() > start {
                        out.push(' ');
                    }
                    out.push_str("with a listed ");
                    leaf_into(&args[1], out);
                }
                _ => {}
            }
        }
        _ => {}
    }
}

fn leaf_into(e: &LfExpr, out: &mut String) {
    match e {
        LfExpr::Column(c) => out.push_str(c),
        LfExpr::Const(v) => out.push_str(v),
        LfExpr::AllRows => out.push_str("all rows"),
        LfExpr::ColumnHole(i) => {
            let _ = write!(out, "column {i}");
        }
        LfExpr::ValueHole(i) => {
            let _ = write!(out, "value {i}");
        }
        LfExpr::Apply(..) => describe_scalar_into(e, out),
    }
}

/// Appends a scalar-producing subtree as a noun phrase. Draws nothing from
/// the RNG (view descriptions go through the throwaway-RNG noun-phrase
/// form), so streaming order is free.
fn describe_scalar_into(e: &LfExpr, out: &mut String) {
    match e {
        LfExpr::Apply(op, args) => {
            use LfOp::*;
            match op {
                Hop => {
                    out.push_str("the ");
                    leaf_into(&args[1], out);
                    out.push_str(" of ");
                    describe_row_into(&args[0], out);
                }
                Count => {
                    out.push_str("the number of rows ");
                    view_np_into(&args[0], out);
                }
                Max => {
                    out.push_str("the highest ");
                    leaf_into(&args[1], out);
                    out.push(' ');
                    view_np_into(&args[0], out);
                }
                Min => {
                    out.push_str("the lowest ");
                    leaf_into(&args[1], out);
                    out.push(' ');
                    view_np_into(&args[0], out);
                }
                Sum => {
                    out.push_str("the total ");
                    leaf_into(&args[1], out);
                    out.push(' ');
                    view_np_into(&args[0], out);
                }
                Avg => {
                    out.push_str("the average ");
                    leaf_into(&args[1], out);
                    out.push(' ');
                    view_np_into(&args[0], out);
                }
                NthMax => {
                    out.push_str("the ");
                    ordinal_into(parse_ordinal(&args[2]), out);
                    out.push_str(" highest ");
                    leaf_into(&args[1], out);
                }
                NthMin => {
                    out.push_str("the ");
                    ordinal_into(parse_ordinal(&args[2]), out);
                    out.push_str(" lowest ");
                    leaf_into(&args[1], out);
                }
                Diff => {
                    out.push_str("the difference between ");
                    describe_scalar_into(&args[0], out);
                    out.push_str(" and ");
                    describe_scalar_into(&args[1], out);
                }
                _ => {
                    let _ = write!(out, "{e}");
                }
            }
        }
        other => leaf_into(other, out),
    }
}

/// Appends a row-producing subtree description.
fn describe_row_into(e: &LfExpr, out: &mut String) {
    match e {
        LfExpr::Apply(op, args) => {
            use LfOp::*;
            match op {
                Argmax => {
                    out.push_str("the row with the highest ");
                    leaf_into(&args[1], out);
                    out.push(' ');
                    view_np_into(&args[0], out);
                }
                Argmin => {
                    out.push_str("the row with the lowest ");
                    leaf_into(&args[1], out);
                    out.push(' ');
                    view_np_into(&args[0], out);
                }
                NthArgmax => {
                    out.push_str("the row with the ");
                    ordinal_into(parse_ordinal(&args[2]), out);
                    out.push_str(" highest ");
                    leaf_into(&args[1], out);
                }
                NthArgmin => {
                    out.push_str("the row with the ");
                    ordinal_into(parse_ordinal(&args[2]), out);
                    out.push_str(" lowest ");
                    leaf_into(&args[1], out);
                }
                FilterEq => {
                    // hop over a filter: identify the row by its filter
                    // value; text filters read naturally as the entity name
                    // ("P300"), numeric ones keep the column for clarity
                    // ("the row whose wins is 24").
                    let start = out.len();
                    leaf_into(&args[2], out);
                    if out[start..].parse::<f64>().is_ok() {
                        out.truncate(start);
                        out.push_str("the row whose ");
                        leaf_into(&args[1], out);
                        out.push_str(" is ");
                        leaf_into(&args[2], out);
                    }
                }
                _ => out.push_str("the selected row"),
            }
        }
        _ => out.push_str("the selected row"),
    }
}

/// View description as a trailing prepositional phrase ("among the rows
/// whose X is V"), nothing for all_rows. Uses a throwaway RNG so real draw
/// sequences are unaffected by view depth.
fn view_np_into(e: &LfExpr, out: &mut String) {
    let mut throwaway = rand::rngs::mock::StepRng::new(7, 11);
    let start = out.len();
    out.push_str("among the rows ");
    let clause_start = out.len();
    view_clause_into(e, &mut throwaway, out);
    if out.len() == clause_start {
        out.truncate(start);
    }
}

fn parse_ordinal(e: &LfExpr) -> usize {
    match e {
        LfExpr::Const(t) => t.parse().unwrap_or(1),
        _ => 1,
    }
}

fn realize_once_into(expr: &LfExpr, rng: &mut impl Rng, dst: &mut String, pool: &mut StrPool) {
    let mut raw = pool.take();
    claim_into(expr, rng, &mut raw, pool);
    finish_sentence(&raw, '.', dst);
    pool.put(raw);
}

/// Appends the raw (pre-tidy) claim text for the root operator.
fn claim_into(expr: &LfExpr, rng: &mut impl Rng, out: &mut String, pool: &mut StrPool) {
    use LfOp::*;
    match expr {
        LfExpr::Apply(op, args) => match op {
            Eq | RoundEq | NotEq => comparison_into(*op, &args[0], &args[1], rng, out, pool),
            Greater | Less => {
                // Draw order: comparative word first, copula second —
                // matching the historical form, where the comparative was
                // chosen before the format's copula draw.
                let cmp =
                    if matches!(op, Greater) { MORE_THAN.pick(rng) } else { LESS_THAN.pick(rng) };
                describe_scalar_into(&args[0], out);
                out.push(' ');
                out.push_str(IS_ARE.pick(rng));
                out.push(' ');
                out.push_str(cmp);
                out.push(' ');
                describe_scalar_into(&args[1], out);
            }
            And => {
                let mut a = pool.take();
                let mut b = pool.take();
                realize_once_into(&args[0], rng, &mut a, pool);
                realize_once_into(&args[1], rng, &mut b, pool);
                out.push_str(a.trim_end_matches(['.', '?']));
                out.push_str(" and ");
                let btrim = b.trim_end_matches(['.', '?']);
                let mut chars = btrim.chars();
                if let Some(first) = chars.next() {
                    out.extend(first.to_lowercase());
                    out.push_str(chars.as_str());
                }
                pool.put(b);
                pool.put(a);
            }
            Only => {
                out.push_str("there is only one row ");
                view_clause_into(&args[0], rng, out);
            }
            AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq | MostEq
            | MostNotEq | MostGreater | MostLess | MostGreaterEq | MostLessEq => {
                let quant = if matches!(
                    op,
                    AllEq | AllNotEq | AllGreater | AllLess | AllGreaterEq | AllLessEq
                ) {
                    ALL_OF.pick(rng)
                } else {
                    MAJORITY.pick(rng)
                };
                out.push_str(quant);
                out.push_str(" rows");
                let inner_start = out.len();
                out.push(' ');
                let clause_start = out.len();
                view_clause_into(&args[0], rng, out);
                if out.len() == clause_start {
                    out.truncate(inner_start);
                }
                out.push_str(" have a ");
                leaf_into(&args[1], out);
                match op {
                    AllEq | MostEq => out.push_str(" of "),
                    AllNotEq | MostNotEq => out.push_str(" other than "),
                    AllGreater | MostGreater => {
                        out.push(' ');
                        out.push_str(MORE_THAN.pick(rng));
                        out.push(' ');
                    }
                    AllLess | MostLess => {
                        out.push(' ');
                        out.push_str(LESS_THAN.pick(rng));
                        out.push(' ');
                    }
                    AllGreaterEq | MostGreaterEq => out.push_str(" of at least "),
                    AllLessEq | MostLessEq => out.push_str(" of at most "),
                    // The outer arm admits only the quantifier ops above;
                    // any future op falls back to the eq frame.
                    _ => out.push_str(" of "),
                }
                leaf_into(&args[2], out);
            }
            _ => describe_scalar_into(expr, out),
        },
        other => leaf_into(other, out),
    }
}

fn comparison_into(
    op: LfOp,
    lhs: &LfExpr,
    rhs: &LfExpr,
    rng: &mut impl Rng,
    out: &mut String,
    pool: &mut StrPool,
) {
    use LfOp::*;
    // Count claims: "there are N rows ..."
    if let LfExpr::Apply(Count, count_args) = lhs {
        let mut clause = pool.take();
        view_clause_into(&count_args[0], rng, &mut clause);
        let frame = rng.gen_range(0..2);
        if op == NotEq {
            out.push_str("it is not the case that ");
        }
        if clause.is_empty() {
            match frame {
                0 => {
                    out.push_str("there are ");
                    leaf_into(rhs, out);
                    out.push_str(" rows in the table");
                }
                _ => {
                    out.push_str("the table has ");
                    leaf_into(rhs, out);
                    out.push_str(" rows");
                }
            }
        } else {
            match frame {
                0 => {
                    out.push_str("there are ");
                    leaf_into(rhs, out);
                    out.push_str(" rows ");
                    out.push_str(&clause);
                }
                _ => {
                    leaf_into(rhs, out);
                    out.push_str(" of the rows are ");
                    out.push_str(&clause);
                }
            }
        }
        pool.put(clause);
        return;
    }
    // Superlative / ordinal hop claims: "{v} has the highest {col}".
    if let LfExpr::Apply(Hop, hop_args) = lhs {
        if let LfExpr::Apply(inner_op, inner_args) = &hop_args[0] {
            if matches!(inner_op, Argmax | Argmin | NthArgmax | NthArgmin) {
                let mut adj = pool.take();
                match inner_op {
                    Argmax => adj.push_str(MOST.pick(rng)),
                    Argmin => adj.push_str(LEAST.pick(rng)),
                    NthArgmax => {
                        ordinal_into(parse_ordinal(&inner_args[2]), &mut adj);
                        adj.push_str(" highest");
                    }
                    NthArgmin => {
                        ordinal_into(parse_ordinal(&inner_args[2]), &mut adj);
                        adj.push_str(" lowest");
                    }
                    // Guarded by the matches! above; fall back to the
                    // superlative frame for any future row op.
                    _ => adj.push_str(MOST.pick(rng)),
                }
                let frame = rng.gen_range(0..2);
                if op == NotEq {
                    out.push_str("it is not the case that ");
                }
                match frame {
                    0 => {
                        out.push_str("the ");
                        leaf_into(&hop_args[1], out);
                        out.push_str(" with the ");
                        out.push_str(&adj);
                        out.push(' ');
                        leaf_into(&inner_args[1], out);
                        out.push(' ');
                        view_np_into(&inner_args[0], out);
                        out.push(' ');
                        out.push_str(IS_ARE.pick(rng));
                        out.push(' ');
                        leaf_into(rhs, out);
                    }
                    _ => {
                        leaf_into(rhs, out);
                        out.push_str(" has the ");
                        out.push_str(&adj);
                        out.push(' ');
                        leaf_into(&inner_args[1], out);
                        out.push(' ');
                        view_np_into(&inner_args[0], out);
                    }
                }
                pool.put(adj);
                return;
            }
        }
    }
    // Generic scalar comparison.
    if op == NotEq {
        out.push_str("it is not the case that ");
    }
    describe_scalar_into(lhs, out);
    out.push(' ');
    out.push_str(IS_ARE.pick(rng));
    out.push(' ');
    describe_scalar_into(rhs, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicforms::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn realize(form: &str, seed: u64) -> String {
        let e = parse(form).unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(seed);
        realize_logic(&e, &mut rng, 1).remove(0)
    }

    #[test]
    fn count_claim() {
        let c = realize("eq { count { filter_eq { all_rows ; material ; PLA } } ; 2 }", 1);
        let lower = c.to_lowercase();
        assert!(lower.contains('2'), "{c}");
        assert!(lower.contains("material"), "{c}");
        assert!(lower.contains("pla"), "{c}");
        assert!(c.ends_with('.'));
    }

    #[test]
    fn superlative_claim() {
        let c = realize("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }", 2);
        let lower = c.to_lowercase();
        assert!(lower.contains("p300"), "{c}");
        assert!(lower.contains("speed"), "{c}");
        assert!(
            ["highest", "most", "greatest", "largest", "top", "maximum"]
                .iter()
                .any(|w| lower.contains(w)),
            "{c}"
        );
    }

    #[test]
    fn ordinal_claim() {
        let c = realize("eq { hop { nth_argmax { all_rows ; price ; 2 } ; model } ; P400 }", 3);
        assert!(c.to_lowercase().contains("second highest"), "{c}");
    }

    #[test]
    fn aggregation_claim() {
        let c = realize("round_eq { avg { all_rows ; price } ; 311.5 }", 4);
        let lower = c.to_lowercase();
        assert!(lower.contains("average") || lower.contains("mean"), "{c}");
        assert!(lower.contains("311.5"), "{c}");
    }

    #[test]
    fn majority_claim() {
        let c = realize("most_greater { all_rows ; speed ; 70 }", 5);
        let lower = c.to_lowercase();
        assert!(lower.contains("most of the") || lower.contains("majority"), "{c}");
        assert!(lower.contains("70"), "{c}");
    }

    #[test]
    fn all_claim() {
        let c = realize("all_greater { all_rows ; price ; 100 }", 6);
        let lower = c.to_lowercase();
        assert!(lower.contains("all") || lower.contains("every"), "{c}");
    }

    #[test]
    fn unique_claim() {
        let c = realize("only { filter_eq { all_rows ; material ; ABS } }", 7);
        let lower = c.to_lowercase();
        assert!(lower.contains("only one"), "{c}");
        assert!(lower.contains("abs"), "{c}");
    }

    #[test]
    fn comparative_claim() {
        let c = realize(
            "greater { hop { filter_eq { all_rows ; model ; P200 } ; price } ; hop { filter_eq { all_rows ; model ; P100 } ; price } }",
            8,
        );
        let lower = c.to_lowercase();
        assert!(lower.contains("p200"), "{c}");
        assert!(lower.contains("p100"), "{c}");
    }

    #[test]
    fn negated_claim() {
        let c = realize("not_eq { count { all_rows } ; 5 }", 9);
        assert!(c.to_lowercase().contains("not the case"), "{c}");
    }

    #[test]
    fn conjunction_claim() {
        let c = realize(
            "and { eq { count { all_rows } ; 4 } ; greater { max { all_rows ; speed } ; 90 } }",
            10,
        );
        assert!(c.contains(" and "), "{c}");
        assert_eq!(c.matches('.').count(), 1, "{c}");
    }

    #[test]
    fn filtered_view_clause() {
        let c = realize(
            "eq { count { filter_greater { filter_eq { all_rows ; material ; PLA } ; price ; 200 } } ; 1 }",
            11,
        );
        let lower = c.to_lowercase();
        assert!(lower.contains("pla") && lower.contains("200"), "{c}");
        assert!(lower.contains(" and "), "{c}");
    }

    #[test]
    fn candidates_vary() {
        let e = parse("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(12);
        let cands = realize_logic(&e, &mut rng, 8);
        assert!(cands.len() > 1, "{cands:?}");
    }

    #[test]
    fn pooled_form_matches_fresh_buffers() {
        let forms = [
            "eq { count { filter_eq { all_rows ; material ; PLA } } ; 2 }",
            "eq { hop { argmax { all_rows ; speed } ; model } ; P300 }",
            "eq { hop { nth_argmax { all_rows ; price ; 2 } ; model } ; P400 }",
            "round_eq { avg { all_rows ; price } ; 311.5 }",
            "most_greater { all_rows ; speed ; 70 }",
            "only { filter_eq { all_rows ; material ; ABS } }",
            "not_eq { count { all_rows } ; 5 }",
            "and { eq { count { all_rows } ; 4 } ; greater { max { all_rows ; speed } ; 90 } }",
            "greater { hop { filter_eq { all_rows ; model ; P200 } ; price } ; hop { filter_eq { all_rows ; model ; P100 } ; price } }",
            "all_less { filter_greater { all_rows ; price ; 10 } ; speed ; 99 }",
        ];
        let mut out = Vec::new();
        let mut pool = StrPool::default();
        for (i, form) in forms.iter().enumerate() {
            let e = parse(form).unwrap_or_else(|e| panic!("parse: {e}"));
            let fresh = {
                let mut rng = StdRng::seed_from_u64(90 + i as u64);
                realize_logic(&e, &mut rng, 6)
            };
            let mut rng = StdRng::seed_from_u64(90 + i as u64);
            realize_logic_pooled(&e, &mut rng, 6, &mut out, &mut pool);
            assert_eq!(out, fresh, "pooled candidates diverge for {form}");
        }
    }
}
