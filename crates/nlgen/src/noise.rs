//! Generation-noise channel.
//!
//! The paper's analysis of generated text (§V-F) finds that "in some cases,
//! the generated text loses some critical information or contains
//! inaccurate information". The noise channel reproduces those error modes
//! at a configurable rate so the synthetic training distribution matches a
//! real fine-tuned generator rather than an unrealistically clean oracle:
//!
//! * **drop** — a non-content token disappears;
//! * **swap** — two adjacent tokens transpose;
//! * **synonym drift** — a function word is replaced by a near-synonym.

use rand::seq::SliceRandom;
use rand::Rng;

/// Noise configuration.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Probability that a sentence receives any corruption at all.
    pub sentence_rate: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        // Roughly matches the error frequency visible in paper Table IX.
        NoiseConfig { sentence_rate: 0.12 }
    }
}

impl NoiseConfig {
    /// A channel that never corrupts (for ablations).
    pub fn off() -> NoiseConfig {
        NoiseConfig { sentence_rate: 0.0 }
    }
}

const DRIFT_PAIRS: &[(&str, &str)] = &[
    ("between", "among"),
    ("highest", "greatest"),
    ("lowest", "smallest"),
    ("total", "overall"),
    ("change", "shift"),
    ("rows", "entries"),
    ("when", "where"),
];

/// Applies the noise channel to a sentence.
pub fn apply_noise(text: &str, cfg: NoiseConfig, rng: &mut impl Rng) -> String {
    if cfg.sentence_rate <= 0.0 || !rng.gen_bool(cfg.sentence_rate.min(1.0)) {
        return text.to_string();
    }
    let terminal = text.chars().last().filter(|c| ['.', '?', '!'].contains(c));
    let body = match terminal {
        Some(_) => &text[..text.len() - 1],
        None => text,
    };
    let mut words: Vec<String> = body.split_whitespace().map(str::to_string).collect();
    if words.len() < 4 {
        return text.to_string();
    }
    match rng.gen_range(0..3) {
        // Drop a short (function-ish) word from the middle.
        0 => {
            let candidates: Vec<usize> = (1..words.len() - 1)
                .filter(|&i| words[i].len() <= 4 && words[i].chars().all(|c| c.is_alphabetic()))
                .collect();
            if let Some(&i) = candidates.choose(rng) {
                words.remove(i);
            }
        }
        // Transpose two adjacent middle words.
        1 => {
            let i = rng.gen_range(1..words.len() - 2);
            words.swap(i, i + 1);
        }
        // Synonym drift.
        _ => {
            let mut hit = false;
            for w in &mut words {
                if hit {
                    break;
                }
                for (from, to) in DRIFT_PAIRS {
                    if w.eq_ignore_ascii_case(from) {
                        *w = (*to).to_string();
                        hit = true;
                        break;
                    }
                }
            }
        }
    }
    let mut out = words.join(" ");
    if let Some(t) = terminal {
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn off_channel_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = "Which team has the highest score?";
        assert_eq!(apply_noise(s, NoiseConfig::off(), &mut rng), s);
    }

    #[test]
    fn full_rate_changes_most_sentences() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = NoiseConfig { sentence_rate: 1.0 };
        let s = "Which team has the highest total score in the table?";
        let changed = (0..50).filter(|_| apply_noise(s, cfg, &mut rng) != s).count();
        assert!(changed > 30, "only {changed}/50 corrupted");
    }

    #[test]
    fn preserves_terminal_punctuation() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = NoiseConfig { sentence_rate: 1.0 };
        for _ in 0..20 {
            let out = apply_noise("What is the total change between 2018 and 2019?", cfg, &mut rng);
            assert!(out.ends_with('?'), "{out}");
        }
    }

    #[test]
    fn short_sentences_untouched() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = NoiseConfig { sentence_rate: 1.0 };
        assert_eq!(apply_noise("Too short now.", cfg, &mut rng), "Too short now.");
    }

    #[test]
    fn noise_is_rng_deterministic() {
        let cfg = NoiseConfig { sentence_rate: 1.0 };
        let s = "How many rows have a score greater than fifty points?";
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| apply_noise(s, cfg, &mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| apply_noise(s, cfg, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn default_rate_moderate() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = NoiseConfig::default();
        let s = "How many rows have a score greater than fifty points?";
        let changed = (0..200).filter(|_| apply_noise(s, cfg, &mut rng) != s).count();
        assert!(changed > 5 && changed < 60, "{changed}/200");
    }
}
