//! Lexical resources for surface realization.
//!
//! The neural NL-Generator of the paper owes its output diversity to the
//! fine-tuning corpus; our grammar-based substitute gets diversity from a
//! lexicon of interchangeable word choices per semantic slot. Each slot's
//! alternatives were chosen to mirror the phrasings observed in SQUALL /
//! Logic2Text / FinQA gold questions (see paper Table IX).

use rand::seq::SliceRandom;
use rand::Rng;

/// Synonym bank for one semantic slot.
#[derive(Debug, Clone)]
pub struct Slot {
    options: &'static [&'static str],
}

impl Slot {
    pub const fn new(options: &'static [&'static str]) -> Slot {
        Slot { options }
    }

    /// Picks one alternative at random.
    pub fn pick(&self, rng: &mut impl Rng) -> &'static str {
        self.options.choose(rng).copied().unwrap_or("")
    }

    /// All alternatives (used to enumerate candidate realizations).
    pub fn all(&self) -> &'static [&'static str] {
        self.options
    }
}

/// Superlative adjectives for "maximum".
pub const MOST: Slot = Slot::new(&["highest", "most", "greatest", "largest", "top", "maximum"]);
/// Superlative adjectives for "minimum".
pub const LEAST: Slot = Slot::new(&["lowest", "least", "smallest", "fewest", "minimum"]);
/// Wh-starters for entity questions.
pub const WHICH: Slot = Slot::new(&["which", "what"]);
/// Question verbs for numeric lookups.
pub const WHAT_IS: Slot = Slot::new(&["what is", "what was", "what's"]);
/// Counting starters.
pub const HOW_MANY: Slot = Slot::new(&["how many", "what number of"]);
/// "more than" comparatives.
pub const MORE_THAN: Slot =
    Slot::new(&["more than", "greater than", "above", "over", "higher than"]);
/// "less than" comparatives.
pub const LESS_THAN: Slot = Slot::new(&["less than", "fewer than", "below", "under", "lower than"]);
/// Total/sum nouns.
pub const TOTAL: Slot = Slot::new(&["total", "sum", "combined total"]);
/// Average nouns.
pub const AVERAGE: Slot = Slot::new(&["average", "mean"]);
/// Difference nouns.
pub const DIFFERENCE: Slot = Slot::new(&["difference", "change", "gap"]);
/// Percentage-change phrasings.
pub const PCT_CHANGE: Slot = Slot::new(&["percentage change", "percent change", "relative change"]);
/// Claim copulas.
pub const IS_ARE: Slot = Slot::new(&["is", "was"]);
/// Majority adverbs ("most of the").
pub const MAJORITY: Slot = Slot::new(&["most of the", "the majority of"]);
/// Universal adverbs ("all of the").
pub const ALL_OF: Slot = Slot::new(&["all of the", "every", "all"]);
/// Ordinal words 1..=9 (index 0 unused).
pub const ORDINALS: [&str; 10] = [
    "zeroth", "first", "second", "third", "fourth", "fifth", "sixth", "seventh", "eighth", "ninth",
];

/// Renders an ordinal (1 -> "first", 12 -> "12th").
pub fn ordinal_word(n: usize) -> String {
    let mut out = String::new();
    ordinal_into(n, &mut out);
    out
}

/// [`ordinal_word`] appending to a caller-owned buffer.
pub fn ordinal_into(n: usize, out: &mut String) {
    use std::fmt::Write as _;
    if n < ORDINALS.len() {
        out.push_str(ORDINALS[n]);
    } else {
        let suffix = match (n % 10, n % 100) {
            (1, 11) | (2, 12) | (3, 13) => "th",
            (1, _) => "st",
            (2, _) => "nd",
            (3, _) => "rd",
            _ => "th",
        };
        let _ = write!(out, "{n}{suffix}");
    }
}

/// "a" vs "an".
pub fn article(word: &str) -> &'static str {
    match word.chars().next().map(|c| c.to_ascii_lowercase()) {
        Some('a' | 'e' | 'i' | 'o' | 'u') => "an",
        _ => "a",
    }
}

/// Naive pluralization for count phrasings ("row" -> "rows").
pub fn pluralize(word: &str) -> String {
    let mut out = String::with_capacity(word.len() + 3);
    pluralize_into(word, &mut out);
    out
}

/// [`pluralize`] appending to a caller-owned buffer.
pub fn pluralize_into(word: &str, out: &mut String) {
    if word.ends_with('s') || word.ends_with("sh") || word.ends_with("ch") || word.ends_with('x') {
        out.push_str(word);
        out.push_str("es");
    } else if word.ends_with('y')
        && !word.ends_with("ay")
        && !word.ends_with("ey")
        && !word.ends_with("oy")
        && !word.ends_with("uy")
    {
        out.push_str(&word[..word.len() - 1]);
        out.push_str("ies");
    } else {
        out.push_str(word);
        out.push('s');
    }
}

/// Capitalizes the first character and ensures terminal punctuation.
pub fn sentence_case(text: &str, terminal: char) -> String {
    let trimmed = text.trim();
    let mut out = String::with_capacity(trimmed.len() + 1);
    let mut chars = trimmed.chars();
    if let Some(first) = chars.next() {
        out.extend(first.to_uppercase());
        out.push_str(chars.as_str());
    }
    if !out.ends_with(['.', '?', '!']) {
        out.push(terminal);
    }
    out
}

/// One-pass `sentence_case(&tidy(text), terminal)` into a caller-owned
/// buffer: collapses doubled spaces, trims, capitalizes the first
/// character, and ensures terminal punctuation. `dst` is cleared first.
pub fn finish_sentence(src: &str, terminal: char, dst: &mut String) {
    dst.clear();
    dst.reserve(src.len() + 1);
    let mut started = false;
    let mut pending_space = false;
    for c in src.chars() {
        if c == ' ' {
            // Leading spaces are trimmed; interior runs collapse to one,
            // emitted lazily so trailing spaces are trimmed too.
            if started {
                pending_space = true;
            }
            continue;
        }
        if pending_space {
            dst.push(' ');
            pending_space = false;
        }
        if started {
            dst.push(c);
        } else {
            dst.extend(c.to_uppercase());
            started = true;
        }
    }
    if !dst.ends_with(['.', '?', '!']) {
        dst.push(terminal);
    }
}

/// Collapses doubled spaces left by empty slots.
pub fn tidy(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = false;
    for c in text.chars() {
        if c == ' ' {
            if !last_space {
                out.push(c);
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn slots_pick_from_options() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert!(MOST.all().contains(&MOST.pick(&mut rng)));
        }
    }

    #[test]
    fn ordinal_words() {
        assert_eq!(ordinal_word(1), "first");
        assert_eq!(ordinal_word(3), "third");
        assert_eq!(ordinal_word(12), "12th");
        assert_eq!(ordinal_word(21), "21st");
        assert_eq!(ordinal_word(22), "22nd");
        assert_eq!(ordinal_word(23), "23rd");
        assert_eq!(ordinal_word(24), "24th");
    }

    #[test]
    fn articles() {
        assert_eq!(article("apple"), "an");
        assert_eq!(article("banana"), "a");
        assert_eq!(article("Orange"), "an");
    }

    #[test]
    fn plurals() {
        assert_eq!(pluralize("row"), "rows");
        assert_eq!(pluralize("match"), "matches");
        assert_eq!(pluralize("city"), "cities");
        assert_eq!(pluralize("day"), "days");
        assert_eq!(pluralize("boss"), "bosses");
    }

    #[test]
    fn sentence_case_adds_punct() {
        assert_eq!(sentence_case("which team won", '?'), "Which team won?");
        assert_eq!(sentence_case("it is true", '.'), "It is true.");
        assert_eq!(sentence_case("already done.", '.'), "Already done.");
    }

    #[test]
    fn tidy_collapses_spaces() {
        assert_eq!(tidy("a  b   c "), "a b c");
    }
}
