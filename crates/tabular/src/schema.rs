//! Column schemas and type inference.
//!
//! UCTR's program sampling is *type-directed*: a SQL template placeholder
//! `c2_number` may only be filled with a numeric column, and arithmetic
//! expressions only apply to numeric cells (paper §IV-C). The schema layer
//! records the inferred type of each column so the sampler can respect
//! those constraints.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The inferred type of a table column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// Predominantly numeric cells.
    Number,
    /// Predominantly date cells.
    Date,
    /// Predominantly boolean cells.
    Bool,
    /// Everything else (including mixed columns).
    Text,
}

impl ColumnType {
    /// Whether a value of this type supports arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, ColumnType::Number | ColumnType::Date)
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Number => "number",
            ColumnType::Date => "date",
            ColumnType::Bool => "bool",
            ColumnType::Text => "text",
        };
        f.write_str(s)
    }
}

/// Metadata for a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Header text as it appears in the table.
    pub name: String,
    /// Inferred type.
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Column {
        Column { name: name.into(), ty }
    }
}

/// An ordered collection of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Case-insensitive lookup of a column index by header name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Indexes of all columns of the given type.
    pub fn columns_of_type(&self, ty: ColumnType) -> Vec<usize> {
        self.columns.iter().enumerate().filter(|(_, c)| c.ty == ty).map(|(i, _)| i).collect()
    }

    /// Indexes of all numeric columns (numbers or dates).
    pub fn numeric_columns(&self) -> Vec<usize> {
        self.columns.iter().enumerate().filter(|(_, c)| c.ty.is_numeric()).map(|(i, _)| i).collect()
    }

    pub fn push(&mut self, col: Column) {
        self.columns.push(col);
    }
}

/// Infers a column type from a sample of its values.
///
/// A column is typed `Number`/`Date`/`Bool` when a strict majority (> 60%) of
/// its non-null cells parse as that type; otherwise it is `Text`. This
/// mirrors how SQUALL annotates `_number` columns: mostly-numeric columns
/// with an occasional stray footnote still count as numeric.
pub fn infer_column_type(values: &[Value]) -> ColumnType {
    let mut num = 0usize;
    let mut date = 0usize;
    let mut boolean = 0usize;
    let mut non_null = 0usize;
    for v in values {
        match v {
            Value::Null => {}
            Value::Number(_) => {
                non_null += 1;
                num += 1;
            }
            Value::Date(_) => {
                non_null += 1;
                date += 1;
            }
            Value::Bool(_) => {
                non_null += 1;
                boolean += 1;
            }
            Value::Text(_) => non_null += 1,
        }
    }
    if non_null == 0 {
        return ColumnType::Text;
    }
    let thresh = (non_null as f64 * 0.6).ceil() as usize;
    if num >= thresh {
        ColumnType::Number
    } else if date >= thresh {
        ColumnType::Date
    } else if boolean >= thresh {
        ColumnType::Bool
    } else {
        ColumnType::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Date;

    #[test]
    fn infer_numeric_majority() {
        let vals = vec![
            Value::Number(1.0),
            Value::Number(2.0),
            Value::Text("n/a footnote".into()),
            Value::Number(3.0),
        ];
        assert_eq!(infer_column_type(&vals), ColumnType::Number);
    }

    #[test]
    fn infer_text_when_mixed() {
        let vals = vec![Value::Number(1.0), Value::Text("a".into()), Value::Text("b".into())];
        assert_eq!(infer_column_type(&vals), ColumnType::Text);
    }

    #[test]
    fn infer_dates() {
        let vals = vec![
            Value::Date(Date::new(2001, 1, 1).unwrap_or_else(|| panic!("date"))),
            Value::Date(Date::new(2002, 2, 2).unwrap_or_else(|| panic!("date"))),
            Value::Null,
        ];
        assert_eq!(infer_column_type(&vals), ColumnType::Date);
    }

    #[test]
    fn infer_empty_column_is_text() {
        assert_eq!(infer_column_type(&[]), ColumnType::Text);
        assert_eq!(infer_column_type(&[Value::Null, Value::Null]), ColumnType::Text);
    }

    #[test]
    fn schema_lookup_case_insensitive() {
        let s = Schema::new(vec![
            Column::new("Name", ColumnType::Text),
            Column::new("Score", ColumnType::Number),
        ]);
        assert_eq!(s.index_of("score"), Some(1));
        assert_eq!(s.index_of("NAME"), Some(0));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn columns_of_type_filters() {
        let s = Schema::new(vec![
            Column::new("a", ColumnType::Text),
            Column::new("b", ColumnType::Number),
            Column::new("c", ColumnType::Number),
            Column::new("d", ColumnType::Date),
        ]);
        assert_eq!(s.columns_of_type(ColumnType::Number), vec![1, 2]);
        assert_eq!(s.numeric_columns(), vec![1, 2, 3]);
    }
}
