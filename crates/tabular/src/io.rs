//! CSV and JSON (de)serialization for tables.
//!
//! The experiment harness writes generated corpora to disk and the examples
//! load tables from CSV, so the table type needs a small, dependency-light
//! I/O layer. The CSV dialect here supports quoted fields with embedded
//! commas/newlines and doubled-quote escapes — enough for the synthetic
//! corpora and typical exported spreadsheets.

use crate::table::{Table, TableError};
use std::fmt;

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote { line: usize },
    /// Structural error constructing the table.
    Table(TableError),
    /// Input had no header row.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::Table(e) => write!(f, "{e}"),
            CsvError::Empty => write!(f, "empty CSV input"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<TableError> for CsvError {
    fn from(e: TableError) -> Self {
        CsvError::Table(e)
    }
}

/// Splits CSV text into records of fields, honoring quotes.
pub fn parse_csv_records(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut quote_start_line = 1usize;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quote_start_line = line;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    // Skip blank lines.
                    if !(record.len() == 1 && record[0].is_empty()) {
                        records.push(std::mem::take(&mut record));
                    } else {
                        record.clear();
                    }
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: quote_start_line });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Parses a CSV document (first record = header) into a typed [`Table`].
pub fn table_from_csv(title: &str, input: &str) -> Result<Table, CsvError> {
    let records = parse_csv_records(input)?;
    if records.is_empty() {
        return Err(CsvError::Empty);
    }
    let grid: Vec<Vec<&str>> =
        records.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
    Ok(Table::from_strings(title, &grid)?)
}

/// Quotes a CSV field if it contains a delimiter, quote, or newline.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes a table to CSV (header + rows).
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> =
        table.schema().columns().iter().map(|c| quote_field(&c.name)).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row.iter().map(|v| quote_field(&v.to_string())).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn csv(text: &str) -> Table {
        table_from_csv("t", text).unwrap_or_else(|e| panic!("csv: {e:?}"))
    }

    #[test]
    fn simple_roundtrip() {
        let csv = "name,score\nalpha,3\nbeta,5\n";
        let t = self::csv(csv);
        assert_eq!(t.n_rows(), 2);
        let col = t.schema().column(1).unwrap_or_else(|| panic!("column 1"));
        assert_eq!(col.ty, ColumnType::Number);
        let back = table_to_csv(&t);
        let t2 = self::csv(&back);
        assert_eq!(t.rows(), t2.rows());
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "name,desc\n\"Smith, John\",\"said \"\"hi\"\"\"\n";
        let t = self::csv(csv);
        assert_eq!(t.cell(0, 0).unwrap_or_else(|| panic!("cell 0,0")).to_string(), "Smith, John");
        assert_eq!(t.cell(0, 1).unwrap_or_else(|| panic!("cell 0,1")).to_string(), "said \"hi\"");
    }

    #[test]
    fn quoted_newline_preserved() {
        let csv = "a,b\n\"line1\nline2\",x\n";
        let t = self::csv(csv);
        assert_eq!(t.cell(0, 0).unwrap_or_else(|| panic!("cell 0,0")).to_string(), "line1\nline2");
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = table_from_csv("t", "a,b\n\"oops,1\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a\n1\n\n2\n";
        let t = self::csv(csv);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(table_from_csv("t", "").unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn crlf_tolerated() {
        let t = csv("a,b\r\n1,2\r\n");
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.n_cols(), 2);
    }

    #[test]
    fn json_roundtrip_via_serde() {
        let t = csv("a,b\n1,x\n");
        let json = serde_json::to_string(&t).unwrap_or_else(|e| panic!("serialize: {e}"));
        let t2: Table = serde_json::from_str(&json).unwrap_or_else(|e| panic!("deserialize: {e}"));
        assert_eq!(t, t2);
    }
}
