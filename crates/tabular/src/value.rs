//! Cell values and their total ordering.
//!
//! Tabular reasoning constantly compares, sorts and aggregates cell values of
//! mixed provenance (strings scraped from Wikipedia infoboxes, currency
//! amounts from financial reports, dates from schedules). `Value` is the
//! single dynamic value type used across the workspace: every program
//! executor (SQL, logical forms, arithmetic expressions) consumes and
//! produces `Value`s.
//!
//! Unlike `f64`, `Value` has a *total* order (`Ord`): numbers sort before
//! text, `Null` sorts first, and NaN is normalized away at construction so
//! sorting and superlative operators (`argmax`, `ORDER BY`) are always
//! well-defined.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A calendar date (no time component), as found in table cells.
///
/// Only validity checks needed for ordering and display are performed; the
/// synthetic corpora only generate valid dates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl Date {
    /// Creates a date, returning `None` if the month/day are out of range.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Parses `YYYY-MM-DD`, `YYYY/MM/DD`, or `Month D, YYYY` forms.
    pub fn parse(s: &str) -> Option<Date> {
        let s = s.trim();
        for sep in ['-', '/'] {
            let mut parts = s.split(sep);
            let (a, b, c) = (parts.next(), parts.next(), parts.next());
            if let (Some(a), Some(b), Some(c), None) = (a, b, c, parts.next()) {
                let y = a.parse::<i32>().ok()?;
                let m = b.parse::<u8>().ok()?;
                let d = c.parse::<u8>().ok()?;
                return Date::new(y, m, d);
            }
        }
        // "January 5, 1999": tokens separated by commas and/or whitespace.
        let mut toks = s.split(|c: char| c == ',' || c.is_whitespace()).filter(|t| !t.is_empty());
        let (a, b, c) = (toks.next(), toks.next(), toks.next());
        if let (Some(a), Some(b), Some(c), None) = (a, b, c, toks.next()) {
            let m = month_from_name(a)?;
            let d = b.parse::<u8>().ok()?;
            let y = c.parse::<i32>().ok()?;
            return Date::new(y, m, d);
        }
        None
    }

    /// Days since a fixed epoch-ish origin; monotone in calendar order, used
    /// for date arithmetic in programs (e.g. `diff` on date columns).
    pub fn ordinal(&self) -> i64 {
        let mut days = i64::from(self.year) * 365 + i64::from(self.year / 4)
            - i64::from(self.year / 100)
            + i64::from(self.year / 400);
        for m in 1..self.month {
            days += i64::from(days_in_month(self.year, m));
        }
        days + i64::from(self.day)
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn month_from_name(name: &str) -> Option<u8> {
    const MONTHS: [&str; 12] = [
        "january",
        "february",
        "march",
        "april",
        "may",
        "june",
        "july",
        "august",
        "september",
        "october",
        "november",
        "december",
    ];
    let lower = name.to_ascii_lowercase();
    MONTHS
        .iter()
        .position(|m| *m == lower || m.starts_with(&lower) && lower.len() >= 3)
        .map(|i| (i + 1) as u8)
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A dynamically typed table cell value.
///
/// `Number` holds a finite `f64` (NaN/inf are rejected at construction),
/// which covers both the integer counts and the decimal financial figures
/// that appear in the UCTR corpora.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing / empty cell.
    Null,
    /// Boolean, produced by logical-form executors.
    Bool(bool),
    /// A finite numeric value.
    Number(f64),
    /// A calendar date.
    Date(Date),
    /// Free-form text.
    Text(String),
}

impl Value {
    /// Builds a `Number`, normalizing non-finite input to `Null` so that the
    /// total order is never violated downstream.
    pub fn number(x: f64) -> Value {
        if x.is_finite() {
            Value::Number(x)
        } else {
            Value::Null
        }
    }

    /// Builds a `Text` value, trimming surrounding whitespace.
    pub fn text(s: impl Into<String>) -> Value {
        let s: String = s.into();
        Value::Text(s.trim().to_string())
    }

    /// Parses a raw cell string with light type sniffing: empty → `Null`,
    /// numeric (with optional `$`, `%`, thousands separators) → `Number`,
    /// date-like → `Date`, otherwise `Text`.
    pub fn parse(raw: &str) -> Value {
        let s = raw.trim();
        if s.is_empty()
            || s == "-"
            || s.eq_ignore_ascii_case("n/a")
            || s.eq_ignore_ascii_case("none")
        {
            return Value::Null;
        }
        if let Some(n) = parse_numeric(s) {
            return Value::Number(n);
        }
        if let Some(d) = Date::parse(s) {
            return Value::Date(d);
        }
        if s.eq_ignore_ascii_case("true") || s.eq_ignore_ascii_case("yes") {
            Value::Bool(true)
        } else if s.eq_ignore_ascii_case("false") || s.eq_ignore_ascii_case("no") {
            Value::Bool(false)
        } else {
            Value::Text(s.to_string())
        }
    }

    /// Returns the numeric content, if this value is (or trivially coerces
    /// to) a number. Dates coerce to their ordinal so date columns support
    /// comparisons and `diff`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Date(d) => Some(d.ordinal() as f64),
            _ => None,
        }
    }

    /// Returns the text content for `Text` values.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Type tag used for ordering across variants and for schema inference.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::Date(_) => 3,
            Value::Text(_) => 4,
        }
    }

    /// Loose equality used by program executors: numbers compare with a
    /// relative epsilon (generated data goes through `f64` formatting round
    /// trips), text compares case-insensitively.
    pub fn loosely_equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => nearly_equal(*a, *b),
            (Value::Text(a), Value::Text(b)) => a.eq_ignore_ascii_case(b),
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Null, Value::Null) => true,
            // Cross-type numeric coercion (e.g. "3" parsed as text vs 3.0).
            _ => match (self.as_number(), other.as_number()) {
                (Some(a), Some(b)) => nearly_equal(a, b),
                _ => false,
            },
        }
    }
}

/// Relative-epsilon float equality used across all executors.
pub fn nearly_equal(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-6 * scale
}

fn parse_numeric(s: &str) -> Option<f64> {
    // Fast path: no financial punctuation to strip, parse the slice as-is
    // (same result as the scrubbing path below, which would copy the
    // string unchanged).
    if !s.contains([',', '$', '%', '(']) {
        let t = s.trim();
        if t.is_empty() {
            return None;
        }
        return t.parse::<f64>().ok().filter(|x| x.is_finite());
    }
    let mut cleaned = s.replace([',', '$', '%'], "");
    let mut negative = false;
    // Financial negatives: "(1,234)".
    if cleaned.starts_with('(') && cleaned.ends_with(')') {
        negative = true;
        cleaned = cleaned[1..cleaned.len() - 1].to_string();
    }
    let cleaned = cleaned.trim();
    if cleaned.is_empty() {
        return None;
    }
    // Reject things like "3 points" that `f64::from_str` would reject anyway,
    // but accept leading +/-.
    cleaned.parse::<f64>().ok().filter(|x| x.is_finite()).map(|x| if negative { -x } else { x })
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => a.to_bits() == b.to_bits() || a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Null, Value::Null) => true,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Number(n) => n.to_bits().hash(state),
            Value::Date(d) => d.hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            // Inline the integer fast path of `format_number` so Display
            // (the verbalization hot path) allocates nothing for the
            // common whole-number case.
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 1e15 => write!(f, "{}", *n as i64),
            Value::Number(n) => write!(f, "{}", format_number(*n)),
            Value::Date(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

/// Formats a number the way tables print them: integers without a decimal
/// point, everything else with up to 4 significant decimals.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        let s = format!("{n:.4}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_empty_is_null() {
        assert!(Value::parse("").is_null());
        assert!(Value::parse("  ").is_null());
        assert!(Value::parse("-").is_null());
        assert!(Value::parse("N/A").is_null());
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Value::parse("42"), Value::Number(42.0));
        assert_eq!(Value::parse("-3.5"), Value::Number(-3.5));
        assert_eq!(Value::parse("1,234"), Value::Number(1234.0));
        assert_eq!(Value::parse("$5,000"), Value::Number(5000.0));
        assert_eq!(Value::parse("12%"), Value::Number(12.0));
        assert_eq!(Value::parse("(1,234)"), Value::Number(-1234.0));
    }

    #[test]
    fn parse_dates() {
        assert_eq!(Value::parse("1999-01-05"), Value::Date(Date { year: 1999, month: 1, day: 5 }));
        assert_eq!(
            Value::parse("January 5, 1999"),
            Value::Date(Date { year: 1999, month: 1, day: 5 })
        );
        assert_eq!(
            Value::parse("2020/12/31"),
            Value::Date(Date { year: 2020, month: 12, day: 31 })
        );
    }

    #[test]
    fn parse_booleans_and_text() {
        assert_eq!(Value::parse("yes"), Value::Bool(true));
        assert_eq!(Value::parse("FALSE"), Value::Bool(false));
        assert_eq!(Value::parse("hello world"), Value::Text("hello world".into()));
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(Date::new(2021, 2, 29).is_none());
        assert!(Date::new(2020, 2, 29).is_some()); // leap year
        assert!(Date::new(2021, 13, 1).is_none());
        assert!(Date::new(2021, 4, 31).is_none());
    }

    #[test]
    fn date_parse_rejects_garbage() {
        assert!(Date::parse("Banuary 5, 1999").is_none());
        assert!(Date::parse("1999-13-01").is_none());
        assert!(Date::parse("1999-02-30").is_none());
        assert!(Date::parse("not a date").is_none());
        assert!(Date::parse("").is_none());
    }

    #[test]
    fn date_parse_month_prefixes() {
        // Abbreviated month names resolve by prefix.
        assert_eq!(Date::parse("Jan 5, 1999"), Date::new(1999, 1, 5));
        assert_eq!(Date::parse("Sep 1, 2000"), Date::new(2000, 9, 1));
    }

    #[test]
    fn date_ordinal_is_monotone() {
        let a = Date::new(1999, 12, 31).unwrap_or_else(|| panic!("date"));
        let b = Date::new(2000, 1, 1).unwrap_or_else(|| panic!("date"));
        assert!(a.ordinal() < b.ordinal());
        assert!(a < b);
    }

    #[test]
    fn total_order_across_types() {
        let mut vals = [
            Value::Text("abc".into()),
            Value::Number(1.0),
            Value::Null,
            Value::Bool(true),
            Value::Date(Date::new(2000, 1, 1).unwrap_or_else(|| panic!("date"))),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert!(matches!(vals[1], Value::Bool(_)));
        assert!(matches!(vals[2], Value::Number(_)));
        assert!(matches!(vals[3], Value::Date(_)));
        assert!(matches!(vals[4], Value::Text(_)));
    }

    #[test]
    fn non_finite_normalized() {
        assert!(Value::number(f64::NAN).is_null());
        assert!(Value::number(f64::INFINITY).is_null());
        assert_eq!(Value::number(1.5), Value::Number(1.5));
    }

    #[test]
    fn loose_equality() {
        assert!(Value::Number(0.1 + 0.2).loosely_equals(&Value::Number(0.3)));
        assert!(Value::text("Apple").loosely_equals(&Value::text("apple")));
        assert!(!Value::text("Apple").loosely_equals(&Value::text("pear")));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(42.0), "42");
        assert_eq!(format_number(3.5), "3.5");
        assert_eq!(format_number(4.98765), "4.9877");
        assert_eq!(format_number(-7.0), "-7");
    }

    #[test]
    fn display_roundtrip_via_parse_for_numbers() {
        for n in [0.0, 1.0, -2.5, 1234.0, 0.125] {
            let v = Value::Number(n);
            let reparsed = Value::parse(&v.to_string());
            assert!(v.loosely_equals(&reparsed), "{v} vs {reparsed}");
        }
    }
}
