//! Per-table execution context shared by the program executors.
//!
//! Template instantiation and program execution repeatedly scan the same
//! table: value-candidate collection walks a column per value hole, numeric
//! aggregations re-parse every cell through [`Value::as_number`], and
//! arithmetic cell addressing re-renders the row-name column per lookup.
//! [`ExecContext`] performs those scans **once per table** and hands the
//! executors cached, immutable indexes. The pipeline builds one context per
//! input table and shares it across all `samples_per_table` program
//! attempts.
//!
//! Every cache mirrors the exact scan order of the naive code it replaces,
//! so indexed execution is observably identical to a fresh table scan —
//! same candidate lists (hence identical RNG draws during instantiation),
//! same highlight order, same results. The equivalence tests in the
//! workspace root (`tests/exec_context.rs`) lock this in on randomized
//! tables.

use crate::schema::ColumnType;
use crate::table::Table;
use crate::value::Value;

/// Cached per-table indexes for program instantiation and execution.
///
/// Build once per [`Table`] with [`ExecContext::new`]; the context borrows
/// nothing and must only be used with the table it was built from (the
/// executors debug-assert the dimensions match). Single-row edits of an
/// already-indexed table ([`ExecContext::with_row_appended`] /
/// [`ExecContext::with_row_removed`]) update the caches incrementally
/// instead of re-scanning — `PartialEq` exists so tests can pin the deltas
/// against a fresh scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecContext {
    n_rows: usize,
    n_cols: usize,
    /// Per column: the non-null values in row order — exactly
    /// `table.column_values(ci)` with nulls dropped (the value-candidate
    /// list used by template instantiation).
    non_null: Vec<Vec<Value>>,
    /// Per column: `(row, numeric value)` for every cell with a numeric
    /// interpretation, in row order (the scan behind `table_sum`, `max`,
    /// `avg`, …).
    numeric: Vec<Vec<(usize, f64)>>,
    /// Row-major `Value::as_number` of every cell (`None` for non-numeric).
    grid: Vec<Option<f64>>,
    /// Columns whose inferred schema type is `Number`.
    numeric_cols: Vec<usize>,
    /// First `Text` column (else 0) — the arithmetic executor's row-name
    /// column.
    row_name_col: usize,
    /// Per row: ASCII-lowercased rendering of the row-name cell (`None`
    /// where the row is shorter than the name column).
    name_lower: Vec<Option<String>>,
    /// Numeric cells addressable as `the <col> of <row>` by arithmetic
    /// templates, in the instantiation scan order: rows ascending (rows
    /// with a null name cell skipped), columns ascending (name column
    /// skipped).
    addressable: Vec<(usize, usize)>,
    /// Distinct text cells in row-major scan order (the perturbation pool
    /// for refuted-claim synthesis).
    text_pool: Vec<String>,
    /// ASCII-lowercased counterpart of `text_pool`, index-aligned — lets
    /// case-insensitive pool filters fold the needle once and byte-compare.
    text_pool_folded: Vec<String>,
    /// Census of inferred column types, indexed by [`ColumnType`] in
    /// declaration order (Number, Date, Bool, Text) — the table-side input
    /// to `SchemaRequirement::satisfied_by`.
    type_counts: [usize; 4],
    /// Per column: how many cells are `Value::Number`. A column is
    /// kernel-eligible for `Value`-ordered batched ops exactly when every
    /// non-null cell is a number (see [`ExecContext::all_number`]).
    number_cells: Vec<usize>,
    /// Per column: `(row, ASCII-lowercased text)` for every `Value::Text`
    /// cell, in row order — the pre-case-folded pool behind the batched
    /// text-equality filter kernels.
    folded: Vec<Vec<(usize, String)>>,
}

fn type_index(ty: ColumnType) -> usize {
    match ty {
        ColumnType::Number => 0,
        ColumnType::Date => 1,
        ColumnType::Bool => 2,
        ColumnType::Text => 3,
    }
}

/// Whether two tables infer the same column types — the precondition for
/// the single-row delta constructors, since every schema-derived cache
/// (`numeric_cols`, `row_name_col`, `type_counts`) follows the types.
fn schema_types_match(a: &Table, b: &Table) -> bool {
    let (ca, cb) = (a.schema().columns(), b.schema().columns());
    ca.len() == cb.len() && ca.iter().zip(cb).all(|(x, y)| x.ty == y.ty)
}

impl ExecContext {
    /// Scans `table` once and builds every index.
    pub fn new(table: &Table) -> ExecContext {
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();
        let mut non_null = Vec::with_capacity(n_cols);
        let mut numeric = Vec::with_capacity(n_cols);
        let mut number_cells = Vec::with_capacity(n_cols);
        let mut folded = Vec::with_capacity(n_cols);
        let mut grid = vec![None; n_rows * n_cols];
        for ci in 0..n_cols {
            let mut vals = Vec::new();
            let mut nums = Vec::new();
            let mut numbers = 0usize;
            let mut lowers: Vec<(usize, String)> = Vec::new();
            for ri in 0..n_rows {
                let Some(v) = table.cell(ri, ci) else { continue };
                if !v.is_null() {
                    vals.push(v.clone());
                }
                match v {
                    Value::Number(_) => numbers += 1,
                    Value::Text(t) => lowers.push((ri, t.to_ascii_lowercase())),
                    _ => {}
                }
                if let Some(n) = v.as_number() {
                    grid[ri * n_cols + ci] = Some(n);
                    nums.push((ri, n));
                }
            }
            non_null.push(vals);
            numeric.push(nums);
            number_cells.push(numbers);
            folded.push(lowers);
        }

        let numeric_cols = table.schema().columns_of_type(ColumnType::Number);
        let mut type_counts = [0usize; 4];
        for col in table.schema().columns() {
            type_counts[type_index(col.ty)] += 1;
        }
        let row_name_col =
            table.schema().columns().iter().position(|c| c.ty == ColumnType::Text).unwrap_or(0);

        let name_lower: Vec<Option<String>> = (0..n_rows)
            .map(|ri| table.cell(ri, row_name_col).map(|v| v.to_string().to_ascii_lowercase()))
            .collect();

        let mut addressable = Vec::new();
        for ri in 0..n_rows {
            let named = table.cell(ri, row_name_col).is_some_and(|v| !v.is_null());
            if !named {
                continue;
            }
            for ci in 0..n_cols {
                if ci != row_name_col && grid[ri * n_cols + ci].is_some() {
                    addressable.push((ri, ci));
                }
            }
        }

        let mut text_pool: Vec<String> = Vec::new();
        for row in table.rows() {
            for v in row {
                if let Value::Text(t) = v {
                    if !text_pool.contains(t) {
                        text_pool.push(t.clone());
                    }
                }
            }
        }
        let text_pool_folded = text_pool.iter().map(|t| t.to_ascii_lowercase()).collect();

        ExecContext {
            n_rows,
            n_cols,
            non_null,
            numeric,
            grid,
            numeric_cols,
            row_name_col,
            name_lower,
            addressable,
            text_pool,
            text_pool_folded,
            type_counts,
            number_cells,
            folded,
        }
    }

    /// Context for `expanded` = the table this context was built from
    /// (`original`) plus one appended row, updating every cache in place of
    /// a full rescan. The appended row sits at the end of each row-ordered
    /// cache, so the delta is pure appends. Falls back to a full
    /// [`ExecContext::new`] scan when the append changed any inferred
    /// column type (table expansion re-infers types), since every
    /// schema-derived cache would shift.
    pub fn with_row_appended(&self, original: &Table, expanded: &Table) -> ExecContext {
        debug_assert_eq!(self.n_rows, original.n_rows(), "context/table mismatch");
        if expanded.n_rows() != self.n_rows + 1
            || expanded.n_cols() != self.n_cols
            || !schema_types_match(original, expanded)
        {
            return ExecContext::new(expanded);
        }
        let mut ctx = self.clone();
        let ri = self.n_rows;
        ctx.n_rows += 1;
        ctx.grid.resize(ctx.n_rows * ctx.n_cols, None);
        for ci in 0..ctx.n_cols {
            let Some(v) = expanded.cell(ri, ci) else { continue };
            if !v.is_null() {
                ctx.non_null[ci].push(v.clone());
            }
            match v {
                Value::Number(_) => ctx.number_cells[ci] += 1,
                Value::Text(t) => ctx.folded[ci].push((ri, t.to_ascii_lowercase())),
                _ => {}
            }
            if let Some(n) = v.as_number() {
                ctx.grid[ri * ctx.n_cols + ci] = Some(n);
                ctx.numeric[ci].push((ri, n));
            }
        }
        let name_cell = expanded.cell(ri, self.row_name_col);
        ctx.name_lower.push(name_cell.map(|v| v.to_string().to_ascii_lowercase()));
        if name_cell.is_some_and(|v| !v.is_null()) {
            for ci in 0..ctx.n_cols {
                if ci != self.row_name_col && ctx.grid[ri * ctx.n_cols + ci].is_some() {
                    ctx.addressable.push((ri, ci));
                }
            }
        }
        for v in expanded.row(ri).unwrap_or(&[]) {
            if let Value::Text(t) = v {
                if !ctx.text_pool.contains(t) {
                    ctx.text_pool.push(t.clone());
                    ctx.text_pool_folded.push(t.to_ascii_lowercase());
                }
            }
        }
        ctx
    }

    /// Context for `sub` = the table this context was built from
    /// (`original`) minus its row `removed`, splicing the removed row out
    /// of every cache instead of re-scanning (in particular, no cell is
    /// re-parsed through `Value::as_number`). Falls back to a full
    /// [`ExecContext::new`] scan when dropping the row changed any
    /// inferred column type.
    pub fn with_row_removed(&self, original: &Table, sub: &Table, removed: usize) -> ExecContext {
        debug_assert_eq!(self.n_rows, original.n_rows(), "context/table mismatch");
        if removed >= self.n_rows
            || sub.n_rows() + 1 != self.n_rows
            || sub.n_cols() != self.n_cols
            || !schema_types_match(original, sub)
        {
            return ExecContext::new(sub);
        }
        let shift = |ri: usize| if ri > removed { ri - 1 } else { ri };
        let mut non_null = Vec::with_capacity(self.n_cols);
        let mut numeric = Vec::with_capacity(self.n_cols);
        let mut number_cells = Vec::with_capacity(self.n_cols);
        let mut folded = Vec::with_capacity(self.n_cols);
        for ci in 0..self.n_cols {
            let mut vals = self.non_null[ci].clone();
            if original.cell(removed, ci).is_some_and(|v| !v.is_null()) {
                // The removed value's position in the row-ordered non-null
                // list = the count of non-null cells above it.
                let pos = original.rows()[..removed]
                    .iter()
                    .filter(|r| r.get(ci).is_some_and(|v| !v.is_null()))
                    .count();
                vals.remove(pos);
            }
            non_null.push(vals);
            numeric.push(
                self.numeric[ci]
                    .iter()
                    .filter(|&&(ri, _)| ri != removed)
                    .map(|&(ri, n)| (shift(ri), n))
                    .collect(),
            );
            let removed_number =
                original.cell(removed, ci).is_some_and(|v| matches!(v, Value::Number(_)));
            number_cells.push(self.number_cells[ci] - usize::from(removed_number));
            folded.push(
                self.folded[ci]
                    .iter()
                    .filter(|&&(ri, _)| ri != removed)
                    .map(|(ri, t)| (shift(*ri), t.clone()))
                    .collect(),
            );
        }
        let mut grid = self.grid.clone();
        grid.drain(removed * self.n_cols..(removed + 1) * self.n_cols);
        let mut name_lower = self.name_lower.clone();
        name_lower.remove(removed);
        let addressable = self
            .addressable
            .iter()
            .filter(|&&(ri, _)| ri != removed)
            .map(|&(ri, ci)| (shift(ri), ci))
            .collect();
        // Dropping a row can only change the distinct-text pool (values or
        // first-occurrence order) if the row itself held text.
        let row_had_text =
            original.row(removed).is_some_and(|r| r.iter().any(|v| matches!(v, Value::Text(_))));
        let (text_pool, text_pool_folded) = if row_had_text {
            let mut pool: Vec<String> = Vec::new();
            for row in sub.rows() {
                for v in row {
                    if let Value::Text(t) = v {
                        if !pool.contains(t) {
                            pool.push(t.clone());
                        }
                    }
                }
            }
            let pool_folded = pool.iter().map(|t| t.to_ascii_lowercase()).collect();
            (pool, pool_folded)
        } else {
            (self.text_pool.clone(), self.text_pool_folded.clone())
        };
        ExecContext {
            n_rows: self.n_rows - 1,
            n_cols: self.n_cols,
            non_null,
            numeric,
            grid,
            numeric_cols: self.numeric_cols.clone(),
            row_name_col: self.row_name_col,
            name_lower,
            addressable,
            text_pool,
            text_pool_folded,
            type_counts: self.type_counts,
            number_cells,
            folded,
        }
    }

    /// Dimensions of the table this context was built from.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Non-null values of a column in row order; empty for out-of-range
    /// columns.
    pub fn non_null_values(&self, col: usize) -> &[Value] {
        self.non_null.get(col).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `(row, number)` pairs of a column's numeric cells in row order.
    pub fn numeric_pairs(&self, col: usize) -> &[(usize, f64)] {
        self.numeric.get(col).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Cached `Value::as_number` of one cell.
    pub fn number_at(&self, row: usize, col: usize) -> Option<f64> {
        if col >= self.n_cols {
            return None;
        }
        self.grid.get(row * self.n_cols + col).copied().flatten()
    }

    /// Columns typed `Number` by schema inference.
    pub fn numeric_columns(&self) -> &[usize] {
        &self.numeric_cols
    }

    /// The arithmetic executor's row-name column (first `Text` column,
    /// else 0).
    pub fn row_name_column(&self) -> usize {
        self.row_name_col
    }

    /// ASCII-lowercased rendering of a row's name cell.
    pub fn name_lower(&self, row: usize) -> Option<&str> {
        self.name_lower.get(row).and_then(|s| s.as_deref())
    }

    /// Numeric cells addressable by arithmetic templates (see field docs
    /// for the ordering contract).
    pub fn addressable_cells(&self) -> &[(usize, usize)] {
        &self.addressable
    }

    /// Distinct text cells in row-major order.
    pub fn text_pool(&self) -> &[String] {
        &self.text_pool
    }

    /// ASCII-lowercased counterpart of [`ExecContext::text_pool`],
    /// index-aligned.
    pub fn text_pool_folded(&self) -> &[String] {
        &self.text_pool_folded
    }

    /// Whether every non-null cell of the column is a `Value::Number` (and
    /// there is at least one) — the eligibility gate for batched kernels
    /// whose per-cell counterpart orders or equates whole `Value`s.
    pub fn all_number(&self, col: usize) -> bool {
        match (self.number_cells.get(col), self.non_null.get(col)) {
            (Some(&numbers), Some(vals)) => numbers > 0 && numbers == vals.len(),
            _ => false,
        }
    }

    /// `(row, ASCII-lowercased text)` for every text cell of the column, in
    /// row order — the pre-folded pool behind batched text-equality
    /// filters.
    pub fn folded_text(&self, col: usize) -> &[(usize, String)] {
        self.folded.get(col).map(Vec::as_slice).unwrap_or(&[])
    }

    /// How many columns schema inference assigned the given type.
    pub fn column_type_count(&self, ty: ColumnType) -> usize {
        self.type_counts[type_index(ty)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::from_strings(
            "t",
            &[
                vec!["name", "score", "city", "when"],
                vec!["Ada", "91", "Oslo", "1990-05-01"],
                vec!["-", "84", "Lima", "n/a"],
                vec!["Cleo", "n/a", "Oslo", "2001-08-23"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    #[test]
    fn non_null_matches_column_values_filter() {
        let t = table();
        let ctx = ExecContext::new(&t);
        for ci in 0..t.n_cols() {
            let naive: Vec<Value> =
                t.column_values(ci).into_iter().filter(|v| !v.is_null()).collect();
            assert_eq!(ctx.non_null_values(ci), naive.as_slice(), "column {ci}");
        }
        assert!(ctx.non_null_values(99).is_empty());
    }

    #[test]
    fn numeric_pairs_match_cell_scan() {
        let t = table();
        let ctx = ExecContext::new(&t);
        for ci in 0..t.n_cols() {
            let naive: Vec<(usize, f64)> = (0..t.n_rows())
                .filter_map(|ri| t.cell(ri, ci).and_then(Value::as_number).map(|n| (ri, n)))
                .collect();
            assert_eq!(ctx.numeric_pairs(ci), naive.as_slice(), "column {ci}");
            for (ri, n) in naive {
                assert_eq!(ctx.number_at(ri, ci), Some(n));
            }
        }
        // The null score cell has no numeric reading.
        assert_eq!(ctx.number_at(2, 1), None);
        assert_eq!(ctx.number_at(0, 99), None);
    }

    #[test]
    fn name_column_and_lowercase_cache() {
        let t = table();
        let ctx = ExecContext::new(&t);
        assert_eq!(ctx.row_name_column(), 0);
        assert_eq!(ctx.name_lower(0), Some("ada"));
        assert_eq!(ctx.name_lower(2), Some("cleo"));
        assert_eq!(ctx.name_lower(99), None);
    }

    #[test]
    fn addressable_skips_null_named_rows_and_name_column() {
        let t = table();
        let ctx = ExecContext::new(&t);
        // Row 1 has a null name cell; the date column is numeric via its
        // ordinal, the city column is not.
        assert_eq!(ctx.addressable_cells(), &[(0, 1), (0, 3), (2, 3)]);
    }

    #[test]
    fn text_pool_is_distinct_row_major() {
        let t = table();
        let ctx = ExecContext::new(&t);
        assert_eq!(ctx.text_pool(), &["Ada", "Oslo", "Lima", "Cleo"]);
    }

    #[test]
    fn column_type_census_matches_schema() {
        let t = table();
        let ctx = ExecContext::new(&t);
        for ty in [ColumnType::Number, ColumnType::Date, ColumnType::Bool, ColumnType::Text] {
            assert_eq!(
                ctx.column_type_count(ty),
                t.schema().columns_of_type(ty).len(),
                "census for {ty}"
            );
        }
        assert_eq!(ctx.column_type_count(ColumnType::Number), 1);
        assert_eq!(ctx.column_type_count(ColumnType::Text), 2);
    }

    #[test]
    fn empty_table_context() {
        let t = Table::from_strings("e", &[vec!["a", "b"]])
            .unwrap_or_else(|e| panic!("test table: {e}"));
        let ctx = ExecContext::new(&t);
        assert_eq!(ctx.n_rows(), 0);
        assert!(ctx.addressable_cells().is_empty());
        assert!(ctx.text_pool().is_empty());
        assert!(ctx.non_null_values(0).is_empty());
    }

    fn strings_table(rows: &[Vec<&str>]) -> Table {
        Table::from_strings("t", rows).unwrap_or_else(|e| panic!("test table: {e}"))
    }

    #[test]
    fn row_appended_delta_matches_fresh_scan() {
        let header = vec!["name", "score", "city", "when"];
        let base = [
            vec!["Ada", "91", "Oslo", "1990-05-01"],
            vec!["-", "84", "Lima", "n/a"],
            vec!["Cleo", "n/a", "Oslo", "2001-08-23"],
        ];
        // New text, repeated text, a null name cell, and an all-null row
        // each stress a different cache's append arm.
        let extra_rows = [
            vec!["Bo", "77", "Kyiv", "1999-01-02"],
            vec!["Ada", "70", "Oslo", "2000-01-01"],
            vec!["-", "55", "Lima", "n/a"],
            vec!["-", "n/a", "-", "n/a"],
        ];
        for extra in &extra_rows {
            let mut rows = vec![header.clone()];
            rows.extend(base.iter().cloned());
            let original = strings_table(&rows);
            rows.push(extra.clone());
            let expanded = strings_table(&rows);
            assert_eq!(
                original.schema().columns().len(),
                expanded.schema().columns().len(),
                "append case should keep the column count: {extra:?}"
            );
            let ctx = ExecContext::new(&original);
            assert_eq!(
                ctx.with_row_appended(&original, &expanded),
                ExecContext::new(&expanded),
                "appended {extra:?}"
            );
        }
    }

    #[test]
    fn row_appended_falls_back_when_types_flip() {
        let original = strings_table(&[vec!["name", "score"], vec!["Ada", "91"]]);
        // The appended row drops the score column below the numeric
        // majority threshold, turning it into Text.
        let expanded =
            strings_table(&[vec!["name", "score"], vec!["Ada", "91"], vec!["Bo", "withdrew"]]);
        assert_ne!(
            original.schema().column(1).map(|c| c.ty),
            expanded.schema().column(1).map(|c| c.ty),
            "test premise: the append must flip the column type"
        );
        let ctx = ExecContext::new(&original);
        assert_eq!(ctx.with_row_appended(&original, &expanded), ExecContext::new(&expanded));
    }

    #[test]
    fn row_removed_delta_matches_fresh_scan() {
        let original = strings_table(&[
            vec!["name", "score", "city", "when"],
            vec!["Ada", "91", "Oslo", "1990-05-01"],
            vec!["-", "84", "Lima", "n/a"],
            vec!["Cleo", "n/a", "Oslo", "2001-08-23"],
            vec!["Ada", "70", "Oslo", "2000-01-01"],
        ]);
        let ctx = ExecContext::new(&original);
        for removed in 0..original.n_rows() {
            let keep: Vec<usize> = (0..original.n_rows()).filter(|&r| r != removed).collect();
            let sub = original.select_rows(&keep);
            assert_eq!(
                ctx.with_row_removed(&original, &sub, removed),
                ExecContext::new(&sub),
                "removed row {removed}"
            );
        }
    }

    #[test]
    fn row_removed_falls_back_when_types_flip() {
        let original =
            strings_table(&[vec!["name", "score"], vec!["Ada", "91"], vec!["Bo", "withdrew"]]);
        // Dropping the text score and re-inferring makes the column Number.
        let sub = strings_table(&[vec!["name", "score"], vec!["Ada", "91"]]);
        assert_ne!(
            original.schema().column(1).map(|c| c.ty),
            sub.schema().column(1).map(|c| c.ty),
            "test premise: the removal must flip the column type"
        );
        let ctx = ExecContext::new(&original);
        assert_eq!(ctx.with_row_removed(&original, &sub, 1), ExecContext::new(&sub));
    }
}
