//! Per-table execution context shared by the program executors.
//!
//! Template instantiation and program execution repeatedly scan the same
//! table: value-candidate collection walks a column per value hole, numeric
//! aggregations re-parse every cell through [`Value::as_number`], and
//! arithmetic cell addressing re-renders the row-name column per lookup.
//! [`ExecContext`] performs those scans **once per table** and hands the
//! executors cached, immutable indexes. The pipeline builds one context per
//! input table and shares it across all `samples_per_table` program
//! attempts.
//!
//! Every cache mirrors the exact scan order of the naive code it replaces,
//! so indexed execution is observably identical to a fresh table scan —
//! same candidate lists (hence identical RNG draws during instantiation),
//! same highlight order, same results. The equivalence tests in the
//! workspace root (`tests/exec_context.rs`) lock this in on randomized
//! tables.

use crate::schema::ColumnType;
use crate::table::Table;
use crate::value::Value;

/// Cached per-table indexes for program instantiation and execution.
///
/// Build once per [`Table`] with [`ExecContext::new`]; the context borrows
/// nothing and must only be used with the table it was built from (the
/// executors debug-assert the dimensions match).
#[derive(Debug, Clone)]
pub struct ExecContext {
    n_rows: usize,
    n_cols: usize,
    /// Per column: the non-null values in row order — exactly
    /// `table.column_values(ci)` with nulls dropped (the value-candidate
    /// list used by template instantiation).
    non_null: Vec<Vec<Value>>,
    /// Per column: `(row, numeric value)` for every cell with a numeric
    /// interpretation, in row order (the scan behind `table_sum`, `max`,
    /// `avg`, …).
    numeric: Vec<Vec<(usize, f64)>>,
    /// Row-major `Value::as_number` of every cell (`None` for non-numeric).
    grid: Vec<Option<f64>>,
    /// Columns whose inferred schema type is `Number`.
    numeric_cols: Vec<usize>,
    /// First `Text` column (else 0) — the arithmetic executor's row-name
    /// column.
    row_name_col: usize,
    /// Per row: ASCII-lowercased rendering of the row-name cell (`None`
    /// where the row is shorter than the name column).
    name_lower: Vec<Option<String>>,
    /// Numeric cells addressable as `the <col> of <row>` by arithmetic
    /// templates, in the instantiation scan order: rows ascending (rows
    /// with a null name cell skipped), columns ascending (name column
    /// skipped).
    addressable: Vec<(usize, usize)>,
    /// Distinct text cells in row-major scan order (the perturbation pool
    /// for refuted-claim synthesis).
    text_pool: Vec<String>,
    /// Census of inferred column types, indexed by [`ColumnType`] in
    /// declaration order (Number, Date, Bool, Text) — the table-side input
    /// to `SchemaRequirement::satisfied_by`.
    type_counts: [usize; 4],
}

fn type_index(ty: ColumnType) -> usize {
    match ty {
        ColumnType::Number => 0,
        ColumnType::Date => 1,
        ColumnType::Bool => 2,
        ColumnType::Text => 3,
    }
}

impl ExecContext {
    /// Scans `table` once and builds every index.
    pub fn new(table: &Table) -> ExecContext {
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();
        let mut non_null = Vec::with_capacity(n_cols);
        let mut numeric = Vec::with_capacity(n_cols);
        let mut grid = vec![None; n_rows * n_cols];
        for ci in 0..n_cols {
            let mut vals = Vec::new();
            let mut nums = Vec::new();
            for ri in 0..n_rows {
                let Some(v) = table.cell(ri, ci) else { continue };
                if !v.is_null() {
                    vals.push(v.clone());
                }
                if let Some(n) = v.as_number() {
                    grid[ri * n_cols + ci] = Some(n);
                    nums.push((ri, n));
                }
            }
            non_null.push(vals);
            numeric.push(nums);
        }

        let numeric_cols = table.schema().columns_of_type(ColumnType::Number);
        let mut type_counts = [0usize; 4];
        for col in table.schema().columns() {
            type_counts[type_index(col.ty)] += 1;
        }
        let row_name_col =
            table.schema().columns().iter().position(|c| c.ty == ColumnType::Text).unwrap_or(0);

        let name_lower: Vec<Option<String>> = (0..n_rows)
            .map(|ri| table.cell(ri, row_name_col).map(|v| v.to_string().to_ascii_lowercase()))
            .collect();

        let mut addressable = Vec::new();
        for ri in 0..n_rows {
            let named = table.cell(ri, row_name_col).is_some_and(|v| !v.is_null());
            if !named {
                continue;
            }
            for ci in 0..n_cols {
                if ci != row_name_col && grid[ri * n_cols + ci].is_some() {
                    addressable.push((ri, ci));
                }
            }
        }

        let mut text_pool: Vec<String> = Vec::new();
        for row in table.rows() {
            for v in row {
                if let Value::Text(t) = v {
                    if !text_pool.contains(t) {
                        text_pool.push(t.clone());
                    }
                }
            }
        }

        ExecContext {
            n_rows,
            n_cols,
            non_null,
            numeric,
            grid,
            numeric_cols,
            row_name_col,
            name_lower,
            addressable,
            text_pool,
            type_counts,
        }
    }

    /// Dimensions of the table this context was built from.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Non-null values of a column in row order; empty for out-of-range
    /// columns.
    pub fn non_null_values(&self, col: usize) -> &[Value] {
        self.non_null.get(col).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `(row, number)` pairs of a column's numeric cells in row order.
    pub fn numeric_pairs(&self, col: usize) -> &[(usize, f64)] {
        self.numeric.get(col).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Cached `Value::as_number` of one cell.
    pub fn number_at(&self, row: usize, col: usize) -> Option<f64> {
        if col >= self.n_cols {
            return None;
        }
        self.grid.get(row * self.n_cols + col).copied().flatten()
    }

    /// Columns typed `Number` by schema inference.
    pub fn numeric_columns(&self) -> &[usize] {
        &self.numeric_cols
    }

    /// The arithmetic executor's row-name column (first `Text` column,
    /// else 0).
    pub fn row_name_column(&self) -> usize {
        self.row_name_col
    }

    /// ASCII-lowercased rendering of a row's name cell.
    pub fn name_lower(&self, row: usize) -> Option<&str> {
        self.name_lower.get(row).and_then(|s| s.as_deref())
    }

    /// Numeric cells addressable by arithmetic templates (see field docs
    /// for the ordering contract).
    pub fn addressable_cells(&self) -> &[(usize, usize)] {
        &self.addressable
    }

    /// Distinct text cells in row-major order.
    pub fn text_pool(&self) -> &[String] {
        &self.text_pool
    }

    /// How many columns schema inference assigned the given type.
    pub fn column_type_count(&self, ty: ColumnType) -> usize {
        self.type_counts[type_index(ty)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::from_strings(
            "t",
            &[
                vec!["name", "score", "city", "when"],
                vec!["Ada", "91", "Oslo", "1990-05-01"],
                vec!["-", "84", "Lima", "n/a"],
                vec!["Cleo", "n/a", "Oslo", "2001-08-23"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    #[test]
    fn non_null_matches_column_values_filter() {
        let t = table();
        let ctx = ExecContext::new(&t);
        for ci in 0..t.n_cols() {
            let naive: Vec<Value> =
                t.column_values(ci).into_iter().filter(|v| !v.is_null()).collect();
            assert_eq!(ctx.non_null_values(ci), naive.as_slice(), "column {ci}");
        }
        assert!(ctx.non_null_values(99).is_empty());
    }

    #[test]
    fn numeric_pairs_match_cell_scan() {
        let t = table();
        let ctx = ExecContext::new(&t);
        for ci in 0..t.n_cols() {
            let naive: Vec<(usize, f64)> = (0..t.n_rows())
                .filter_map(|ri| t.cell(ri, ci).and_then(Value::as_number).map(|n| (ri, n)))
                .collect();
            assert_eq!(ctx.numeric_pairs(ci), naive.as_slice(), "column {ci}");
            for (ri, n) in naive {
                assert_eq!(ctx.number_at(ri, ci), Some(n));
            }
        }
        // The null score cell has no numeric reading.
        assert_eq!(ctx.number_at(2, 1), None);
        assert_eq!(ctx.number_at(0, 99), None);
    }

    #[test]
    fn name_column_and_lowercase_cache() {
        let t = table();
        let ctx = ExecContext::new(&t);
        assert_eq!(ctx.row_name_column(), 0);
        assert_eq!(ctx.name_lower(0), Some("ada"));
        assert_eq!(ctx.name_lower(2), Some("cleo"));
        assert_eq!(ctx.name_lower(99), None);
    }

    #[test]
    fn addressable_skips_null_named_rows_and_name_column() {
        let t = table();
        let ctx = ExecContext::new(&t);
        // Row 1 has a null name cell; the date column is numeric via its
        // ordinal, the city column is not.
        assert_eq!(ctx.addressable_cells(), &[(0, 1), (0, 3), (2, 3)]);
    }

    #[test]
    fn text_pool_is_distinct_row_major() {
        let t = table();
        let ctx = ExecContext::new(&t);
        assert_eq!(ctx.text_pool(), &["Ada", "Oslo", "Lima", "Cleo"]);
    }

    #[test]
    fn column_type_census_matches_schema() {
        let t = table();
        let ctx = ExecContext::new(&t);
        for ty in [ColumnType::Number, ColumnType::Date, ColumnType::Bool, ColumnType::Text] {
            assert_eq!(
                ctx.column_type_count(ty),
                t.schema().columns_of_type(ty).len(),
                "census for {ty}"
            );
        }
        assert_eq!(ctx.column_type_count(ColumnType::Number), 1);
        assert_eq!(ctx.column_type_count(ColumnType::Text), 2);
    }

    #[test]
    fn empty_table_context() {
        let t = Table::from_strings("e", &[vec!["a", "b"]])
            .unwrap_or_else(|e| panic!("test table: {e}"));
        let ctx = ExecContext::new(&t);
        assert_eq!(ctx.n_rows(), 0);
        assert!(ctx.addressable_cells().is_empty());
        assert!(ctx.text_pool().is_empty());
        assert!(ctx.non_null_values(0).is_empty());
    }
}
