//! The relational table type used across the workspace.
//!
//! A [`Table`] is a titled, schema-typed grid of [`Value`]s stored row-major.
//! It provides the row/column/projection operations that the program
//! executors, the Table-To-Text / Text-To-Table operators, and the reasoning
//! models all build on.

use crate::schema::{infer_column_type, Column, ColumnType, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by table construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row had a different arity than the schema.
    RowArity { expected: usize, got: usize },
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A referenced row index is out of bounds.
    RowOutOfBounds(usize),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RowArity { expected, got } => {
                write!(f, "row has {got} cells but schema has {expected} columns")
            }
            TableError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            TableError::RowOutOfBounds(i) => write!(f, "row index {i} out of bounds"),
        }
    }
}

impl std::error::Error for TableError {}

/// A relational table: title, typed schema, and rows of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Human-readable caption/title (e.g. the Wikipedia page section).
    pub title: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Default for Table {
    /// The empty table: no columns, no rows, an empty title.
    fn default() -> Table {
        Table { title: String::new(), schema: Schema::default(), rows: vec![] }
    }
}

impl Table {
    /// Creates a table from a schema and rows, checking arity.
    pub fn new(
        title: impl Into<String>,
        schema: Schema,
        rows: Vec<Vec<Value>>,
    ) -> Result<Table, TableError> {
        let n = schema.len();
        for row in &rows {
            if row.len() != n {
                return Err(TableError::RowArity { expected: n, got: row.len() });
            }
        }
        Ok(Table { title: title.into(), schema, rows })
    }

    /// Builds a table from raw string cells, inferring each column's type.
    /// The first row of `grid` is the header.
    pub fn from_strings(title: impl Into<String>, grid: &[Vec<&str>]) -> Result<Table, TableError> {
        let Some((header, body)) = grid.split_first() else {
            return Ok(Table { title: title.into(), schema: Schema::default(), rows: vec![] });
        };
        let rows: Vec<Vec<Value>> =
            body.iter().map(|r| r.iter().map(|c| Value::parse(c)).collect()).collect();
        let ncols = header.len();
        for row in &rows {
            if row.len() != ncols {
                return Err(TableError::RowArity { expected: ncols, got: row.len() });
            }
        }
        let mut cols = Vec::with_capacity(ncols);
        for (i, name) in header.iter().enumerate() {
            let col_vals: Vec<Value> = rows.iter().map(|r| r[i].clone()).collect();
            cols.push(Column::new(*name, infer_column_type(&col_vals)));
        }
        Ok(Table { title: title.into(), schema: Schema::new(cols), rows })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn n_cols(&self) -> usize {
        self.schema.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the cell at (row, col) if in bounds.
    pub fn cell(&self, row: usize, col: usize) -> Option<&Value> {
        self.rows.get(row).and_then(|r| r.get(col))
    }

    /// Returns a row by index.
    pub fn row(&self, idx: usize) -> Option<&[Value]> {
        self.rows.get(idx).map(|r| r.as_slice())
    }

    /// Returns an owned copy of one column's values.
    pub fn column_values(&self, col: usize) -> Vec<Value> {
        self.rows.iter().filter_map(|r| r.get(col).cloned()).collect()
    }

    /// Column header name by index.
    pub fn column_name(&self, col: usize) -> Option<&str> {
        self.schema.column(col).map(|c| c.name.as_str())
    }

    /// Case-insensitive column index lookup.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// Appends a row, checking arity.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), TableError> {
        if row.len() != self.schema.len() {
            return Err(TableError::RowArity { expected: self.schema.len(), got: row.len() });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Removes and returns the row at `idx`.
    pub fn remove_row(&mut self, idx: usize) -> Result<Vec<Value>, TableError> {
        if idx >= self.rows.len() {
            return Err(TableError::RowOutOfBounds(idx));
        }
        Ok(self.rows.remove(idx))
    }

    /// A new table containing only the rows whose indexes are in `keep`
    /// (order preserved, duplicates allowed).
    pub fn select_rows(&self, keep: &[usize]) -> Table {
        let rows = keep.iter().filter_map(|&i| self.rows.get(i).cloned()).collect();
        Table { title: self.title.clone(), schema: self.schema.clone(), rows }
    }

    /// A new table with rows satisfying `pred`.
    pub fn filter_rows(&self, mut pred: impl FnMut(&[Value]) -> bool) -> Table {
        let rows = self.rows.iter().filter(|r| pred(r)).cloned().collect();
        Table { title: self.title.clone(), schema: self.schema.clone(), rows }
    }

    /// Projects onto a subset of columns (by index, order preserved).
    pub fn project(&self, cols: &[usize]) -> Table {
        let schema =
            Schema::new(cols.iter().filter_map(|&c| self.schema.column(c).cloned()).collect());
        let rows = self
            .rows
            .iter()
            .map(|r| cols.iter().filter_map(|&c| r.get(c).cloned()).collect())
            .collect();
        Table { title: self.title.clone(), schema, rows }
    }

    /// Stable-sorts rows by a column; `descending` flips the order.
    /// Null cells always sort last regardless of direction, matching SQL
    /// `ORDER BY ... NULLS LAST` semantics that the paper's templates assume.
    pub fn sort_by_column(&self, col: usize, descending: bool) -> Table {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            let (x, y) = (&a[col], &b[col]);
            match (x.is_null(), y.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => {
                    if descending {
                        y.cmp(x)
                    } else {
                        x.cmp(y)
                    }
                }
            }
        });
        Table { title: self.title.clone(), schema: self.schema.clone(), rows }
    }

    /// Index of the row with the maximum value in `col` (nulls skipped).
    pub fn argmax(&self, col: usize) -> Option<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| !r[col].is_null())
            .max_by(|(_, a), (_, b)| a[col].cmp(&b[col]))
            .map(|(i, _)| i)
    }

    /// Index of the row with the minimum value in `col` (nulls skipped).
    pub fn argmin(&self, col: usize) -> Option<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| !r[col].is_null())
            .min_by(|(_, a), (_, b)| a[col].cmp(&b[col]))
            .map(|(i, _)| i)
    }

    /// Sum of the numeric values in `col` (non-numeric cells skipped).
    /// Returns `None` if the column has no numeric cell.
    pub fn sum(&self, col: usize) -> Option<f64> {
        let nums: Vec<f64> = self.numeric_column(col);
        if nums.is_empty() {
            None
        } else {
            Some(nums.iter().sum())
        }
    }

    /// Mean of the numeric values in `col`.
    pub fn avg(&self, col: usize) -> Option<f64> {
        let nums: Vec<f64> = self.numeric_column(col);
        if nums.is_empty() {
            None
        } else {
            Some(nums.iter().sum::<f64>() / nums.len() as f64)
        }
    }

    /// Maximum numeric value in `col`.
    pub fn max(&self, col: usize) -> Option<f64> {
        self.numeric_column(col).into_iter().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.max(x),
            })
        })
    }

    /// Minimum numeric value in `col`.
    pub fn min(&self, col: usize) -> Option<f64> {
        self.numeric_column(col).into_iter().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.min(x),
            })
        })
    }

    fn numeric_column(&self, col: usize) -> Vec<f64> {
        self.rows.iter().filter_map(|r| r.get(col).and_then(Value::as_number)).collect()
    }

    /// Distinct values of a column, in first-occurrence order. Two values
    /// are duplicates when [`Value::loosely_equals`] says so.
    ///
    /// The membership test is sub-quadratic while keeping the pairwise
    /// `loosely_equals` semantics exactly: `Text` only ever equals `Text`
    /// (case-insensitively), so a lowercased hash set decides that arm
    /// outright; every other non-null variant has a numeric reading
    /// (`Value::as_number`), so candidate duplicates are confined to an
    /// epsilon window in a sorted key list — each candidate is then
    /// confirmed with `loosely_equals` itself, which keeps near-miss
    /// subtleties (e.g. distinct `Date`s with nearly-equal ordinals) exact.
    pub fn distinct(&self, col: usize) -> Vec<Value> {
        let mut seen: Vec<Value> = Vec::new();
        let mut texts: rustc_hash::FxHashSet<String> = rustc_hash::FxHashSet::default();
        // (numeric key, index into `seen`), sorted by key.
        let mut nums: Vec<(f64, usize)> = Vec::new();
        for row in &self.rows {
            let v = &row[col];
            if v.is_null() {
                continue;
            }
            let dup = match v.as_number() {
                None => match v {
                    Value::Text(t) => texts.contains(&t.to_ascii_lowercase()),
                    // Unreachable for current variants (only Null/Text lack
                    // a numeric reading), kept exact for future ones.
                    _ => seen.iter().any(|s| s.loosely_equals(v)),
                },
                Some(n) => {
                    // nearly_equal(a, b) bounds |a-b| by 1e-6 * max of the
                    // magnitudes, so any match lies within this slightly
                    // widened window around n.
                    let w = 2e-6 * n.abs().max(1.0) + f64::EPSILON;
                    let lo = nums.partition_point(|&(k, _)| k < n - w);
                    nums[lo..]
                        .iter()
                        .take_while(|&&(k, _)| k <= n + w)
                        .any(|&(_, i)| seen[i].loosely_equals(v))
                }
            };
            if !dup {
                if let Some(n) = v.as_number() {
                    let at = nums.partition_point(|&(k, _)| k < n);
                    nums.insert(at, (n, seen.len()));
                } else if let Value::Text(t) = v {
                    texts.insert(t.to_ascii_lowercase());
                }
                seen.push(v.clone());
            }
        }
        seen
    }

    /// Vertically concatenates another table with an identical schema
    /// (column names compared case-insensitively). This is the integration
    /// step of the Text-To-Table operator (paper §IV-A).
    pub fn concat_rows(&self, other: &Table) -> Result<Table, TableError> {
        if other.schema.len() != self.schema.len() {
            return Err(TableError::RowArity {
                expected: self.schema.len(),
                got: other.schema.len(),
            });
        }
        for (a, b) in self.schema.columns().iter().zip(other.schema.columns()) {
            if !a.name.eq_ignore_ascii_case(&b.name) {
                return Err(TableError::UnknownColumn(b.name.clone()));
            }
        }
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Ok(Table { title: self.title.clone(), schema: self.schema.clone(), rows })
    }

    /// Re-infers every column's type from the current values. Needed after
    /// bulk edits (e.g. table expansion may append rows of a new type mix).
    pub fn reinfer_types(&mut self) {
        let mut cols = Vec::with_capacity(self.schema.len());
        for (i, c) in self.schema.columns().iter().enumerate() {
            let vals = self.column_values(i);
            cols.push(Column::new(c.name.clone(), infer_column_type(&vals)));
        }
        self.schema = Schema::new(cols);
    }

    /// Linearizes the table to a token-friendly string:
    /// `title | col: v ; col: v [ROW] ...` — the serialization the reasoning
    /// models consume (paper cites linearization methods \[24\], \[18\]).
    pub fn linearize(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64 * (self.rows.len() + 1));
        out.push_str(&self.title);
        for row in &self.rows {
            out.push_str(" [ROW]");
            for (i, v) in row.iter().enumerate() {
                if v.is_null() {
                    continue;
                }
                out.push(' ');
                out.push_str(self.column_name(i).unwrap_or(""));
                out.push_str(": ");
                // Render the cell straight into the buffer — `Display` is
                // the same rendering `to_string` produced, minus the
                // intermediate allocation per cell.
                let _ = write!(out, "{v}");
                out.push(';');
            }
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.title)?;
        let names: Vec<&str> = self.schema.columns().iter().map(|c| c.name.as_str()).collect();
        writeln!(f, "| {} |", names.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Convenience builder for tests and examples.
#[derive(Debug, Default)]
pub struct TableBuilder {
    title: String,
    columns: Vec<Column>,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    pub fn new(title: impl Into<String>) -> TableBuilder {
        TableBuilder { title: title.into(), ..Default::default() }
    }

    pub fn column(mut self, name: impl Into<String>, ty: ColumnType) -> TableBuilder {
        self.columns.push(Column::new(name, ty));
        self
    }

    pub fn row(mut self, cells: Vec<Value>) -> TableBuilder {
        self.rows.push(cells);
        self
    }

    /// Row of raw strings, parsed with type sniffing.
    pub fn row_str(mut self, cells: &[&str]) -> TableBuilder {
        self.rows.push(cells.iter().map(|c| Value::parse(c)).collect());
        self
    }

    pub fn build(self) -> Result<Table, TableError> {
        Table::new(self.title, Schema::new(self.columns), self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_strings(
            "Departments",
            &[
                vec!["department", "total deputies", "founded"],
                vec!["Commerce", "18", "1913-03-04"],
                vec!["Defense", "42", "1947-09-18"],
                vec!["Treasury", "30", "1789-09-02"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"))
    }

    fn column_type(t: &Table, c: usize) -> ColumnType {
        t.schema().column(c).unwrap_or_else(|| panic!("column {c}")).ty
    }

    #[test]
    fn from_strings_infers_types() {
        let t = sample();
        assert_eq!(column_type(&t, 0), ColumnType::Text);
        assert_eq!(column_type(&t, 1), ColumnType::Number);
        assert_eq!(column_type(&t, 2), ColumnType::Date);
    }

    #[test]
    fn arity_checked() {
        let err = Table::from_strings("t", &[vec!["a", "b"], vec!["1"]]).unwrap_err();
        assert_eq!(err, TableError::RowArity { expected: 2, got: 1 });
    }

    #[test]
    fn argmax_argmin() {
        let t = sample();
        assert_eq!(t.argmax(1), Some(1)); // Defense: 42
        assert_eq!(t.argmin(1), Some(0)); // Commerce: 18
    }

    #[test]
    fn aggregates() {
        let t = sample();
        assert_eq!(t.sum(1), Some(90.0));
        assert_eq!(t.avg(1), Some(30.0));
        assert_eq!(t.max(1), Some(42.0));
        assert_eq!(t.min(1), Some(18.0));
    }

    #[test]
    fn aggregates_on_text_column_are_none() {
        let t = sample();
        assert_eq!(t.sum(0), None);
        assert_eq!(t.avg(0), None);
    }

    #[test]
    fn sort_with_nulls_last() {
        let t = Table::from_strings("t", &[vec!["x"], vec!["5"], vec![""], vec!["1"], vec!["3"]])
            .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let asc = t.sort_by_column(0, false);
        let vals: Vec<String> = asc.rows().iter().map(|r| r[0].to_string()).collect();
        assert_eq!(vals, vec!["1", "3", "5", ""]);
        let desc = t.sort_by_column(0, true);
        let vals: Vec<String> = desc.rows().iter().map(|r| r[0].to_string()).collect();
        assert_eq!(vals, vec!["5", "3", "1", ""]);
    }

    #[test]
    fn project_and_select() {
        let t = sample();
        let p = t.project(&[1]);
        assert_eq!(p.n_cols(), 1);
        assert_eq!(p.column_name(0), Some("total deputies"));
        let s = t.select_rows(&[2, 0]);
        assert_eq!(s.n_rows(), 2);
        let c = s.cell(0, 0).unwrap_or_else(|| panic!("cell 0,0"));
        assert_eq!(c.to_string(), "Treasury");
    }

    #[test]
    fn filter_rows_predicate() {
        let t = sample();
        let big = t.filter_rows(|r| r[1].as_number().is_some_and(|n| n > 20.0));
        assert_eq!(big.n_rows(), 2);
    }

    #[test]
    fn distinct_dedups_loosely() {
        let t = Table::from_strings(
            "t",
            &[vec!["c"], vec!["Apple"], vec!["apple"], vec!["Pear"], vec![""]],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        assert_eq!(t.distinct(0).len(), 2);
    }

    #[test]
    fn distinct_matches_pairwise_scan() {
        // Adversarial mix for the windowed accelerator: epsilon-close
        // numbers, case variants, bools, adjacent dates (near-equal
        // ordinals but distinct dates), and nulls.
        let cells = [
            "5",
            "5.0000001",
            "5.1",
            "yes",
            "true",
            "Apple",
            "APPLE",
            "apple pie",
            "2020-03-01",
            "2020-03-02",
            "2020-03-01",
            "",
            "0",
            "no",
            "-5",
            "5",
            "1000000",
            "1000000.5",
            "1000001",
            "0.0000001",
            "0",
        ];
        let mut grid = vec![vec!["c"]];
        grid.extend(cells.iter().map(|c| vec![*c]));
        let t = Table::from_strings("t", &grid).unwrap_or_else(|e| panic!("test table: {e:?}"));
        // Reference: the original quadratic first-occurrence scan.
        let mut naive: Vec<Value> = Vec::new();
        for row in t.rows() {
            let v = &row[0];
            if !v.is_null() && !naive.iter().any(|s| s.loosely_equals(v)) {
                naive.push(v.clone());
            }
        }
        assert_eq!(t.distinct(0), naive);
    }

    #[test]
    fn concat_requires_matching_schema() {
        let a = sample();
        let b = sample();
        let joined = a.concat_rows(&b).unwrap_or_else(|e| panic!("concat: {e:?}"));
        assert_eq!(joined.n_rows(), 6);
        let mismatched = a.project(&[0, 1]);
        assert!(a.concat_rows(&mismatched).is_err());
    }

    #[test]
    fn linearize_contains_headers_and_values() {
        let t = sample();
        let lin = t.linearize();
        assert!(lin.contains("Departments"));
        assert!(lin.contains("[ROW]"));
        assert!(lin.contains("department: Commerce;"));
        assert!(lin.contains("total deputies: 42;"));
    }

    #[test]
    fn linearize_skips_nulls() {
        let t = Table::from_strings("t", &[vec!["a", "b"], vec!["x", ""], vec!["", "2"]])
            .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let lin = t.linearize();
        assert!(lin.contains("a: x;"));
        assert!(!lin.contains("b: ;"), "{lin}");
        assert!(lin.contains("b: 2;"));
    }

    #[test]
    fn select_rows_allows_duplicates_and_ignores_oob() {
        let t = sample();
        let s = t.select_rows(&[0, 0, 99]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), s.row(1));
    }

    #[test]
    fn builder_roundtrip() {
        let t = TableBuilder::new("b")
            .column("name", ColumnType::Text)
            .column("score", ColumnType::Number)
            .row_str(&["x", "1"])
            .row_str(&["y", "2"])
            .build()
            .unwrap_or_else(|e| panic!("build: {e:?}"));
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(1, 1), Some(&Value::Number(2.0)));
    }

    #[test]
    fn reinfer_types_after_edit() {
        let mut t = Table::from_strings("t", &[vec!["v"], vec!["hello"]])
            .unwrap_or_else(|e| panic!("test table: {e:?}"));
        assert_eq!(column_type(&t, 0), ColumnType::Text);
        t.remove_row(0).unwrap_or_else(|e| panic!("remove_row: {e:?}"));
        t.push_row(vec![Value::Number(1.0)]).unwrap_or_else(|e| panic!("push_row: {e:?}"));
        t.push_row(vec![Value::Number(2.0)]).unwrap_or_else(|e| panic!("push_row: {e:?}"));
        t.reinfer_types();
        assert_eq!(column_type(&t, 0), ColumnType::Number);
    }
}
