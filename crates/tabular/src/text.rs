//! Text utilities shared by the NL generator, operators and models:
//! tokenization, normalization, and bag-of-words similarity.
//!
//! The reasoning models link question/claim tokens to table cells, and the
//! evaluation metrics (numeracy-focused F1, EM) are defined over normalized
//! token bags — this module is the single source of truth for both.

use rustc_hash::FxHashMap;

/// Lowercases, strips punctuation (keeping digits, letters, `.`, `-` inside
/// numbers), and splits on whitespace.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut buf = String::new();
    for_each_token(text, &mut buf, |t| tokens.push(t.to_string()));
    tokens
}

/// Streaming core of [`tokenize`]: calls `f` once per token, borrowing the
/// reusable `buf` instead of allocating a `String` per token. The token
/// sequence is exactly `tokenize(text)` — hot paths (n-gram scoring) use
/// this to stay allocation-free, everything else goes through `tokenize`.
pub fn for_each_token(text: &str, buf: &mut String, mut f: impl FnMut(&str)) {
    buf.clear();
    // Count of raw (pre-strip) token boundaries, mirroring `tokens.len()`
    // in the collecting form: the leading-minus rule keys off it.
    let mut raw_tokens = 0usize;
    for ch in text.chars() {
        let c = ch.to_ascii_lowercase();
        if c.is_alphanumeric() {
            buf.push(c);
        } else if (c == '.' || c == '-')
            && !buf.is_empty()
            && buf.chars().all(|x| x.is_ascii_digit() || x == '.' || x == '-')
        {
            // keep decimal points / minus inside numeric tokens: "3.5", "-2"
            buf.push(c);
        } else {
            if !buf.is_empty() {
                raw_tokens += 1;
                emit(buf, &mut f);
            }
            if c == '-' && raw_tokens == 0 {
                // leading minus of a number
                buf.push('-');
            }
        }
    }
    if !buf.is_empty() && buf != "-" {
        emit(buf, &mut f);
    }
}

/// Strips trailing periods/dashes that came from sentence ends
/// ("42." -> "42"), emits the token if anything is left, and resets `buf`.
fn emit(buf: &mut String, f: &mut impl FnMut(&str)) {
    while buf.ends_with('.') || buf.ends_with('-') {
        buf.pop();
    }
    if !buf.is_empty() {
        f(buf);
    }
    buf.clear();
}

/// Normalizes an answer string for exact-match comparison: tokenizes,
/// removes articles, canonicalizes numbers.
pub fn normalize_answer(text: &str) -> String {
    let toks = tokenize(text);
    let kept: Vec<String> = toks
        .into_iter()
        .filter(|t| t != "a" && t != "an" && t != "the")
        .map(|t| canonical_number(&t).unwrap_or(t))
        .collect();
    kept.join(" ")
}

/// Canonicalizes a numeric token: "5.0" → "5", "05" → "5", "5." → "5",
/// "-0" → "0".
fn canonical_number(tok: &str) -> Option<String> {
    let n: f64 = tok.parse().ok()?;
    let s = crate::value::format_number(n);
    // format_number rounds to four decimals and trims zeros, so a tiny
    // negative ("-0.00001") or a literal "-0" comes back as "-0"; negative
    // zero and zero must compare equal under exact match.
    if s == "-0" {
        return Some("0".to_string());
    }
    Some(s)
}

/// Token frequency map.
pub fn token_counts(tokens: &[String]) -> FxHashMap<&str, usize> {
    let mut m: FxHashMap<&str, usize> = FxHashMap::default();
    for t in tokens {
        *m.entry(t.as_str()).or_insert(0) += 1;
    }
    m
}

/// Bag-of-words F1 between two token sequences (the SQuAD-style token F1
/// underlying TAT-QA's numeracy-focused F1).
pub fn token_f1(pred: &[String], gold: &[String]) -> f64 {
    if pred.is_empty() && gold.is_empty() {
        return 1.0;
    }
    if pred.is_empty() || gold.is_empty() {
        return 0.0;
    }
    let pc = token_counts(pred);
    let gc = token_counts(gold);
    let mut overlap = 0usize;
    for (tok, &n) in &pc {
        if let Some(&m) = gc.get(tok) {
            overlap += n.min(m);
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f64 / pred.len() as f64;
    let recall = overlap as f64 / gold.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Jaccard similarity between the token sets of two strings; used by the
/// Text-To-Table operator to match sentences to table rows.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let sa: std::collections::BTreeSet<&String> = ta.iter().collect();
    let sb: std::collections::BTreeSet<&String> = tb.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Splits a paragraph into sentences on `.`, `!`, `?` boundaries, keeping
/// abbreviating periods inside numbers intact.
pub fn split_sentences(paragraph: &str) -> Vec<String> {
    let mut sentences = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = paragraph.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        cur.push(c);
        if c == '!' || c == '?' {
            sentences.push(std::mem::take(&mut cur));
        } else if c == '.' {
            let prev_digit = i > 0 && chars[i - 1].is_ascii_digit();
            let next_digit = chars.get(i + 1).is_some_and(|n| n.is_ascii_digit());
            let next_space_or_end = chars.get(i + 1).is_none_or(|n| n.is_whitespace());
            if !(prev_digit && next_digit) && next_space_or_end {
                sentences.push(std::mem::take(&mut cur));
            }
        }
    }
    if !cur.trim().is_empty() {
        sentences.push(cur);
    }
    sentences.into_iter().map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize("score: 3.5 points"), vec!["score", "3.5", "points"]);
    }

    #[test]
    fn tokenize_keeps_negative_numbers() {
        assert_eq!(tokenize("-2 degrees"), vec!["-2", "degrees"]);
    }

    #[test]
    fn tokenize_strips_sentence_final_period() {
        assert_eq!(tokenize("It was 42."), vec!["it", "was", "42"]);
    }

    #[test]
    fn normalize_answer_numbers_and_articles() {
        assert_eq!(normalize_answer("The answer is 5.0"), "answer is 5");
        assert_eq!(normalize_answer("An Apple"), "apple");
    }

    #[test]
    fn canonical_number_normalizes_zero_and_dot_forms() {
        assert_eq!(canonical_number("5.0").as_deref(), Some("5"));
        assert_eq!(canonical_number("05").as_deref(), Some("5"));
        assert_eq!(canonical_number("5.").as_deref(), Some("5"));
        assert_eq!(canonical_number("-0").as_deref(), Some("0"));
        assert_eq!(canonical_number("-0.0").as_deref(), Some("0"));
        // Rounds to four decimals, so a tiny negative must not leave "-0".
        assert_eq!(canonical_number("-0.00001").as_deref(), Some("0"));
        assert_eq!(canonical_number("-2.5").as_deref(), Some("-2.5"));
        assert_eq!(canonical_number("not-a-number"), None);
    }

    #[test]
    fn normalize_answer_zero_signs_agree() {
        assert_eq!(normalize_answer("-0"), normalize_answer("0"));
        assert_eq!(normalize_answer("The total is -0.00001"), "total is 0");
    }

    #[test]
    fn token_f1_cases() {
        let p = tokenize("the quick fox");
        let g = tokenize("quick brown fox");
        let f1 = token_f1(&p, &g);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(token_f1(&[], &[]), 1.0);
        assert_eq!(token_f1(&p, &[]), 0.0);
    }

    #[test]
    fn token_f1_perfect_match() {
        let p = tokenize("42");
        let g = tokenize("42");
        assert_eq!(token_f1(&p, &g), 1.0);
    }

    #[test]
    fn jaccard_sanity() {
        assert_eq!(jaccard("a b c", "a b c"), 1.0);
        assert_eq!(jaccard("a b", "c d"), 0.0);
        assert!((jaccard("a b c", "b c d") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sentence_splitting() {
        let s = split_sentences("Revenue was 3.5 million. It grew 10%! Why? Because.");
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], "Revenue was 3.5 million.");
        assert_eq!(s[2], "Why?");
    }

    #[test]
    fn sentence_splitting_decimal_not_boundary() {
        let s = split_sentences("The reading is 3.17 today. Done.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("3.17"));
    }

    #[test]
    fn for_each_token_matches_tokenize() {
        // Edge cases of the token grammar: decimals, leading/trailing
        // minus, dash-only tokens, punctuation runs, empty input.
        for text in [
            "What is the score of Team-A?",
            "-2.5 vs 3.5. done.",
            "--5 - 7-",
            " - ",
            "",
            "a.b.c 42. 3.17%",
            "Ångström café 1,234",
        ] {
            let collected = tokenize(text);
            let mut streamed = Vec::new();
            let mut buf = String::new();
            for_each_token(text, &mut buf, |t| streamed.push(t.to_string()));
            assert_eq!(streamed, collected, "divergence on {text:?}");
        }
    }
}
