//! Schema-feasibility requirements computed by the template analyzers.
//!
//! A [`SchemaRequirement`] is the table-independent summary of what a
//! program template needs from a table before instantiation can possibly
//! succeed: how many columns of each inferred [`ColumnType`], how many
//! distinct columns overall, whether at least one row / addressable numeric
//! cell must exist. The per-DSL `analysis` modules (sqlexec / logicforms /
//! arithexpr) compute one per template; the pipeline compares it against a
//! table's [`ExecContext`] census to *prefilter* (template, table) pairs
//! that would only fail at runtime.
//!
//! Requirements form a join semilattice under pointwise `max` / `or`
//! ([`SchemaRequirement::join`]): `a.join(b)` is the weakest requirement at
//! least as strong as both, so the requirement of a compound program is the
//! join of its parts' requirements. [`SchemaRequirement::NONE`] is the
//! bottom element (satisfied by every table, including the empty one).
//!
//! **Soundness contract.** `!req.satisfied_by(ctx)` may only hold when
//! instantiating the template on the table behind `ctx` fails for *every*
//! RNG stream — the analyzers must under-approximate, never guess. The
//! workspace property tests (`tests/property_tests.rs`) pin this against
//! the real `try_instantiate_in` paths under many seeds.

use crate::context::ExecContext;
use crate::schema::ColumnType;

/// What a template provably needs from a table (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemaRequirement {
    /// Minimum row count (1 when the template must sample any cell value).
    pub min_rows: usize,
    /// Minimum total column count (distinct column holes of any type).
    pub min_cols: usize,
    /// Minimum columns inferred as [`ColumnType::Number`].
    pub min_number_cols: usize,
    /// Minimum columns inferred as [`ColumnType::Date`].
    pub min_date_cols: usize,
    /// Minimum columns inferred as [`ColumnType::Text`].
    pub min_text_cols: usize,
    /// Minimum cells addressable as `the <col> of <row>` (arithmetic
    /// templates; see `ExecContext::addressable_cells`).
    pub min_addressable_cells: usize,
    /// Whether at least one `Number` column must exist (arithmetic
    /// column-aggregation holes bind only to schema-`Number` columns).
    pub needs_number_column: bool,
    /// Minimum count of numeric cells that some *single* column must hold
    /// (abstract-interpretation tightening: a constant-ordinal `nth_max
    /// {{ n ; c ; ... }}` errors with `Empty` on every column with fewer
    /// than `n` numeric cells, so instantiation deterministically fails
    /// unless one column clears the bar).
    pub min_col_numeric_values: usize,
}

impl SchemaRequirement {
    /// The bottom of the lattice: satisfied by every table.
    pub const NONE: SchemaRequirement = SchemaRequirement {
        min_rows: 0,
        min_cols: 0,
        min_number_cols: 0,
        min_date_cols: 0,
        min_text_cols: 0,
        min_addressable_cells: 0,
        needs_number_column: false,
        min_col_numeric_values: 0,
    };

    /// Pointwise join (max / or): the weakest requirement implying both.
    pub fn join(self, other: SchemaRequirement) -> SchemaRequirement {
        SchemaRequirement {
            min_rows: self.min_rows.max(other.min_rows),
            min_cols: self.min_cols.max(other.min_cols),
            min_number_cols: self.min_number_cols.max(other.min_number_cols),
            min_date_cols: self.min_date_cols.max(other.min_date_cols),
            min_text_cols: self.min_text_cols.max(other.min_text_cols),
            min_addressable_cells: self.min_addressable_cells.max(other.min_addressable_cells),
            needs_number_column: self.needs_number_column || other.needs_number_column,
            min_col_numeric_values: self.min_col_numeric_values.max(other.min_col_numeric_values),
        }
    }

    /// `true` for the bottom element (no table can fail it).
    pub fn is_trivial(&self) -> bool {
        *self == SchemaRequirement::NONE
    }

    /// Lattice order: `self.implies(other)` iff every table satisfying
    /// `self` also satisfies `other` — pointwise, `self` bounds each field
    /// at least as tightly. Equivalent to `self.join(other) == self`; the
    /// subsumption preorder in `uctr::analysis` is built on this.
    pub fn implies(&self, other: &SchemaRequirement) -> bool {
        self.min_rows >= other.min_rows
            && self.min_cols >= other.min_cols
            && self.min_number_cols >= other.min_number_cols
            && self.min_date_cols >= other.min_date_cols
            && self.min_text_cols >= other.min_text_cols
            && self.min_addressable_cells >= other.min_addressable_cells
            && (self.needs_number_column || !other.needs_number_column)
            && self.min_col_numeric_values >= other.min_col_numeric_values
    }

    /// Whether the table behind `ctx` meets every bound. `false` means the
    /// analyzers proved instantiation cannot succeed on this table.
    pub fn satisfied_by(&self, ctx: &ExecContext) -> bool {
        ctx.n_rows() >= self.min_rows
            && ctx.n_cols() >= self.min_cols
            && ctx.column_type_count(ColumnType::Number) >= self.min_number_cols
            && ctx.column_type_count(ColumnType::Date) >= self.min_date_cols
            && ctx.column_type_count(ColumnType::Text) >= self.min_text_cols
            && ctx.addressable_cells().len() >= self.min_addressable_cells
            && (!self.needs_number_column || ctx.column_type_count(ColumnType::Number) > 0)
            && (self.min_col_numeric_values == 0
                || (0..ctx.n_cols())
                    .any(|c| ctx.numeric_pairs(c).len() >= self.min_col_numeric_values))
    }
}

/// One static defect found in a template, independent of any table.
///
/// `code` is a stable kebab-case identifier (ratcheted by
/// `xtask audit-templates`); `locus` names the offending construct inside
/// the template (a hole like `val1`, an operator path like `and.arg0`);
/// `message` explains the defect and its deterministic runtime consequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateIssue {
    pub code: &'static str,
    pub locus: String,
    pub message: String,
}

impl TemplateIssue {
    pub fn new(
        code: &'static str,
        locus: impl Into<String>,
        message: impl Into<String>,
    ) -> TemplateIssue {
        TemplateIssue { code, locus: locus.into(), message: message.into() }
    }
}

impl std::fmt::Display for TemplateIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} ({})", self.locus, self.message, self.code)
    }
}

/// The result of statically analyzing one template: every well-formedness
/// defect found, the weakest [`SchemaRequirement`] a table must meet for
/// instantiation to have any chance of succeeding, plus the
/// abstract-interpretation layer — degeneracy diagnostics (the A-rule
/// family), the joined [`AbsSummary`](crate::absdom::AbsSummary), and the static discard-cost model's
/// survival estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateAnalysis {
    /// Well-formedness defects (typechecker rules). A template with issues
    /// is rejected outright and never enters a bank.
    pub issues: Vec<TemplateIssue>,
    pub requirement: SchemaRequirement,
    /// Degeneracy convictions from the abstract interpreter (codes `A001`
    /// always-true/false or constant output, `A002` dead branch, `A003`
    /// vacuous predicate). Kept separate from `issues`: a degenerate
    /// template still executes, it just produces worthless samples.
    pub degeneracies: Vec<TemplateIssue>,
    /// The template's abstract result, joined over all hole assignments.
    pub summary: crate::absdom::AbsSummary,
    /// Static estimate in `[0, 1]` of the probability one instantiation
    /// attempt survives the generation funnel (the discard-cost model,
    /// calibrated against `PipelineReport` counters).
    pub survival: f64,
}

impl TemplateAnalysis {
    /// A defect-free analysis with the given requirement and the sound
    /// default abstract layer (top summary, no convictions, survival 1).
    pub fn clean(requirement: SchemaRequirement) -> TemplateAnalysis {
        TemplateAnalysis {
            issues: Vec::new(),
            requirement,
            degeneracies: Vec::new(),
            summary: crate::absdom::AbsSummary::TOP,
            survival: 1.0,
        }
    }

    /// Whether the template typechecked without any defect. Degeneracies do
    /// not count: they are quality findings, not malformedness.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Whether the abstract interpreter convicted the template of producing
    /// degenerate (constant / tautological / vacuous) output.
    pub fn is_degenerate(&self) -> bool {
        !self.degeneracies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn ctx(rows: &[Vec<&str>]) -> ExecContext {
        let table = Table::from_strings("t", rows).unwrap_or_else(|e| panic!("test table: {e}"));
        ExecContext::new(&table)
    }

    #[test]
    fn bottom_is_satisfied_by_the_empty_table() {
        let empty = ctx(&[vec!["a", "b"]]);
        assert!(SchemaRequirement::NONE.satisfied_by(&empty));
        assert!(SchemaRequirement::NONE.is_trivial());
    }

    #[test]
    fn join_is_pointwise_max() {
        let a = SchemaRequirement { min_rows: 1, min_number_cols: 2, ..SchemaRequirement::NONE };
        let b = SchemaRequirement {
            min_cols: 3,
            min_number_cols: 1,
            needs_number_column: true,
            ..SchemaRequirement::NONE
        };
        let j = a.join(b);
        assert_eq!(j.min_rows, 1);
        assert_eq!(j.min_cols, 3);
        assert_eq!(j.min_number_cols, 2);
        assert!(j.needs_number_column);
        // Commutative, idempotent, NONE is the identity.
        assert_eq!(a.join(b), b.join(a));
        assert_eq!(j.join(j), j);
        assert_eq!(a.join(SchemaRequirement::NONE), a);
    }

    #[test]
    fn implies_is_the_lattice_order() {
        let weak = SchemaRequirement { min_rows: 1, ..SchemaRequirement::NONE };
        let strong = SchemaRequirement {
            min_rows: 2,
            min_number_cols: 1,
            needs_number_column: true,
            ..SchemaRequirement::NONE
        };
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
        // Reflexive; NONE is implied by everything and implies only itself.
        assert!(strong.implies(&strong));
        assert!(strong.implies(&SchemaRequirement::NONE));
        assert!(!SchemaRequirement::NONE.implies(&weak));
        // Consistency with join: a.implies(b) iff a.join(b) == a.
        assert_eq!(strong.join(weak), strong);
        let incomparable = SchemaRequirement { min_date_cols: 1, ..SchemaRequirement::NONE };
        assert!(!strong.implies(&incomparable) && !incomparable.implies(&strong));
    }

    #[test]
    fn satisfied_by_checks_the_type_census() {
        let c = ctx(&[vec!["name", "pts", "when"], vec!["Ada", "3", "1990-05-01"]]);
        let needs_number = SchemaRequirement { min_number_cols: 1, ..SchemaRequirement::NONE };
        let needs_two_numbers = SchemaRequirement { min_number_cols: 2, ..SchemaRequirement::NONE };
        let needs_date = SchemaRequirement { min_date_cols: 1, ..SchemaRequirement::NONE };
        assert!(needs_number.satisfied_by(&c));
        assert!(!needs_two_numbers.satisfied_by(&c));
        assert!(needs_date.satisfied_by(&c));
    }

    #[test]
    fn satisfied_by_checks_per_column_numeric_values() {
        // `pts` has 2 numeric cells, `misc` only 1; 3 numeric cells exist
        // overall but no single column holds 3.
        let c = ctx(&[vec!["name", "pts", "misc"], vec!["Ada", "3", "x"], vec!["Bel", "5", "9"]]);
        let two = SchemaRequirement { min_col_numeric_values: 2, ..SchemaRequirement::NONE };
        let three = SchemaRequirement { min_col_numeric_values: 3, ..SchemaRequirement::NONE };
        assert!(two.satisfied_by(&c));
        assert!(!three.satisfied_by(&c));
        assert_eq!(two.join(three).min_col_numeric_values, 3);
        assert!(!two.is_trivial());
    }

    #[test]
    fn analysis_degeneracy_layer_defaults() {
        let a = TemplateAnalysis::clean(SchemaRequirement::NONE);
        assert!(a.is_clean());
        assert!(!a.is_degenerate());
        assert_eq!(a.summary, crate::absdom::AbsSummary::TOP);
        assert_eq!(a.survival, 1.0);
    }

    #[test]
    fn satisfied_by_checks_rows_and_addressable_cells() {
        let empty = ctx(&[vec!["name", "pts"]]);
        let row_req = SchemaRequirement { min_rows: 1, ..SchemaRequirement::NONE };
        assert!(!row_req.satisfied_by(&empty));
        let cells_req = SchemaRequirement { min_addressable_cells: 2, ..SchemaRequirement::NONE };
        let one_cell = ctx(&[vec!["name", "pts"], vec!["Ada", "3"]]);
        assert!(!cells_req.satisfied_by(&one_cell));
        let two_cells = ctx(&[vec!["name", "pts", "wins"], vec!["Ada", "3", "4"]]);
        assert!(cells_req.satisfied_by(&two_cells));
    }
}
