//! Schema-feasibility requirements computed by the template analyzers.
//!
//! A [`SchemaRequirement`] is the table-independent summary of what a
//! program template needs from a table before instantiation can possibly
//! succeed: how many columns of each inferred [`ColumnType`], how many
//! distinct columns overall, whether at least one row / addressable numeric
//! cell must exist. The per-DSL `analysis` modules (sqlexec / logicforms /
//! arithexpr) compute one per template; the pipeline compares it against a
//! table's [`ExecContext`] census to *prefilter* (template, table) pairs
//! that would only fail at runtime.
//!
//! Requirements form a join semilattice under pointwise `max` / `or`
//! ([`SchemaRequirement::join`]): `a.join(b)` is the weakest requirement at
//! least as strong as both, so the requirement of a compound program is the
//! join of its parts' requirements. [`SchemaRequirement::NONE`] is the
//! bottom element (satisfied by every table, including the empty one).
//!
//! **Soundness contract.** `!req.satisfied_by(ctx)` may only hold when
//! instantiating the template on the table behind `ctx` fails for *every*
//! RNG stream — the analyzers must under-approximate, never guess. The
//! workspace property tests (`tests/property_tests.rs`) pin this against
//! the real `try_instantiate_in` paths under many seeds.

use crate::context::ExecContext;
use crate::schema::ColumnType;

/// What a template provably needs from a table (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemaRequirement {
    /// Minimum row count (1 when the template must sample any cell value).
    pub min_rows: usize,
    /// Minimum total column count (distinct column holes of any type).
    pub min_cols: usize,
    /// Minimum columns inferred as [`ColumnType::Number`].
    pub min_number_cols: usize,
    /// Minimum columns inferred as [`ColumnType::Date`].
    pub min_date_cols: usize,
    /// Minimum columns inferred as [`ColumnType::Text`].
    pub min_text_cols: usize,
    /// Minimum cells addressable as `the <col> of <row>` (arithmetic
    /// templates; see `ExecContext::addressable_cells`).
    pub min_addressable_cells: usize,
    /// Whether at least one `Number` column must exist (arithmetic
    /// column-aggregation holes bind only to schema-`Number` columns).
    pub needs_number_column: bool,
}

impl SchemaRequirement {
    /// The bottom of the lattice: satisfied by every table.
    pub const NONE: SchemaRequirement = SchemaRequirement {
        min_rows: 0,
        min_cols: 0,
        min_number_cols: 0,
        min_date_cols: 0,
        min_text_cols: 0,
        min_addressable_cells: 0,
        needs_number_column: false,
    };

    /// Pointwise join (max / or): the weakest requirement implying both.
    pub fn join(self, other: SchemaRequirement) -> SchemaRequirement {
        SchemaRequirement {
            min_rows: self.min_rows.max(other.min_rows),
            min_cols: self.min_cols.max(other.min_cols),
            min_number_cols: self.min_number_cols.max(other.min_number_cols),
            min_date_cols: self.min_date_cols.max(other.min_date_cols),
            min_text_cols: self.min_text_cols.max(other.min_text_cols),
            min_addressable_cells: self.min_addressable_cells.max(other.min_addressable_cells),
            needs_number_column: self.needs_number_column || other.needs_number_column,
        }
    }

    /// `true` for the bottom element (no table can fail it).
    pub fn is_trivial(&self) -> bool {
        *self == SchemaRequirement::NONE
    }

    /// Whether the table behind `ctx` meets every bound. `false` means the
    /// analyzers proved instantiation cannot succeed on this table.
    pub fn satisfied_by(&self, ctx: &ExecContext) -> bool {
        ctx.n_rows() >= self.min_rows
            && ctx.n_cols() >= self.min_cols
            && ctx.column_type_count(ColumnType::Number) >= self.min_number_cols
            && ctx.column_type_count(ColumnType::Date) >= self.min_date_cols
            && ctx.column_type_count(ColumnType::Text) >= self.min_text_cols
            && ctx.addressable_cells().len() >= self.min_addressable_cells
            && (!self.needs_number_column || ctx.column_type_count(ColumnType::Number) > 0)
    }
}

/// One static defect found in a template, independent of any table.
///
/// `code` is a stable kebab-case identifier (ratcheted by
/// `xtask audit-templates`); `locus` names the offending construct inside
/// the template (a hole like `val1`, an operator path like `and.arg0`);
/// `message` explains the defect and its deterministic runtime consequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateIssue {
    pub code: &'static str,
    pub locus: String,
    pub message: String,
}

impl TemplateIssue {
    pub fn new(
        code: &'static str,
        locus: impl Into<String>,
        message: impl Into<String>,
    ) -> TemplateIssue {
        TemplateIssue { code, locus: locus.into(), message: message.into() }
    }
}

impl std::fmt::Display for TemplateIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} ({})", self.locus, self.message, self.code)
    }
}

/// The result of statically analyzing one template: every defect found plus
/// the weakest [`SchemaRequirement`] a table must meet for instantiation to
/// have any chance of succeeding.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateAnalysis {
    pub issues: Vec<TemplateIssue>,
    pub requirement: SchemaRequirement,
}

impl TemplateAnalysis {
    /// A defect-free analysis with the given requirement.
    pub fn clean(requirement: SchemaRequirement) -> TemplateAnalysis {
        TemplateAnalysis { issues: Vec::new(), requirement }
    }

    /// Whether the template typechecked without any defect.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn ctx(rows: &[Vec<&str>]) -> ExecContext {
        let table = Table::from_strings("t", rows).unwrap_or_else(|e| panic!("test table: {e}"));
        ExecContext::new(&table)
    }

    #[test]
    fn bottom_is_satisfied_by_the_empty_table() {
        let empty = ctx(&[vec!["a", "b"]]);
        assert!(SchemaRequirement::NONE.satisfied_by(&empty));
        assert!(SchemaRequirement::NONE.is_trivial());
    }

    #[test]
    fn join_is_pointwise_max() {
        let a = SchemaRequirement { min_rows: 1, min_number_cols: 2, ..SchemaRequirement::NONE };
        let b = SchemaRequirement {
            min_cols: 3,
            min_number_cols: 1,
            needs_number_column: true,
            ..SchemaRequirement::NONE
        };
        let j = a.join(b);
        assert_eq!(j.min_rows, 1);
        assert_eq!(j.min_cols, 3);
        assert_eq!(j.min_number_cols, 2);
        assert!(j.needs_number_column);
        // Commutative, idempotent, NONE is the identity.
        assert_eq!(a.join(b), b.join(a));
        assert_eq!(j.join(j), j);
        assert_eq!(a.join(SchemaRequirement::NONE), a);
    }

    #[test]
    fn satisfied_by_checks_the_type_census() {
        let c = ctx(&[vec!["name", "pts", "when"], vec!["Ada", "3", "1990-05-01"]]);
        let needs_number = SchemaRequirement { min_number_cols: 1, ..SchemaRequirement::NONE };
        let needs_two_numbers = SchemaRequirement { min_number_cols: 2, ..SchemaRequirement::NONE };
        let needs_date = SchemaRequirement { min_date_cols: 1, ..SchemaRequirement::NONE };
        assert!(needs_number.satisfied_by(&c));
        assert!(!needs_two_numbers.satisfied_by(&c));
        assert!(needs_date.satisfied_by(&c));
    }

    #[test]
    fn satisfied_by_checks_rows_and_addressable_cells() {
        let empty = ctx(&[vec!["name", "pts"]]);
        let row_req = SchemaRequirement { min_rows: 1, ..SchemaRequirement::NONE };
        assert!(!row_req.satisfied_by(&empty));
        let cells_req = SchemaRequirement { min_addressable_cells: 2, ..SchemaRequirement::NONE };
        let one_cell = ctx(&[vec!["name", "pts"], vec!["Ada", "3"]]);
        assert!(!cells_req.satisfied_by(&one_cell));
        let two_cells = ctx(&[vec!["name", "pts", "wins"], vec!["Ada", "3", "4"]]);
        assert!(cells_req.satisfied_by(&two_cells));
    }
}
