//! Cheaply clonable shared table handle.
//!
//! Accepted samples carry their table evidence around the pipeline, the
//! operators and the models. Storing a [`Table`] by value made every
//! accepted sample deep-copy its table (hundreds of `String` allocations on
//! wide zoo tables); [`SharedTable`] wraps the table in an [`Arc`] so a
//! sample costs one reference-count bump instead. The wrapper is
//! transparent on purpose: `Deref<Target = Table>`, `Debug`/`PartialEq`/
//! serde all delegate to the inner table, so fixed-seed golden digests
//! (FNV over `Debug`) and JSON round-trips are byte-identical to the
//! by-value representation.

use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted, immutable table handle. Clones are O(1).
#[derive(Clone)]
pub struct SharedTable(Arc<Table>);

impl SharedTable {
    /// Wraps a table. The table becomes immutable behind the handle; build
    /// a new `Table` (and wrap it) to "modify" one.
    pub fn new(table: Table) -> SharedTable {
        SharedTable(Arc::new(table))
    }

    /// The wrapped table.
    pub fn as_table(&self) -> &Table {
        &self.0
    }

    /// Extracts the inner table, cloning only when the handle is shared.
    pub fn into_table(self) -> Table {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl Deref for SharedTable {
    type Target = Table;

    fn deref(&self) -> &Table {
        &self.0
    }
}

impl AsRef<Table> for SharedTable {
    fn as_ref(&self) -> &Table {
        &self.0
    }
}

impl From<Table> for SharedTable {
    fn from(table: Table) -> SharedTable {
        SharedTable::new(table)
    }
}

impl From<SharedTable> for Table {
    fn from(shared: SharedTable) -> Table {
        shared.into_table()
    }
}

// Debug must render exactly like `Table` — the golden pipeline digests hash
// the `Debug` of whole samples.
impl fmt::Debug for SharedTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl fmt::Display for SharedTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&*self.0, f)
    }
}

impl PartialEq for SharedTable {
    fn eq(&self, other: &SharedTable) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl PartialEq<Table> for SharedTable {
    fn eq(&self, other: &Table) -> bool {
        *self.0 == *other
    }
}

impl Serialize for SharedTable {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for SharedTable {
    fn from_value(v: &serde::Value) -> Result<SharedTable, serde::Error> {
        Table::from_value(v).map(SharedTable::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::from_strings("t", &[vec!["a", "b"], vec!["x", "1"], vec!["y", "2"]])
            .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    #[test]
    fn debug_matches_inner_table() {
        let t = table();
        let shared = SharedTable::new(t.clone());
        assert_eq!(format!("{shared:?}"), format!("{t:?}"));
    }

    #[test]
    fn serde_round_trip_matches_table_json() -> Result<(), serde_json::Error> {
        let t = table();
        let shared = SharedTable::new(t.clone());
        assert_eq!(serde_json::to_string(&shared)?, serde_json::to_string(&t)?);
        let back: SharedTable = serde_json::from_str(&serde_json::to_string(&t)?)?;
        assert_eq!(back, t);
        Ok(())
    }

    #[test]
    fn clone_shares_storage() {
        let shared = SharedTable::new(table());
        let copy = shared.clone();
        assert!(Arc::ptr_eq(&shared.0, &copy.0));
        assert_eq!(shared, copy);
    }

    #[test]
    fn into_table_unwraps_without_clone_when_unique() {
        let t = table();
        let shared = SharedTable::new(t.clone());
        assert_eq!(shared.into_table(), t);
    }
}
