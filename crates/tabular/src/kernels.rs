//! Batched column kernels shared by the three program executors.
//!
//! The [`crate::ExecContext`] already stores each column's parsed numbers
//! densely (`numeric_pairs` / `numeric_values`); the executors historically
//! still walked tables cell-by-cell through `Value` dispatch. The kernels
//! here are the batched counterparts: tight sequential loops over `&[f64]`
//! slices and `(row, f64)` pair lists that the optimizer can keep in
//! registers, plus a [`KernelScratch`] pool of reusable row-index /
//! numeric / key buffers so the hot generation loop stops allocating
//! per-expression views.
//!
//! ## Bit-exactness contract
//!
//! Every kernel replicates the exact fold order and comparator of the
//! per-cell code path it replaces — sequential left-to-right folds, stable
//! sorts with the same comparator, the same tie rules. None of them
//! reassociate floating-point operations: the speedup comes from removing
//! per-cell `Value` dispatch, bounds-checked gathers and per-view
//! allocations, not from reordering arithmetic. This is what lets the
//! fixed-seed golden digests stay byte-identical while the executors
//! switch between the kernel and per-cell fallback paths. The dispatch
//! rules (when a column is kernel-eligible, when the per-cell fallback
//! runs) live with each executor; the parity property tests pin the two
//! paths equal on adversarial tables.

use crate::value::Value;
use std::cmp::Ordering;

/// Reusable buffers for the kernel paths, one per generation worker.
///
/// Holds a pool of row-index buffers (executor "views"), a numeric gather
/// buffer, a keyed-sort buffer for arg-superlatives, a `Value` buffer for
/// SQL aggregates and a case-folding buffer for text comparisons. A
/// default-constructed scratch is always valid; buffers are cleared on
/// acquisition, never read across uses.
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    rows_pool: Vec<Vec<usize>>,
    /// Numeric gather buffer for aggregate/sort kernels.
    pub nums: Vec<f64>,
    /// Keyed-sort buffer for nth-arg-superlatives.
    pub keys: Vec<(f64, usize)>,
    /// Cell buffer for SQL aggregate evaluation.
    pub cells: Vec<Value>,
    /// Case-folding buffer for text comparison kernels.
    pub fold: String,
    /// Highlighted-cell accumulator. Dedup happens once at the end of an
    /// evaluation (sort + dedup), which yields the same sorted set the
    /// executors historically collected through a hash set.
    pub hl: Vec<(usize, usize)>,
}

impl KernelScratch {
    /// Acquires a cleared row-index buffer from the pool (or allocates the
    /// first time). Return it with [`KernelScratch::put_rows`] when the view
    /// is consumed so later expressions reuse the capacity.
    pub fn take_rows(&mut self) -> Vec<usize> {
        let mut rows = self.rows_pool.pop().unwrap_or_default();
        rows.clear();
        rows
    }

    /// Returns a row-index buffer to the pool.
    pub fn put_rows(&mut self, rows: Vec<usize>) {
        // Unbounded growth is impossible: the pool can only hold as many
        // buffers as the deepest expression ever held live at once.
        self.rows_pool.push(rows);
    }
}

/// Sequential sum, identical to `xs.iter().sum::<f64>()`.
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Sequential max fold, identical to
/// `xs.iter().cloned().fold(f64::MIN, f64::max)`.
#[inline]
pub fn fold_max(xs: &[f64]) -> f64 {
    let mut acc = f64::MIN;
    for &x in xs {
        acc = acc.max(x);
    }
    acc
}

/// Sequential min fold, identical to
/// `xs.iter().cloned().fold(f64::MAX, f64::min)`.
#[inline]
pub fn fold_min(xs: &[f64]) -> f64 {
    let mut acc = f64::MAX;
    for &x in xs {
        acc = acc.min(x);
    }
    acc
}

/// The comparator `Value::cmp` uses between two `Value::Number`s: IEEE
/// partial order with incomparable pairs collapsing to `Equal`. All kernel
/// sorts use this so their permutations match `Value`-keyed sorts exactly.
#[inline]
pub fn number_cmp(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

/// First row index holding the maximum value: the head of a stable
/// descending `Value`-keyed sort over the same `(row, value)` sequence.
#[inline]
pub fn argmax_pairs(pairs: impl Iterator<Item = (usize, f64)>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (ri, v) in pairs {
        match best {
            Some((_, bv)) if number_cmp(v, bv) != Ordering::Greater => {}
            _ => best = Some((ri, v)),
        }
    }
    best.map(|(ri, _)| ri)
}

/// First row index holding the minimum value: the head of a stable
/// ascending `Value`-keyed sort over the same `(row, value)` sequence.
#[inline]
pub fn argmin_pairs(pairs: impl Iterator<Item = (usize, f64)>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (ri, v) in pairs {
        match best {
            Some((_, bv)) if number_cmp(v, bv) != Ordering::Less => {}
            _ => best = Some((ri, v)),
        }
    }
    best.map(|(ri, _)| ri)
}

/// Row index holding the `n`-th largest (`descending`) or smallest value
/// (1-based), with ties broken by input order — the `n-1` element of a
/// stable keyed sort, without allocating the key vector (it lives in
/// `keys`).
pub fn nth_arg_pairs(
    pairs: impl Iterator<Item = (usize, f64)>,
    n: usize,
    descending: bool,
    keys: &mut Vec<(f64, usize)>,
) -> Option<usize> {
    keys.clear();
    for (ri, v) in pairs {
        keys.push((v, ri));
    }
    if descending {
        keys.sort_by(|a, b| number_cmp(b.0, a.0));
    } else {
        keys.sort_by(|a, b| number_cmp(a.0, b.0));
    }
    keys.get(n.checked_sub(1)?).map(|&(_, ri)| ri)
}

/// Sorts `nums` ascending with `f64::total_cmp` — the executors' shared
/// ordering for nth-max/nth-min aggregates.
#[inline]
pub fn sort_total(nums: &mut [f64]) {
    nums.sort_by(f64::total_cmp);
}

/// Appends every `(row, folded)` text-pool entry whose folded bytes equal
/// `needle` (already case-folded) to `out`.
#[inline]
pub fn select_text_eq(folded: &[(usize, String)], needle: &str, out: &mut Vec<usize>) {
    for (ri, cell) in folded {
        if cell.as_str() == needle {
            out.push(*ri);
        }
    }
}

/// ASCII-lowercases `s` into `buf` without allocating (clears `buf` first).
#[inline]
pub fn fold_ascii_lower(s: &str, buf: &mut String) {
    buf.clear();
    buf.push_str(s);
    // Safety-free in-place fold: ASCII lowercasing never changes byte
    // length and `make_ascii_lowercase` works on the raw bytes.
    buf[..].make_ascii_lowercase();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_iterator_sum() {
        let xs = [1.5, -2.25, 1e308, -1e308, 0.125];
        assert_eq!(sum(&xs).to_bits(), xs.iter().sum::<f64>().to_bits());
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn folds_match_per_cell_folds() {
        let xs = [3.0, -0.0, 0.0, 7.5, 7.5, -2.0];
        assert_eq!(fold_max(&xs).to_bits(), xs.iter().cloned().fold(f64::MIN, f64::max).to_bits());
        assert_eq!(fold_min(&xs).to_bits(), xs.iter().cloned().fold(f64::MAX, f64::min).to_bits());
    }

    #[test]
    fn argmax_is_first_max_argmin_is_first_min() {
        let pairs = [(0usize, 2.0), (1, 9.0), (2, 9.0), (3, -1.0), (4, -1.0)];
        assert_eq!(argmax_pairs(pairs.iter().copied()), Some(1));
        assert_eq!(argmin_pairs(pairs.iter().copied()), Some(3));
        assert_eq!(argmax_pairs(std::iter::empty()), None);
    }

    #[test]
    fn nth_arg_matches_stable_sort() {
        let pairs = [(0usize, 2.0), (1, 9.0), (2, 9.0), (3, -1.0)];
        let mut keys = Vec::new();
        // Descending: 9(row1), 9(row2), 2(row0), -1(row3).
        assert_eq!(nth_arg_pairs(pairs.iter().copied(), 1, true, &mut keys), Some(1));
        assert_eq!(nth_arg_pairs(pairs.iter().copied(), 2, true, &mut keys), Some(2));
        assert_eq!(nth_arg_pairs(pairs.iter().copied(), 3, true, &mut keys), Some(0));
        // Ascending: -1(row3), 2(row0), 9(row1), 9(row2).
        assert_eq!(nth_arg_pairs(pairs.iter().copied(), 2, false, &mut keys), Some(0));
        assert_eq!(nth_arg_pairs(pairs.iter().copied(), 0, false, &mut keys), None);
        assert_eq!(nth_arg_pairs(pairs.iter().copied(), 5, false, &mut keys), None);
    }

    #[test]
    fn rows_pool_recycles_capacity() {
        let mut scratch = KernelScratch::default();
        let mut rows = scratch.take_rows();
        rows.extend(0..100);
        let cap = rows.capacity();
        scratch.put_rows(rows);
        let rows = scratch.take_rows();
        assert!(rows.is_empty());
        assert_eq!(rows.capacity(), cap);
    }

    #[test]
    fn fold_ascii_lower_reuses_buffer() {
        let mut buf = String::new();
        fold_ascii_lower("MiXeD Case 42", &mut buf);
        assert_eq!(buf, "mixed case 42");
        fold_ascii_lower("YES", &mut buf);
        assert_eq!(buf, "yes");
    }
}
