//! Abstract domains for template-level abstract interpretation.
//!
//! The per-DSL `absint` passes (sqlexec / logicforms / arithexpr) evaluate
//! every template over these lattices, *joined across all hole
//! assignments*: a `valN` hole denotes "any cell value", a column hole
//! "any column of the right type", so the abstract result encloses every
//! concrete outcome any instantiation on any table can produce. Three
//! domains cover the three result sorts of the program layer:
//!
//! * [`Interval`] — numeric results. Bounds are IEEE `f64` and the
//!   transfer functions use plain IEEE endpoint arithmetic, which is sound
//!   by rounding monotonicity: for an exact result `r` in `[lo*, hi*]`,
//!   `fl(r)` lies in `[fl(lo*), fl(hi*)]`, and overflow widens bounds to
//!   `±inf` rather than dropping them. Cell values are always finite
//!   (`Value::parse` filters non-finite spellings), so the abstraction of
//!   a cell is [`Interval::FINITE`]; derived results may still overflow,
//!   so operator outputs can be fully unbounded.
//! * [`Kleene`] — truth values, as the *set* of booleans a program can
//!   yield (errors excluded): `True` = {true}, `False` = {false},
//!   `Unknown` = {true, false}, `Never` = {} (the program can only error
//!   or never produces a truth value at all). The refinement check
//!   [`Kleene::admits`] is what the soundness property test pins: every
//!   concrete truth outcome must be admitted by the abstract verdict.
//! * [`Card`] — row-set cardinalities as a three-flag powerset lattice
//!   over {empty, exactly-one, many}: filters down-close, `limit 1`
//!   truncates, and [`Card::count_interval`] bridges back into the
//!   numeric domain for `count`-style operators.
//!
//! [`AbsSummary`] packages the joined fixed point of one template; the
//! degeneracy rules (A001/A002/A003) and the static discard-cost model
//! read it, and `TemplateAnalysis` carries it to `uctr::analysis`.

use std::fmt;

/// A closed interval of `f64` values, the numeric abstract domain.
///
/// Invariant: either `lo <= hi`, or the interval is [`Interval::EMPTY`]
/// (`lo = +inf, hi = -inf`), the bottom element. `NaN` never appears in
/// the bounds; a `NaN` concrete value is only admitted by
/// [`Interval::TOP`] (transfer functions widen to top whenever a `NaN`
/// result is possible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

// Transfer functions are named after the DSL operations they abstract,
// not std::ops: they are total over EMPTY/TOP and widen instead of
// following IEEE semantics, so an `a + b` spelling would mislead.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// Bottom: no numeric result is possible.
    pub const EMPTY: Interval = Interval { lo: f64::INFINITY, hi: f64::NEG_INFINITY };
    /// Top: any `f64`, including non-finite ones.
    pub const TOP: Interval = Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY };
    /// Any *finite* `f64` — the abstraction of a parsed cell value
    /// (`Value::parse` rejects `nan`/`inf` spellings).
    pub const FINITE: Interval = Interval { lo: f64::MIN, hi: f64::MAX };

    /// The interval holding exactly `x`. A non-finite `x` (overflowed
    /// constant, `NaN`) widens to [`Interval::TOP`] so the no-`NaN`-bounds
    /// invariant holds.
    pub fn point(x: f64) -> Interval {
        if x.is_nan() {
            Interval::TOP
        } else {
            Interval { lo: x, hi: x }
        }
    }

    /// `[lo, hi]`, normalizing malformed bounds to a sound enclosure.
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Interval::TOP
        } else {
            Interval { lo, hi }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    pub fn is_top(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// A single-value interval (degenerate: the program's numeric output
    /// is a compile-time constant).
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether the concrete value `x` is enclosed. `NaN` is admitted only
    /// by [`Interval::TOP`] — the transfer functions widen to top whenever
    /// a `NaN` outcome is reachable.
    pub fn contains(&self, x: f64) -> bool {
        if x.is_nan() {
            self.is_top()
        } else {
            self.lo <= x && x <= self.hi
        }
    }

    /// Abstract containment: every value `other` admits, `self` admits
    /// too (`other ⊑ self`). The empty interval is enclosed by anything.
    pub fn encloses(&self, other: &Interval) -> bool {
        other.is_empty() || (!self.is_empty() && self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            other
        } else if other.is_empty() {
            self
        } else {
            Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
        }
    }

    fn map_bounds(lo: f64, hi: f64) -> Interval {
        // IEEE endpoint arithmetic can yield NaN only from inf - inf /
        // 0 * inf shapes; those concrete outcomes are possible too, so
        // widen the affected side all the way out.
        Interval {
            lo: if lo.is_nan() { f64::NEG_INFINITY } else { lo },
            hi: if hi.is_nan() { f64::INFINITY } else { hi },
        }
    }

    pub fn add(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::map_bounds(self.lo + other.lo, self.hi + other.hi)
    }

    pub fn sub(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::map_bounds(self.lo - other.hi, self.hi - other.lo)
    }

    pub fn mul(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        // With an unbounded operand the 0 * inf = NaN corner is concretely
        // reachable; only finite-bounded operands keep endpoint products
        // exhaustive.
        if !(self.lo.is_finite()
            && self.hi.is_finite()
            && other.lo.is_finite()
            && other.hi.is_finite())
        {
            return Interval::TOP;
        }
        let products =
            [self.lo * other.lo, self.lo * other.hi, self.hi * other.lo, self.hi * other.hi];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in products {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Interval::map_bounds(lo, hi)
    }

    /// Division as the executors implement it: an exact-zero denominator
    /// is a runtime error (no result), so a zero *point* denominator is
    /// [`Interval::EMPTY`]. A denominator interval merely containing zero
    /// still admits values arbitrarily close to it, making the quotient
    /// unbounded — only a nonzero point denominator keeps bounds.
    pub fn div(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        if other.is_point() {
            if other.lo == 0.0 {
                return Interval::EMPTY;
            }
            if other.lo.is_finite() && self.lo.is_finite() && self.hi.is_finite() {
                let (a, b) = (self.lo / other.lo, self.hi / other.lo);
                return Interval::map_bounds(a.min(b), a.max(b));
            }
        }
        Interval::TOP
    }

    /// `powf` as the arithmetic executor applies it (a non-finite result
    /// is a runtime error). Only the IEEE-guaranteed constant shapes stay
    /// precise: `pow(x, 0) = 1` and `pow(1, y) = 1` for *every* `x`/`y`,
    /// and two point operands replay the concrete computation.
    pub fn exp(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        if (other.is_point() && other.lo == 0.0) || (self.is_point() && self.lo == 1.0) {
            return Interval::point(1.0);
        }
        if self.is_point() && other.is_point() {
            let v = self.lo.powf(other.lo);
            return if v.is_finite() { Interval::point(v) } else { Interval::EMPTY };
        }
        Interval::TOP
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// The sign abstraction of an interval — a coarse readback used by the
/// degeneracy rules (e.g. `count { ... }` is [`Sign::NonNegative`], so
/// `less {{ count ; 0 }}` is always false).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// The empty interval: no value at all.
    Never,
    Negative,
    Zero,
    Positive,
    NonNegative,
    NonPositive,
    /// Both signs possible.
    AnySign,
}

impl Interval {
    /// The sign lattice point this interval maps to.
    pub fn sign(&self) -> Sign {
        if self.is_empty() {
            Sign::Never
        } else if self.lo == 0.0 && self.hi == 0.0 {
            Sign::Zero
        } else if self.lo > 0.0 {
            Sign::Positive
        } else if self.hi < 0.0 {
            Sign::Negative
        } else if self.lo >= 0.0 {
            Sign::NonNegative
        } else if self.hi <= 0.0 {
            Sign::NonPositive
        } else {
            Sign::AnySign
        }
    }
}

/// Three-valued Kleene logic plus a bottom, read as the *set* of booleans
/// a program can yield: `True` = {true}, `False` = {false}, `Unknown` =
/// {true, false}, `Never` = {} (only errors, or no truth value at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kleene {
    Never,
    True,
    False,
    #[default]
    Unknown,
}

// `not` deliberately mirrors the DSL's logical negation (total over
// `Never`), not std::ops::Not.
#[allow(clippy::should_implement_trait)]
impl Kleene {
    pub fn from_bool(b: bool) -> Kleene {
        if b {
            Kleene::True
        } else {
            Kleene::False
        }
    }

    /// Whether the concrete truth outcome `b` is admitted — the refinement
    /// `b ⊑ self` the soundness property test asserts.
    pub fn admits(self, b: bool) -> bool {
        match self {
            Kleene::Never => false,
            Kleene::True => b,
            Kleene::False => !b,
            Kleene::Unknown => true,
        }
    }

    /// A single determined truth value — the claim is degenerate.
    pub fn is_constant(self) -> bool {
        matches!(self, Kleene::True | Kleene::False)
    }

    /// Abstract containment over the value sets: `other ⊆ self`.
    pub fn contains(self, other: Kleene) -> bool {
        match (self, other) {
            (_, Kleene::Never) | (Kleene::Unknown, _) => true,
            (a, b) => a == b,
        }
    }

    /// Least upper bound (set union).
    pub fn join(self, other: Kleene) -> Kleene {
        match (self, other) {
            (Kleene::Never, x) | (x, Kleene::Never) => x,
            (a, b) if a == b => a,
            _ => Kleene::Unknown,
        }
    }

    /// Pointwise conjunction over the value sets (strict: an empty side
    /// empties the result, mirroring the executors' strict `and`).
    pub fn and(self, other: Kleene) -> Kleene {
        match (self, other) {
            (Kleene::Never, _) | (_, Kleene::Never) => Kleene::Never,
            (Kleene::False, _) | (_, Kleene::False) => Kleene::False,
            (Kleene::True, Kleene::True) => Kleene::True,
            _ => Kleene::Unknown,
        }
    }

    /// Pointwise disjunction over the value sets.
    pub fn or(self, other: Kleene) -> Kleene {
        match (self, other) {
            (Kleene::Never, _) | (_, Kleene::Never) => Kleene::Never,
            (Kleene::True, _) | (_, Kleene::True) => Kleene::True,
            (Kleene::False, Kleene::False) => Kleene::False,
            _ => Kleene::Unknown,
        }
    }

    /// Pointwise negation.
    pub fn not(self) -> Kleene {
        match self {
            Kleene::Never => Kleene::Never,
            Kleene::True => Kleene::False,
            Kleene::False => Kleene::True,
            Kleene::Unknown => Kleene::Unknown,
        }
    }
}

impl fmt::Display for Kleene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kleene::Never => "never",
            Kleene::True => "true",
            Kleene::False => "false",
            Kleene::Unknown => "unknown",
        })
    }
}

/// The cardinality lattice for row sets: which of {empty, exactly one,
/// two-or-more} a produced view can be. The powerset of three flags, with
/// pointwise-or join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Card {
    pub can_empty: bool,
    pub can_one: bool,
    pub can_many: bool,
}

impl Card {
    /// Bottom: no row set is ever produced.
    pub const NEVER: Card = Card { can_empty: false, can_one: false, can_many: false };
    /// Top: any cardinality (e.g. `all_rows` over an unknown table).
    pub const ANY: Card = Card { can_empty: true, can_one: true, can_many: true };
    /// Exactly the empty view (a provably unsatisfiable filter).
    pub const EMPTY_ONLY: Card = Card { can_empty: true, can_one: false, can_many: false };

    pub fn join(self, other: Card) -> Card {
        Card {
            can_empty: self.can_empty || other.can_empty,
            can_one: self.can_one || other.can_one,
            can_many: self.can_many || other.can_many,
        }
    }

    /// Abstract containment: flagwise, every cardinality `other` admits,
    /// `self` admits too.
    pub fn contains(self, other: Card) -> bool {
        (self.can_empty || !other.can_empty)
            && (self.can_one || !other.can_one)
            && (self.can_many || !other.can_many)
    }

    /// The effect of an arbitrary row filter: any subset of the input can
    /// survive, so the lattice point down-closes.
    pub fn filter(self) -> Card {
        let any = self.can_empty || self.can_one || self.can_many;
        Card { can_empty: any, can_one: self.can_one || self.can_many, can_many: self.can_many }
    }

    /// The effect of `limit 1`: many collapses to one.
    pub fn limit_one(self) -> Card {
        Card { can_empty: self.can_empty, can_one: self.can_one || self.can_many, can_many: false }
    }

    /// Whether a concrete row count is admitted.
    pub fn admits(self, n: usize) -> bool {
        match n {
            0 => self.can_empty,
            1 => self.can_one,
            _ => self.can_many,
        }
    }

    /// `true` when every admitted view is empty (and some view *is*
    /// produced): the program's result set is degenerate.
    pub fn is_always_empty(self) -> bool {
        self == Card::EMPTY_ONLY
    }

    /// The bridge into the numeric domain: the interval of row counts
    /// (`count { view }`, `select count(*)`).
    pub fn count_interval(self) -> Interval {
        if self == Card::NEVER {
            return Interval::EMPTY;
        }
        let lo = if self.can_empty {
            0.0
        } else if self.can_one {
            1.0
        } else {
            2.0
        };
        let hi = if self.can_many {
            f64::INFINITY
        } else if self.can_one {
            1.0
        } else {
            0.0
        };
        Interval::new(lo, hi)
    }
}

impl fmt::Display for Card {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.can_empty {
            parts.push("0");
        }
        if self.can_one {
            parts.push("1");
        }
        if self.can_many {
            parts.push("2+");
        }
        write!(f, "{{{}}}", parts.join(","))
    }
}

/// The abstract result of one template, joined over every hole assignment
/// and table: the numeric answers it can produce, the truth values it can
/// yield, and the cardinalities of row sets it can emit. Components that
/// a program sort cannot produce sit at their bottom element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsSummary {
    pub value: Interval,
    pub truth: Kleene,
    pub rows: Card,
}

impl AbsSummary {
    /// The all-top summary — the sound default when no pass ran.
    pub const TOP: AbsSummary =
        AbsSummary { value: Interval::TOP, truth: Kleene::Unknown, rows: Card::ANY };

    /// The all-bottom summary, for folding joins.
    pub const NEVER: AbsSummary =
        AbsSummary { value: Interval::EMPTY, truth: Kleene::Never, rows: Card::NEVER };

    pub fn join(self, other: AbsSummary) -> AbsSummary {
        AbsSummary {
            value: self.value.join(other.value),
            truth: self.truth.join(other.truth),
            rows: self.rows.join(other.rows),
        }
    }

    /// Componentwise abstract containment (`other ⊑ self`): everything the
    /// other template can produce, this one can produce too. One half of
    /// the subsumption preorder in `uctr::analysis`.
    pub fn contains(&self, other: &AbsSummary) -> bool {
        self.value.encloses(&other.value)
            && self.truth.contains(other.truth)
            && self.rows.contains(other.rows)
    }
}

impl Default for AbsSummary {
    fn default() -> AbsSummary {
        AbsSummary::TOP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_lattice_basics() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(2.0, 5.0);
        assert_eq!(a.join(b), Interval::new(1.0, 5.0));
        assert_eq!(a.join(Interval::EMPTY), a);
        assert!(Interval::EMPTY.is_empty());
        assert!(Interval::TOP.is_top());
        assert!(Interval::point(2.0).is_point());
        assert!(a.contains(2.5));
        assert!(!a.contains(0.0));
        assert!(!a.contains(f64::NAN), "NaN only lives in TOP");
        assert!(Interval::TOP.contains(f64::NAN));
        assert_eq!(Interval::point(f64::NAN), Interval::TOP);
        assert_eq!(Interval::new(3.0, 1.0), Interval::TOP, "malformed bounds widen");
    }

    #[test]
    fn interval_arithmetic_is_sound_on_samples() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(-2.0, 4.0);
        for x in [1.0, 2.0, 3.0] {
            for y in [-2.0, 0.0, 4.0] {
                assert!(a.add(b).contains(x + y), "{x}+{y}");
                assert!(a.sub(b).contains(x - y), "{x}-{y}");
                assert!(a.mul(b).contains(x * y), "{x}*{y}");
                if y != 0.0 {
                    assert!(a.div(Interval::point(y)).contains(x / y), "{x}/{y}");
                }
            }
        }
    }

    #[test]
    fn interval_overflow_widens_not_drops() {
        let big = Interval::new(f64::MAX / 2.0, f64::MAX);
        let sum = big.add(big);
        assert!(sum.contains(f64::INFINITY), "overflowed bound must stay enclosed: {sum}");
        // FINITE ops stay closed over the double-rounding.
        let f = Interval::FINITE;
        assert!(f.add(f).contains(f64::MAX));
        assert!(f.mul(f).is_top() || f.mul(f).contains(f64::INFINITY));
    }

    #[test]
    fn division_by_zero_point_is_empty() {
        let a = Interval::new(1.0, 2.0);
        assert_eq!(a.div(Interval::point(0.0)), Interval::EMPTY);
        assert_eq!(a.div(Interval::point(2.0)), Interval::new(0.5, 1.0));
        assert!(a.div(Interval::new(-1.0, 1.0)).is_top(), "denominator spanning 0 is unbounded");
    }

    #[test]
    fn exp_constant_shapes() {
        assert_eq!(Interval::TOP.exp(Interval::point(0.0)), Interval::point(1.0));
        assert_eq!(Interval::point(1.0).exp(Interval::TOP), Interval::point(1.0));
        assert_eq!(Interval::point(2.0).exp(Interval::point(10.0)), Interval::point(1024.0));
        assert_eq!(
            Interval::point(1e308).exp(Interval::point(2.0)),
            Interval::EMPTY,
            "non-finite powf is a runtime error, not a value"
        );
        assert!(Interval::FINITE.exp(Interval::point(2.0)).is_top());
    }

    #[test]
    fn sign_readback() {
        assert_eq!(Interval::new(0.0, f64::INFINITY).sign(), Sign::NonNegative);
        assert_eq!(Interval::point(0.0).sign(), Sign::Zero);
        assert_eq!(Interval::new(1.0, 5.0).sign(), Sign::Positive);
        assert_eq!(Interval::new(-5.0, -1.0).sign(), Sign::Negative);
        assert_eq!(Interval::new(-1.0, 0.0).sign(), Sign::NonPositive);
        assert_eq!(Interval::TOP.sign(), Sign::AnySign);
        assert_eq!(Interval::EMPTY.sign(), Sign::Never);
    }

    #[test]
    fn kleene_tables() {
        use Kleene::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(False), False);
        assert_eq!(True.not(), False);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(Never.and(True), Never, "strict: an erroring side empties the set");
        assert_eq!(True.join(False), Unknown);
        assert_eq!(Never.join(True), True);
        assert!(True.admits(true) && !True.admits(false));
        assert!(Unknown.admits(true) && Unknown.admits(false));
        assert!(!Never.admits(true) && !Never.admits(false));
        assert!(True.is_constant() && !Unknown.is_constant());
    }

    #[test]
    fn card_lattice() {
        assert_eq!(Card::ANY.filter(), Card::ANY);
        let exactly_many = Card { can_empty: false, can_one: false, can_many: true };
        assert_eq!(exactly_many.filter(), Card::ANY, "filters down-close");
        assert!(!exactly_many.limit_one().can_many);
        assert!(exactly_many.limit_one().can_one);
        assert!(Card::EMPTY_ONLY.is_always_empty());
        assert!(!Card::ANY.is_always_empty());
        assert!(Card::ANY.admits(0) && Card::ANY.admits(1) && Card::ANY.admits(7));
        assert!(!Card::EMPTY_ONLY.admits(1));
        assert_eq!(Card::EMPTY_ONLY.count_interval(), Interval::point(0.0));
        assert_eq!(exactly_many.count_interval(), Interval::new(2.0, f64::INFINITY));
        assert_eq!(Card::NEVER.count_interval(), Interval::EMPTY);
        assert_eq!(Card::ANY.count_interval(), Interval::new(0.0, f64::INFINITY));
    }

    #[test]
    fn containment_agrees_with_join() {
        // x.contains(y) iff x.join(y) == x, on a small generator set.
        let intervals = [
            Interval::EMPTY,
            Interval::TOP,
            Interval::FINITE,
            Interval::point(0.0),
            Interval::new(1.0, 3.0),
            Interval::new(-2.0, 5.0),
        ];
        for a in intervals {
            for b in intervals {
                assert_eq!(a.encloses(&b), a.join(b) == a, "{a} vs {b}");
            }
        }
        use Kleene::*;
        for a in [Never, True, False, Unknown] {
            for b in [Never, True, False, Unknown] {
                assert_eq!(a.contains(b), a.join(b) == a, "{a} vs {b}");
            }
        }
        let mut cards = Vec::new();
        for e in [false, true] {
            for o in [false, true] {
                for m in [false, true] {
                    cards.push(Card { can_empty: e, can_one: o, can_many: m });
                }
            }
        }
        for &a in &cards {
            for &b in &cards {
                assert_eq!(a.contains(b), a.join(b) == a, "{a} vs {b}");
            }
        }
        assert!(AbsSummary::TOP.contains(&AbsSummary::NEVER));
        assert!(!AbsSummary::NEVER.contains(&AbsSummary::TOP));
        let point =
            AbsSummary { value: Interval::point(1.0), truth: Kleene::True, rows: Card::EMPTY_ONLY };
        assert!(AbsSummary::TOP.contains(&point) && point.contains(&point));
    }

    #[test]
    fn summary_join_and_defaults() {
        let s = AbsSummary::NEVER.join(AbsSummary {
            value: Interval::point(1.0),
            truth: Kleene::True,
            rows: Card::EMPTY_ONLY,
        });
        assert_eq!(s.value, Interval::point(1.0));
        assert_eq!(s.truth, Kleene::True);
        assert!(s.rows.is_always_empty());
        assert_eq!(AbsSummary::default(), AbsSummary::TOP);
        assert_eq!(AbsSummary::TOP.join(s), AbsSummary::TOP);
    }
}
