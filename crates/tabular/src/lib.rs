//! # tabular — relational tables for UCTR
//!
//! The substrate data model for the UCTR reproduction: dynamically typed
//! cell [`Value`]s with a total order, typed [`Schema`]s with inference,
//! the [`Table`] container with the row/column algebra all three program
//! executors build on, CSV/JSON I/O, and the text utilities (tokenization,
//! token-F1, sentence splitting) shared by the generator, the operators and
//! the reasoning models.
//!
//! ```
//! use tabular::{Table, Value};
//!
//! let t = Table::from_strings(
//!     "Departments",
//!     &[
//!         vec!["department", "total deputies"],
//!         vec!["Commerce", "18"],
//!         vec!["Defense", "42"],
//!     ],
//! ).unwrap();
//! assert_eq!(t.argmax(1), Some(1));
//! assert_eq!(t.cell(1, 0), Some(&Value::text("Defense")));
//! ```

pub mod absdom;
pub mod context;
pub mod io;
pub mod kernels;
pub mod requirement;
pub mod schema;
pub mod shared;
pub mod table;
pub mod text;
pub mod value;

pub use absdom::{AbsSummary, Card, Interval, Kleene, Sign};
pub use context::ExecContext;
pub use io::{table_from_csv, table_to_csv, CsvError};
pub use kernels::KernelScratch;
pub use requirement::{SchemaRequirement, TemplateAnalysis, TemplateIssue};
pub use schema::{infer_column_type, Column, ColumnType, Schema};
pub use shared::SharedTable;
pub use table::{Table, TableBuilder, TableError};
pub use value::{format_number, nearly_equal, Date, Value};
