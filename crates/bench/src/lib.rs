//! Shared harness code for the experiment binaries.
//!
//! One binary per paper table/figure regenerates the corresponding artifact
//! (see DESIGN.md §4). This library holds the evaluation plumbing they
//! share: model training wrappers per setting (supervised / unsupervised /
//! few-shot / augmentation), per-evidence-type breakdowns, and the table
//! printer that renders paper-vs-measured rows.

use models::{
    em_f1, feverous_score, label_accuracy, micro_f1, EvidenceView, QaModel, TrainConfig,
    VerdictSpace, VerifierModel,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tabular::Table;
use uctr::{EvidenceType, Sample, Verdict};

/// Fixed seed for the few-shot subset (paper: "randomly selected from the
/// original training set").
pub const FEW_SHOT_SEED: u64 = 50;

/// Picks `n` random training samples (the few-shot budget; paper uses 50).
pub fn few_shot(train: &[Sample], n: usize) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(FEW_SHOT_SEED);
    let mut idx: Vec<usize> = (0..train.len()).collect();
    idx.shuffle(&mut rng);
    idx.into_iter().take(n).map(|i| train[i].clone()).collect()
}

/// Restricts a sample's evidence (used for the Text-Span-only /
/// Table-Cell-only baselines of Table III).
pub fn restrict(sample: &Sample, view: EvidenceView) -> Sample {
    match view {
        EvidenceView::Full => sample.clone(),
        EvidenceView::TableOnly => {
            let mut s = sample.clone();
            s.context.clear();
            s
        }
        EvidenceView::SentenceOnly => {
            let mut s = sample.clone();
            s.table = Table::from_strings(&sample.table.title, &[vec![]])
                .unwrap_or_else(|_| sample.table.clone());
            s
        }
    }
}

pub fn restrict_all(samples: &[Sample], view: EvidenceView) -> Vec<Sample> {
    samples.iter().map(|s| restrict(s, view)).collect()
}

/// EM/F1 of a QA model on an evaluation set.
pub fn qa_em_f1(model: &QaModel, samples: &[Sample]) -> (f64, f64) {
    let pairs: Vec<(String, String)> = samples
        .iter()
        .filter_map(|s| Some((model.predict(s), s.label.as_answer()?.to_string())))
        .collect();
    em_f1(&pairs)
}

/// EM/F1 broken down by evidence type plus the total (Table III layout).
pub fn qa_breakdown(model: &QaModel, samples: &[Sample]) -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for ev in [EvidenceType::TableOnly, EvidenceType::TableText, EvidenceType::TextOnly] {
        let subset: Vec<Sample> = samples.iter().filter(|s| s.evidence == ev).cloned().collect();
        let (em, f1) = qa_em_f1(model, &subset);
        rows.push((ev.to_string(), em, f1));
    }
    let (em, f1) = qa_em_f1(model, samples);
    rows.push(("Total".to_string(), em, f1));
    rows
}

/// Verdict predictions of a verifier on a set.
pub fn verifier_predictions(model: &VerifierModel, samples: &[Sample]) -> Vec<Verdict> {
    samples.iter().map(|s| model.predict(s)).collect()
}

/// (label accuracy, FEVEROUS score) of a verifier.
pub fn verifier_feverous(model: &VerifierModel, samples: &[Sample]) -> (f64, f64) {
    let preds = verifier_predictions(model, samples);
    let pairs: Vec<(Verdict, Verdict)> = preds
        .iter()
        .zip(samples)
        .filter_map(|(p, s)| Some((*p, s.label.as_verdict()?)))
        .collect();
    (label_accuracy(&pairs), feverous_score(samples, &preds))
}

/// 3-way micro F1 of a verifier.
pub fn verifier_micro_f1(model: &VerifierModel, samples: &[Sample]) -> f64 {
    let pairs: Vec<(Verdict, Verdict)> = samples
        .iter()
        .filter_map(|s| Some((model.predict(s), s.label.as_verdict()?)))
        .collect();
    micro_f1(&pairs)
}

/// Pretrain-on-synthetic then fine-tune-on-gold (the few-shot recipe:
/// a light fine-tune that must not wash out the pretraining).
pub fn pretrain_finetune_verifier(
    synthetic: &[Sample],
    gold: &[Sample],
    space: VerdictSpace,
) -> VerifierModel {
    pretrain_finetune_verifier_epochs(synthetic, gold, space, 4)
}

/// Augmentation recipe (paper §V-D): pretrain on synthetic, then fine-tune
/// on the FULL gold train set with full training epochs.
pub fn pretrain_finetune_verifier_epochs(
    synthetic: &[Sample],
    gold: &[Sample],
    space: VerdictSpace,
    epochs: usize,
) -> VerifierModel {
    let mut model = VerifierModel::train(synthetic, space, EvidenceView::Full);
    model.fine_tune(gold, TrainConfig { epochs, ..TrainConfig::default() });
    model
}

/// Few-shot recipe for QA.
pub fn pretrain_finetune_qa(synthetic: &[Sample], gold: &[Sample]) -> QaModel {
    pretrain_finetune_qa_epochs(synthetic, gold, 4)
}

/// Augmentation recipe for QA (full fine-tuning epochs).
pub fn pretrain_finetune_qa_epochs(synthetic: &[Sample], gold: &[Sample], epochs: usize) -> QaModel {
    let mut model = QaModel::train(synthetic);
    model.fine_tune(gold, TrainConfig { epochs, ..TrainConfig::default() });
    model
}

/// Data-augmentation recipe for convex models (Table VII): train on the
/// union of synthetic and gold data, with gold replicated so it carries at
/// least equal weight. For a max-ent model, sequential fine-tuning with
/// full epochs converges back to the gold-only optimum, so the synthetic
/// data must enter the same objective to act as the prior it is for a
/// neural model's pretraining.
pub fn augment_union(synthetic: &[Sample], gold: &[Sample]) -> Vec<Sample> {
    let mut data = synthetic.to_vec();
    let k = (synthetic.len() / gold.len().max(1)).max(1);
    for _ in 0..k {
        data.extend(gold.iter().cloned());
    }
    data
}

/// Union-trained augmented verifier.
pub fn augment_verifier(synthetic: &[Sample], gold: &[Sample], space: VerdictSpace) -> VerifierModel {
    VerifierModel::train(&augment_union(synthetic, gold), space, EvidenceView::Full)
}

/// Union-trained augmented QA model.
pub fn augment_qa(synthetic: &[Sample], gold: &[Sample]) -> QaModel {
    QaModel::train(&augment_union(synthetic, gold))
}

// ---------------------------------------------------------------------------
// Output formatting.
// ---------------------------------------------------------------------------

/// Prints a formatted results table with a title.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Formats "measured (paper X)" comparison cells.
pub fn vs_paper(measured: f64, paper: f64) -> String {
    format!("{measured:.1} (paper {paper:.1})")
}

/// Formats a plain metric.
pub fn fmt(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uctr::Label;

    fn t() -> Table {
        Table::from_strings("t", &[vec!["a", "b"], vec!["x", "1"], vec!["y", "2"]]).unwrap()
    }

    #[test]
    fn few_shot_is_deterministic_subset() {
        let train: Vec<Sample> = (0..100)
            .map(|i| Sample::qa(t(), format!("q{i}"), "1"))
            .collect();
        let a = few_shot(&train, 50);
        let b = few_shot(&train, 50);
        assert_eq!(a.len(), 50);
        assert_eq!(
            a.iter().map(|s| &s.text).collect::<Vec<_>>(),
            b.iter().map(|s| &s.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn restrict_views() {
        let mut s = Sample::qa(t(), "q", "1");
        s.context = vec!["ctx".into()];
        let table_only = restrict(&s, EvidenceView::TableOnly);
        assert!(table_only.context.is_empty());
        assert_eq!(table_only.table.n_rows(), 2);
        let text_only = restrict(&s, EvidenceView::SentenceOnly);
        assert_eq!(text_only.table.n_rows(), 0);
        assert_eq!(text_only.context.len(), 1);
    }

    #[test]
    fn qa_breakdown_has_four_rows() {
        let samples = vec![Sample::qa(t(), "what is the b of x?", "1")];
        let model = QaModel::untrained();
        let rows = qa_breakdown(&model, &samples);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3].0, "Total");
    }

    #[test]
    fn verifier_micro_f1_runs() {
        let samples = vec![Sample::verification(t(), "b of x is 1.", uctr::Verdict::Supported)];
        let model = VerifierModel::train(&samples, VerdictSpace::TwoWay, EvidenceView::Full);
        let f1 = verifier_micro_f1(&model, &samples);
        assert!((0.0..=100.0).contains(&f1));
    }

    #[test]
    fn augment_union_balances_gold() {
        let synth: Vec<Sample> = (0..100).map(|i| Sample::qa(t(), format!("s{i}"), "1")).collect();
        let gold: Vec<Sample> = (0..10).map(|i| Sample::qa(t(), format!("g{i}"), "1")).collect();
        let union = augment_union(&synth, &gold);
        // gold replicated 10x -> 100 synthetic + 100 gold copies
        assert_eq!(union.len(), 200);
        let gold_count = union.iter().filter(|s| s.text.starts_with('g')).count();
        assert_eq!(gold_count, 100);
        // When gold is already large, it enters once.
        let big_gold: Vec<Sample> = (0..200).map(|i| Sample::qa(t(), format!("g{i}"), "1")).collect();
        assert_eq!(augment_union(&synth, &big_gold).len(), 300);
    }

    #[test]
    fn qa_em_f1_skips_verdict_samples() {
        let mut s = Sample::qa(t(), "q", "1");
        s.label = Label::Verdict(uctr::Verdict::Supported);
        let (em, f1) = qa_em_f1(&QaModel::untrained(), &[s]);
        assert_eq!((em, f1), (0.0, 0.0));
    }
}
