//! Shared harness code for the experiment binaries.
//!
//! One binary per paper table/figure regenerates the corresponding artifact
//! (see DESIGN.md §12). This library holds the evaluation plumbing they
//! share: model training wrappers per setting (supervised / unsupervised /
//! few-shot / augmentation), per-evidence-type breakdowns, and the table
//! printer that renders paper-vs-measured rows.

// Stdout tables and floor verdicts are this crate's product, not stray debug
// output.
#![allow(clippy::print_stdout)]

pub mod zoo;

use models::{
    em_f1, feverous_score, label_accuracy, micro_f1, EvidenceView, QaModel, TrainConfig,
    VerdictSpace, VerifierModel,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde_json::Value;
use tabular::Table;
use uctr::{EvidenceType, PipelineReport, Sample, Verdict};

/// Fixed seed for the few-shot subset (paper: "randomly selected from the
/// original training set").
pub const FEW_SHOT_SEED: u64 = 50;

/// Picks `n` random training samples (the few-shot budget; paper uses 50).
pub fn few_shot(train: &[Sample], n: usize) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(FEW_SHOT_SEED);
    let mut idx: Vec<usize> = (0..train.len()).collect();
    idx.shuffle(&mut rng);
    idx.into_iter().take(n).map(|i| train[i].clone()).collect()
}

/// Restricts a sample's evidence (used for the Text-Span-only /
/// Table-Cell-only baselines of Table III).
pub fn restrict(sample: &Sample, view: EvidenceView) -> Sample {
    match view {
        EvidenceView::Full => sample.clone(),
        EvidenceView::TableOnly => {
            let mut s = sample.clone();
            s.context.clear();
            s
        }
        EvidenceView::SentenceOnly => {
            let mut s = sample.clone();
            s.table = Table::from_strings(&sample.table.title, &[vec![]])
                .map(tabular::SharedTable::new)
                .unwrap_or_else(|_| sample.table.clone());
            s
        }
    }
}

pub fn restrict_all(samples: &[Sample], view: EvidenceView) -> Vec<Sample> {
    samples.iter().map(|s| restrict(s, view)).collect()
}

/// EM/F1 of a QA model on an evaluation set.
pub fn qa_em_f1(model: &QaModel, samples: &[Sample]) -> (f64, f64) {
    let pairs: Vec<(String, String)> = samples
        .iter()
        .filter_map(|s| Some((model.predict(s), s.label.as_answer()?.to_string())))
        .collect();
    em_f1(&pairs)
}

/// EM/F1 broken down by evidence type plus the total (Table III layout).
pub fn qa_breakdown(model: &QaModel, samples: &[Sample]) -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for ev in [EvidenceType::TableOnly, EvidenceType::TableText, EvidenceType::TextOnly] {
        let subset: Vec<Sample> = samples.iter().filter(|s| s.evidence == ev).cloned().collect();
        let (em, f1) = qa_em_f1(model, &subset);
        rows.push((ev.to_string(), em, f1));
    }
    let (em, f1) = qa_em_f1(model, samples);
    rows.push(("Total".to_string(), em, f1));
    rows
}

/// Verdict predictions of a verifier on a set.
pub fn verifier_predictions(model: &VerifierModel, samples: &[Sample]) -> Vec<Verdict> {
    samples.iter().map(|s| model.predict(s)).collect()
}

/// (label accuracy, FEVEROUS score) of a verifier.
pub fn verifier_feverous(model: &VerifierModel, samples: &[Sample]) -> (f64, f64) {
    let preds = verifier_predictions(model, samples);
    let pairs: Vec<(Verdict, Verdict)> =
        preds.iter().zip(samples).filter_map(|(p, s)| Some((*p, s.label.as_verdict()?))).collect();
    (label_accuracy(&pairs), feverous_score(samples, &preds))
}

/// 3-way micro F1 of a verifier.
pub fn verifier_micro_f1(model: &VerifierModel, samples: &[Sample]) -> f64 {
    let pairs: Vec<(Verdict, Verdict)> =
        samples.iter().filter_map(|s| Some((model.predict(s), s.label.as_verdict()?))).collect();
    micro_f1(&pairs)
}

/// Pretrain-on-synthetic then fine-tune-on-gold (the few-shot recipe:
/// a light fine-tune that must not wash out the pretraining).
pub fn pretrain_finetune_verifier(
    synthetic: &[Sample],
    gold: &[Sample],
    space: VerdictSpace,
) -> VerifierModel {
    pretrain_finetune_verifier_epochs(synthetic, gold, space, 4)
}

/// Augmentation recipe (paper §V-D): pretrain on synthetic, then fine-tune
/// on the FULL gold train set with full training epochs.
pub fn pretrain_finetune_verifier_epochs(
    synthetic: &[Sample],
    gold: &[Sample],
    space: VerdictSpace,
    epochs: usize,
) -> VerifierModel {
    let mut model = VerifierModel::train(synthetic, space, EvidenceView::Full);
    model.fine_tune(gold, TrainConfig { epochs, ..TrainConfig::default() });
    model
}

/// Few-shot recipe for QA.
pub fn pretrain_finetune_qa(synthetic: &[Sample], gold: &[Sample]) -> QaModel {
    pretrain_finetune_qa_epochs(synthetic, gold, 4)
}

/// Augmentation recipe for QA (full fine-tuning epochs).
pub fn pretrain_finetune_qa_epochs(
    synthetic: &[Sample],
    gold: &[Sample],
    epochs: usize,
) -> QaModel {
    let mut model = QaModel::train(synthetic);
    model.fine_tune(gold, TrainConfig { epochs, ..TrainConfig::default() });
    model
}

/// Data-augmentation recipe for convex models (Table VII): train on the
/// union of synthetic and gold data, with gold replicated so it carries at
/// least equal weight. For a max-ent model, sequential fine-tuning with
/// full epochs converges back to the gold-only optimum, so the synthetic
/// data must enter the same objective to act as the prior it is for a
/// neural model's pretraining.
pub fn augment_union(synthetic: &[Sample], gold: &[Sample]) -> Vec<Sample> {
    let mut data = synthetic.to_vec();
    let k = (synthetic.len() / gold.len().max(1)).max(1);
    for _ in 0..k {
        data.extend(gold.iter().cloned());
    }
    data
}

/// Union-trained augmented verifier.
pub fn augment_verifier(
    synthetic: &[Sample],
    gold: &[Sample],
    space: VerdictSpace,
) -> VerifierModel {
    VerifierModel::train(&augment_union(synthetic, gold), space, EvidenceView::Full)
}

/// Union-trained augmented QA model.
pub fn augment_qa(synthetic: &[Sample], gold: &[Sample]) -> QaModel {
    QaModel::train(&augment_union(synthetic, gold))
}

// ---------------------------------------------------------------------------
// Pipeline telemetry plumbing (CI gate).
// ---------------------------------------------------------------------------

/// Looks up `--name VALUE` in a binary's argument list.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// A Table II-style composition row built from a run's live counters:
/// accepted samples per program kind and per data source.
pub fn composition_row(name: &str, report: &PipelineReport) -> Vec<String> {
    let kinds = report
        .kinds
        .iter()
        .filter(|k| k.accepted > 0)
        .map(|k| format!("{} {}", k.accepted, k.kind))
        .collect::<Vec<_>>()
        .join(", ");
    let sources = report
        .sources
        .iter()
        .filter(|s| s.accepted > 0)
        .map(|s| format!("{} {}", s.accepted, s.source))
        .collect::<Vec<_>>()
        .join(", ");
    vec![
        name.to_string(),
        report.inputs_total.to_string(),
        report.accepted().to_string(),
        format!("{:.1}%", report.acceptance_rate() * 100.0),
        if kinds.is_empty() { "-".into() } else { kinds },
        if sources.is_empty() { "-".into() } else { sources },
    ]
}

/// Serializes named pipeline reports into one JSON object keyed by run name
/// (the CI artifact format).
pub fn reports_to_json(reports: &[(String, PipelineReport)]) -> String {
    let entries: Vec<(String, Value)> =
        reports.iter().map(|(n, r)| (n.clone(), serde_json::to_value(r))).collect();
    serde_json::to_string_pretty(&Value::Obj(entries)).expect("report serialization is infallible")
}

/// The committed generation-quality floor (`ci/acceptance_floor.json`). CI
/// regenerates the synthesis reports and fails the build when any run drops
/// below these thresholds — a regression gate on the generation funnel, not
/// just on unit tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceFloor {
    /// Minimum accepted-samples / source-attempts ratio per run.
    pub min_acceptance_rate: f64,
    /// Minimum absolute number of accepted samples per run.
    pub min_accepted: u64,
    /// Optional recorded pipeline throughput (accepted samples per second)
    /// of the commit the floor was last calibrated on. Purely informative:
    /// CI prints the delta against it in the job summary but never fails
    /// on it (wall-clock on shared runners is too noisy for a gate).
    pub baseline_pipeline_samples_per_sec: Option<f64>,
    /// Recorded `bench_pipeline` single-thread throughput (samples/sec on
    /// the ragged table zoo) at the last calibration. Unlike the smoke-run
    /// baseline above, this one *gates*: `bench_pipeline --check-floor`
    /// fails when the measured rate regresses more than
    /// `bench_max_throughput_regression` below it (one-sided — being
    /// faster never fails; recalibrate to ratchet the floor up).
    pub bench_single_thread_samples_per_sec: Option<f64>,
    /// Recorded `bench_pipeline` saturated-thread throughput. Same
    /// one-sided gate as the single-thread baseline.
    pub bench_saturated_samples_per_sec: Option<f64>,
    /// Recorded `bench_pipeline` large-table stress-tier throughput
    /// (single-thread over `bench::zoo::stress_zoo`). Same one-sided gate:
    /// large-table regressions (per-sample table clones, context rebuild
    /// inside attempt loops) show up here long before the small-table zoo
    /// notices them.
    pub bench_stress_samples_per_sec: Option<f64>,
    /// Allowed fractional throughput regression before the bench gate
    /// fails (defaults to 0.15 when absent — best-of-N repeats absorb most
    /// runner noise, the 15% margin absorbs the rest).
    pub bench_max_throughput_regression: Option<f64>,
    /// Allowed fractional gap of the mined-bank rate below the builtin
    /// single-thread rate measured in the same `bench_pipeline` process
    /// (falls back to `bench_max_throughput_regression` when absent).
    /// Calibrated separately because the *ratio* of two back-to-back
    /// best-of-N measurements is itself host-sensitive: the same commit
    /// measures −12% on an idle box and −19% under co-running load, so the
    /// ratio gate needs more headroom than an absolute floor does.
    pub bench_mined_max_gap: Option<f64>,
    /// Recorded `loadgen` closed-loop sustained throughput against the
    /// serving daemon (samples/sec). Same one-sided gate as the batch
    /// throughput baselines, applied by `loadgen --check-floor`.
    pub bench_serving_samples_per_sec: Option<f64>,
    /// Recorded `loadgen` closed-loop p99 end-to-end latency in
    /// milliseconds. One-sided in the other direction: the measured p99
    /// may exceed this by at most `bench_serving_max_p99_regression`;
    /// being faster never fails.
    pub bench_serving_p99_ms: Option<f64>,
    /// Allowed fractional p99 increase before the serving gate fails
    /// (defaults to 1.0 — i.e. 2× — when absent; tail latency on shared
    /// runners is far noisier than throughput).
    pub bench_serving_max_p99_regression: Option<f64>,
    /// Ceiling on `bench_pipeline` steady-state allocations per accepted
    /// sample (counting-allocator measurement over the ragged zoo,
    /// warmup excluded). Absolute, not relative: allocation counts are
    /// deterministic for a given workload, so any increase is a real
    /// regression, and `bench_pipeline --check-floor` fails hard on it.
    pub bench_max_allocs_per_sample: Option<f64>,
}

impl AcceptanceFloor {
    pub fn parse(text: &str) -> Result<AcceptanceFloor, String> {
        let v = serde_json::parse_value(text).map_err(|e| e.to_string())?;
        let rate = v
            .get("min_acceptance_rate")
            .and_then(Value::as_f64)
            .ok_or("missing `min_acceptance_rate`")?;
        let accepted =
            v.get("min_accepted").and_then(Value::as_i64).ok_or("missing `min_accepted`")?;
        let baseline = v.get("baseline_pipeline_samples_per_sec").and_then(Value::as_f64);
        Ok(AcceptanceFloor {
            min_acceptance_rate: rate,
            min_accepted: accepted as u64,
            baseline_pipeline_samples_per_sec: baseline,
            bench_single_thread_samples_per_sec: v
                .get("bench_single_thread_samples_per_sec")
                .and_then(Value::as_f64),
            bench_saturated_samples_per_sec: v
                .get("bench_saturated_samples_per_sec")
                .and_then(Value::as_f64),
            bench_stress_samples_per_sec: v
                .get("bench_stress_samples_per_sec")
                .and_then(Value::as_f64),
            bench_max_throughput_regression: v
                .get("bench_max_throughput_regression")
                .and_then(Value::as_f64),
            bench_mined_max_gap: v.get("bench_mined_max_gap").and_then(Value::as_f64),
            bench_serving_samples_per_sec: v
                .get("bench_serving_samples_per_sec")
                .and_then(Value::as_f64),
            bench_serving_p99_ms: v.get("bench_serving_p99_ms").and_then(Value::as_f64),
            bench_serving_max_p99_regression: v
                .get("bench_serving_max_p99_regression")
                .and_then(Value::as_f64),
            bench_max_allocs_per_sample: v
                .get("bench_max_allocs_per_sample")
                .and_then(Value::as_f64),
        })
    }

    pub fn load(path: &str) -> Result<AcceptanceFloor, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        AcceptanceFloor::parse(&text)
    }

    /// Checks one run against the floor; `Err` carries the CI failure text.
    pub fn check(&self, name: &str, report: &PipelineReport) -> Result<(), String> {
        let rate = report.acceptance_rate();
        if rate < self.min_acceptance_rate {
            return Err(format!(
                "{name}: acceptance rate {:.3} below floor {:.3}",
                rate, self.min_acceptance_rate
            ));
        }
        if report.accepted() < self.min_accepted {
            return Err(format!(
                "{name}: {} accepted samples below floor {}",
                report.accepted(),
                self.min_accepted
            ));
        }
        Ok(())
    }

    /// One-sided throughput ratchet for `bench_pipeline`: each measured
    /// rate may fall at most `bench_max_throughput_regression` (default
    /// 15%) below its recorded baseline. Running faster than the baseline
    /// always passes; missing baselines skip the check (so the gate can be
    /// introduced before the first calibration lands).
    pub fn check_bench_throughput(
        &self,
        single: f64,
        saturated: f64,
        stress: Option<f64>,
    ) -> Result<(), String> {
        let max_regression = self.bench_max_throughput_regression.unwrap_or(0.15);
        for (label, measured, baseline) in [
            ("single-thread", Some(single), self.bench_single_thread_samples_per_sec),
            ("saturated", Some(saturated), self.bench_saturated_samples_per_sec),
            ("stress", stress, self.bench_stress_samples_per_sec),
        ] {
            let Some(measured) = measured else { continue };
            let Some(baseline) = baseline.filter(|b| *b > 0.0) else { continue };
            let floor = baseline * (1.0 - max_regression);
            if measured < floor {
                return Err(format!(
                    "{label} throughput {measured:.0}/sec regressed more than \
                     {:.0}% below baseline {baseline:.0}/sec (floor {floor:.0}/sec)",
                    max_regression * 100.0
                ));
            }
        }
        Ok(())
    }

    /// One-sided serving gate for `loadgen --check-floor`: sustained
    /// throughput may regress at most `bench_max_throughput_regression`
    /// below its baseline, and p99 latency may rise at most
    /// `bench_serving_max_p99_regression` (default 1.0, i.e. 2×) above
    /// its baseline. Faster/lower always passes; missing baselines skip.
    pub fn check_serving(&self, samples_per_sec: f64, p99_ms: f64) -> Result<(), String> {
        let max_regression = self.bench_max_throughput_regression.unwrap_or(0.15);
        if let Some(baseline) = self.bench_serving_samples_per_sec.filter(|b| *b > 0.0) {
            let floor = baseline * (1.0 - max_regression);
            if samples_per_sec < floor {
                return Err(format!(
                    "serving throughput {samples_per_sec:.0}/sec regressed more than \
                     {:.0}% below baseline {baseline:.0}/sec (floor {floor:.0}/sec)",
                    max_regression * 100.0
                ));
            }
        }
        let p99_headroom = self.bench_serving_max_p99_regression.unwrap_or(1.0);
        if let Some(baseline) = self.bench_serving_p99_ms.filter(|b| *b > 0.0) {
            let ceiling = baseline * (1.0 + p99_headroom);
            if p99_ms > ceiling {
                return Err(format!(
                    "serving p99 latency {p99_ms:.2}ms rose more than {:.0}% above \
                     baseline {baseline:.2}ms (ceiling {ceiling:.2}ms)",
                    p99_headroom * 100.0
                ));
            }
        }
        Ok(())
    }

    /// Hard ceiling on steady-state allocations per accepted sample.
    /// Allocation counts are workload-deterministic (no wall-clock in the
    /// measurement), so unlike the throughput gates this one has no noise
    /// margin.
    pub fn check_bench_allocs(&self, allocs_per_sample: f64) -> Result<(), String> {
        if let Some(ceiling) = self.bench_max_allocs_per_sample.filter(|c| *c > 0.0) {
            if allocs_per_sample > ceiling {
                return Err(format!(
                    "steady-state allocations {allocs_per_sample:.1}/sample exceed the \
                     recorded ceiling {ceiling:.1}/sample"
                ));
            }
        }
        Ok(())
    }
}

/// Formats one `bench_pipeline` throughput line (printed to stdout and
/// grepped into the CI job summary): measured samples/sec plus the delta
/// against the recorded baseline when one is present.
pub fn bench_throughput_line(label: &str, rate: f64, baseline: Option<f64>) -> String {
    let mut line = format!("bench throughput [{label}]: {rate:.0} samples/sec");
    if let Some(base) = baseline.filter(|b| *b > 0.0) {
        let delta = (rate - base) / base * 100.0;
        line.push_str(&format!(" ({delta:+.1}% vs recorded baseline {base:.0}/sec)"));
    }
    line
}

/// Formats the pipeline-throughput line the CI smoke run prints and appends
/// to the job summary: measured accepted-samples/sec, plus the delta
/// against the floor file's recorded baseline when one is present.
pub fn throughput_line(
    accepted: u64,
    elapsed: std::time::Duration,
    floor: Option<&AcceptanceFloor>,
) -> String {
    let secs = elapsed.as_secs_f64().max(1e-9);
    let rate = accepted as f64 / secs;
    let mut line = format!(
        "pipeline throughput: {accepted} accepted samples in {secs:.2}s = {rate:.0} samples/sec"
    );
    if let Some(base) = floor.and_then(|f| f.baseline_pipeline_samples_per_sec) {
        if base > 0.0 {
            let delta = (rate - base) / base * 100.0;
            line.push_str(&format!(" ({delta:+.1}% vs recorded baseline {base:.0}/sec)"));
        }
    }
    line
}

/// Formats the prefilter summary line the CI smoke run prints and appends
/// to the job summary: how many sampled (template, table) attempts the
/// schema analyzers proved infeasible before instantiation, aggregated
/// over the named runs. Informative only — the hit rate depends on the
/// corpus mix, so the gate never fails on it.
pub fn prefilter_line(reports: &[(String, PipelineReport)]) -> String {
    let prefiltered: u64 = reports.iter().map(|(_, r)| r.prefiltered()).sum();
    let attempted: u64 =
        reports.iter().flat_map(|(_, r)| r.kinds.iter().map(|k| k.attempted)).sum();
    let rate = if attempted == 0 { 0.0 } else { prefiltered as f64 / attempted as f64 * 100.0 };
    format!(
        "prefilter hit rate: {rate:.1}% ({prefiltered} of {attempted} program attempts skipped statically)"
    )
}

/// Runs every report against the floor, printing per-run verdicts; returns
/// `false` (CI failure) if any run is under the floor.
pub fn check_floor(floor: &AcceptanceFloor, reports: &[(String, PipelineReport)]) -> bool {
    let mut ok = true;
    for (name, report) in reports {
        match floor.check(name, report) {
            Ok(()) => println!(
                "floor OK   {name}: rate {:.1}% >= {:.1}%, accepted {} >= {}",
                report.acceptance_rate() * 100.0,
                floor.min_acceptance_rate * 100.0,
                report.accepted(),
                floor.min_accepted
            ),
            Err(msg) => {
                println!("floor FAIL {msg}");
                ok = false;
            }
        }
    }
    ok
}

// ---------------------------------------------------------------------------
// Output formatting.
// ---------------------------------------------------------------------------

/// Prints a formatted results table with a title.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        line(row);
    }
}

/// Formats "measured (paper X)" comparison cells.
pub fn vs_paper(measured: f64, paper: f64) -> String {
    format!("{measured:.1} (paper {paper:.1})")
}

/// Formats a plain metric.
pub fn fmt(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uctr::Label;

    fn t() -> Table {
        Table::from_strings("t", &[vec!["a", "b"], vec!["x", "1"], vec!["y", "2"]]).unwrap()
    }

    #[test]
    fn few_shot_is_deterministic_subset() {
        let train: Vec<Sample> = (0..100).map(|i| Sample::qa(t(), format!("q{i}"), "1")).collect();
        let a = few_shot(&train, 50);
        let b = few_shot(&train, 50);
        assert_eq!(a.len(), 50);
        assert_eq!(
            a.iter().map(|s| &s.text).collect::<Vec<_>>(),
            b.iter().map(|s| &s.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn restrict_views() {
        let mut s = Sample::qa(t(), "q", "1");
        s.context = vec!["ctx".into()];
        let table_only = restrict(&s, EvidenceView::TableOnly);
        assert!(table_only.context.is_empty());
        assert_eq!(table_only.table.n_rows(), 2);
        let text_only = restrict(&s, EvidenceView::SentenceOnly);
        assert_eq!(text_only.table.n_rows(), 0);
        assert_eq!(text_only.context.len(), 1);
    }

    #[test]
    fn qa_breakdown_has_four_rows() {
        let samples = vec![Sample::qa(t(), "what is the b of x?", "1")];
        let model = QaModel::untrained();
        let rows = qa_breakdown(&model, &samples);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3].0, "Total");
    }

    #[test]
    fn verifier_micro_f1_runs() {
        let samples = vec![Sample::verification(t(), "b of x is 1.", uctr::Verdict::Supported)];
        let model = VerifierModel::train(&samples, VerdictSpace::TwoWay, EvidenceView::Full);
        let f1 = verifier_micro_f1(&model, &samples);
        assert!((0.0..=100.0).contains(&f1));
    }

    #[test]
    fn augment_union_balances_gold() {
        let synth: Vec<Sample> = (0..100).map(|i| Sample::qa(t(), format!("s{i}"), "1")).collect();
        let gold: Vec<Sample> = (0..10).map(|i| Sample::qa(t(), format!("g{i}"), "1")).collect();
        let union = augment_union(&synth, &gold);
        // gold replicated 10x -> 100 synthetic + 100 gold copies
        assert_eq!(union.len(), 200);
        let gold_count = union.iter().filter(|s| s.text.starts_with('g')).count();
        assert_eq!(gold_count, 100);
        // When gold is already large, it enters once.
        let big_gold: Vec<Sample> =
            (0..200).map(|i| Sample::qa(t(), format!("g{i}"), "1")).collect();
        assert_eq!(augment_union(&synth, &big_gold).len(), 300);
    }

    #[test]
    fn acceptance_floor_parses_with_and_without_baseline() {
        let bare = AcceptanceFloor::parse(r#"{"min_acceptance_rate": 0.5, "min_accepted": 10}"#)
            .expect("bare floor parses");
        assert_eq!(bare.baseline_pipeline_samples_per_sec, None);
        let with = AcceptanceFloor::parse(
            r#"{"min_acceptance_rate": 0.5, "min_accepted": 10,
                "baseline_pipeline_samples_per_sec": 1250.0}"#,
        )
        .expect("floor with baseline parses");
        assert_eq!(with.baseline_pipeline_samples_per_sec, Some(1250.0));
        assert!(AcceptanceFloor::parse(r#"{"min_accepted": 10}"#).is_err());
    }

    fn floor_with_baseline(baseline: Option<f64>) -> AcceptanceFloor {
        AcceptanceFloor {
            min_acceptance_rate: 0.5,
            min_accepted: 10,
            baseline_pipeline_samples_per_sec: baseline,
            bench_single_thread_samples_per_sec: None,
            bench_saturated_samples_per_sec: None,
            bench_stress_samples_per_sec: None,
            bench_max_throughput_regression: None,
            bench_mined_max_gap: None,
            bench_serving_samples_per_sec: None,
            bench_serving_p99_ms: None,
            bench_serving_max_p99_regression: None,
            bench_max_allocs_per_sample: None,
        }
    }

    #[test]
    fn throughput_line_reports_delta_against_baseline() {
        let floor = floor_with_baseline(Some(100.0));
        let line = throughput_line(220, std::time::Duration::from_secs(2), Some(&floor));
        assert!(line.contains("110 samples/sec"), "{line}");
        assert!(line.contains("+10.0%"), "{line}");
        let bare = throughput_line(220, std::time::Duration::from_secs(2), None);
        assert!(!bare.contains('%'), "{bare}");
    }

    #[test]
    fn bench_throughput_ratchet_is_one_sided() {
        let mut floor = floor_with_baseline(None);
        floor.bench_single_thread_samples_per_sec = Some(1000.0);
        floor.bench_saturated_samples_per_sec = Some(4000.0);
        // Within the 15% default margin (and faster) passes.
        assert!(floor.check_bench_throughput(900.0, 4000.0, None).is_ok());
        assert!(floor.check_bench_throughput(5000.0, 9000.0, None).is_ok());
        // More than 15% below either baseline fails.
        let err = floor.check_bench_throughput(1000.0, 3000.0, None).unwrap_err();
        assert!(err.contains("saturated"), "{err}");
        assert!(floor.check_bench_throughput(500.0, 4000.0, None).is_err());
        // The stress tier gates only when both a baseline and a measurement
        // exist; a committed baseline with no measurement is skipped.
        floor.bench_stress_samples_per_sec = Some(200.0);
        assert!(floor.check_bench_throughput(1000.0, 4000.0, None).is_ok());
        assert!(floor.check_bench_throughput(1000.0, 4000.0, Some(190.0)).is_ok());
        let err = floor.check_bench_throughput(1000.0, 4000.0, Some(100.0)).unwrap_err();
        assert!(err.contains("stress"), "{err}");
        floor.bench_stress_samples_per_sec = None;
        // A tighter committed margin tightens the gate.
        floor.bench_max_throughput_regression = Some(0.05);
        assert!(floor.check_bench_throughput(900.0, 4000.0, None).is_err());
        // No baselines -> nothing to gate.
        assert!(floor_with_baseline(None).check_bench_throughput(1.0, 1.0, None).is_ok());
    }

    #[test]
    fn bench_floor_fields_parse() {
        let f = AcceptanceFloor::parse(
            r#"{"min_acceptance_rate": 0.5, "min_accepted": 10,
                "bench_single_thread_samples_per_sec": 1200.0,
                "bench_saturated_samples_per_sec": 4400.0,
                "bench_stress_samples_per_sec": 250.0,
                "bench_max_throughput_regression": 0.15}"#,
        )
        .expect("floor with bench baselines parses");
        assert_eq!(f.bench_single_thread_samples_per_sec, Some(1200.0));
        assert_eq!(f.bench_saturated_samples_per_sec, Some(4400.0));
        assert_eq!(f.bench_stress_samples_per_sec, Some(250.0));
        assert_eq!(f.bench_max_throughput_regression, Some(0.15));
    }

    #[test]
    fn serving_gate_is_one_sided_in_both_metrics() {
        let mut floor = floor_with_baseline(None);
        // No baselines recorded: everything passes.
        assert!(floor.check_serving(1.0, 1e9).is_ok());
        floor.bench_serving_samples_per_sec = Some(1000.0);
        floor.bench_serving_p99_ms = Some(10.0);
        // Faster and lower-latency than baseline: passes.
        assert!(floor.check_serving(2000.0, 1.0).is_ok());
        // Within the default margins (15% throughput, 2× p99): passes.
        assert!(floor.check_serving(900.0, 19.0).is_ok());
        // Throughput collapse fails.
        let err = floor.check_serving(500.0, 1.0).unwrap_err();
        assert!(err.contains("serving throughput"), "{err}");
        // Tail blowup fails.
        let err = floor.check_serving(2000.0, 25.0).unwrap_err();
        assert!(err.contains("p99"), "{err}");
        // Tightened headroom bites sooner.
        floor.bench_serving_max_p99_regression = Some(0.1);
        assert!(floor.check_serving(2000.0, 12.0).is_err());
    }

    #[test]
    fn alloc_ceiling_has_no_noise_margin() {
        let mut floor = floor_with_baseline(None);
        assert!(floor.check_bench_allocs(1e9).is_ok(), "no ceiling recorded: passes");
        floor.bench_max_allocs_per_sample = Some(95.0);
        assert!(floor.check_bench_allocs(95.0).is_ok());
        assert!(floor.check_bench_allocs(40.0).is_ok());
        let err = floor.check_bench_allocs(95.1).unwrap_err();
        assert!(err.contains("ceiling"), "{err}");
    }

    #[test]
    fn serving_floor_fields_parse() {
        let f = AcceptanceFloor::parse(
            r#"{"min_acceptance_rate": 0.5, "min_accepted": 10,
                "bench_serving_samples_per_sec": 5000.0,
                "bench_serving_p99_ms": 12.5,
                "bench_serving_max_p99_regression": 0.5,
                "bench_mined_max_gap": 0.25,
                "bench_max_allocs_per_sample": 95.0}"#,
        )
        .unwrap();
        assert_eq!(f.bench_serving_samples_per_sec, Some(5000.0));
        assert_eq!(f.bench_serving_p99_ms, Some(12.5));
        assert_eq!(f.bench_serving_max_p99_regression, Some(0.5));
        assert_eq!(f.bench_mined_max_gap, Some(0.25));
        assert_eq!(f.bench_max_allocs_per_sample, Some(95.0));
    }

    #[test]
    fn bench_throughput_line_formats_delta() {
        let line = bench_throughput_line("saturated", 130.0, Some(100.0));
        assert!(line.starts_with("bench throughput [saturated]: 130 samples/sec"), "{line}");
        assert!(line.contains("+30.0%"), "{line}");
        assert!(!bench_throughput_line("single-thread", 130.0, None).contains('%'));
    }

    #[test]
    fn prefilter_line_aggregates_over_runs() {
        let report = |pre: u64, att: u64| PipelineReport {
            threads: 1,
            inputs_total: 1,
            inputs_degenerate: 0,
            unknown_injected: 0,
            kinds: vec![uctr::KindReport {
                kind: "sql".into(),
                attempted: att,
                prefiltered: pre,
                instantiated: att - pre,
                executed: att - pre,
                accepted: att - pre,
                discards: Vec::new(),
            }],
            sources: Vec::new(),
            workers: Vec::new(),
            timings: Vec::new(),
        };
        let runs = vec![("a".to_string(), report(1, 4)), ("b".to_string(), report(2, 8))];
        let line = prefilter_line(&runs);
        assert!(line.starts_with("prefilter hit rate: 25.0%"), "{line}");
        assert!(line.contains("3 of 12"), "{line}");
        let empty = prefilter_line(&[]);
        assert!(empty.starts_with("prefilter hit rate: 0.0%"), "{empty}");
    }

    #[test]
    fn qa_em_f1_skips_verdict_samples() {
        let mut s = Sample::qa(t(), "q", "1");
        s.label = Label::Verdict(uctr::Verdict::Supported);
        let (em, f1) = qa_em_f1(&QaModel::untrained(), &[s]);
        assert_eq!((em, f1), (0.0, 0.0));
    }
}
