//! Reproduces **Figure 5**: synthetic data vs. labeled data on TAT-QA —
//! F1 as a function of the number of labeled samples, with and without
//! pretraining on UCTR's synthetic data.
//!
//! Paper findings: (i) the synthetic-pretrained curve dominates everywhere;
//! (ii) pure synthetic training (~42 F1) is worth about 1,000 labeled
//! samples; (iii) synthetic + 1,000 labels reaches the level of ~13,217
//! labels alone.

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{few_shot, print_table, qa_em_f1};
use corpora::{tatqa_like, CorpusConfig};
use models::{QaModel, TrainConfig};
use uctr::{UctrConfig, UctrPipeline};

fn main() {
    let bench = tatqa_like(CorpusConfig {
        n_tables: 140,
        train_per_table: 10,
        eval_per_table: 3,
        seed: 2023,
    });
    let dev = &bench.gold.dev;
    let synth = UctrPipeline::new(UctrConfig::qa()).generate(&bench.unlabeled);
    println!(
        "TAT-QA-like: {} gold train, {} dev; {} synthetic samples",
        bench.gold.train.len(),
        dev.len(),
        synth.len()
    );

    let budgets = [0usize, 50, 100, 200, 500, 1000, bench.gold.train.len()];
    let mut rows = Vec::new();
    for &n in &budgets {
        let labeled = few_shot(&bench.gold.train, n);
        // Blue curve: labeled data only.
        let (_, f1_labeled) =
            if n == 0 { (0.0, 0.0) } else { qa_em_f1(&QaModel::train(&labeled), dev) };
        // Orange curve: synthetic pretraining + labeled fine-tuning.
        let mut pretrained = QaModel::train(&synth);
        if n > 0 {
            pretrained.fine_tune(&labeled, TrainConfig { epochs: 4, ..TrainConfig::default() });
        }
        let (_, f1_pre) = qa_em_f1(&pretrained, dev);
        rows.push(vec![
            n.to_string(),
            format!("{f1_labeled:.1}"),
            format!("{f1_pre:.1}"),
            format!("{:+.1}", f1_pre - f1_labeled),
        ]);
    }
    print_table(
        "Figure 5 — F1 vs number of labeled samples (TAT-QA dev)",
        &["#labeled", "labeled only", "synthetic + labeled", "gain"],
        &rows,
    );
    println!("\nExpected shape: the synthetic-pretrained curve dominates at every budget,");
    println!("with the largest gains at small budgets; the curves converge as labels grow.");
}
