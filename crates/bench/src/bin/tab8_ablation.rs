//! Reproduces **Table VIII**: ablation grid on the TAT-QA dev set — data
//! sources (Table / Text / Table↔Text) × program types (SQL / Arithmetic).
//!
//! Paper reference values (Total EM/F1): A1 (table+SQL) 8.2/10.9,
//! A2 (text+SQL) 10.0/16.5, A3 (table+text+SQL) 15.7/23.6,
//! A4 (table+text+arith) 32.5/38.8, A5 (all sources - T2T, SQL+arith)
//! 32.8/40.5, A6 (everything) 34.9/42.4.

//! Flags: `--report-json PATH` writes each setting's [`uctr::PipelineReport`]
//! (per-kind/per-source generation counters) as one JSON object.

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{composition_row, flag_value, print_table, qa_breakdown, reports_to_json};
use corpora::{tatqa_like, CorpusConfig};
use models::QaModel;
use nlgen::NoiseConfig;
use uctr::{PipelineReport, Sample, TaskKind, UctrConfig, UctrPipeline};

struct Setting {
    name: &'static str,
    paper: &'static str,
    table: bool,
    text: bool,
    t2t: bool,
    sql: bool,
    arith: bool,
}

fn config(s: &Setting) -> UctrConfig {
    UctrConfig {
        task: TaskKind::QuestionAnswering,
        use_sql: s.sql,
        use_logic: false,
        use_arith: s.arith,
        table_only: s.table,
        text_only: s.text,
        table_split: s.t2t,
        table_expand: s.t2t,
        samples_per_table: 8,
        noise: NoiseConfig::default(),
        unknown_rate: 0.0,
        seed: 13,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = tatqa_like(CorpusConfig::default());
    let dev = &bench.gold.dev;
    let settings = [
        Setting {
            name: "A1: Table, SQL",
            paper: " 8.2/10.9",
            table: true,
            text: false,
            t2t: false,
            sql: true,
            arith: false,
        },
        Setting {
            name: "A2: Text, SQL",
            paper: "10.0/16.5",
            table: false,
            text: true,
            t2t: false,
            sql: true,
            arith: false,
        },
        Setting {
            name: "A3: Table+Text, SQL",
            paper: "15.7/23.6",
            table: true,
            text: true,
            t2t: false,
            sql: true,
            arith: false,
        },
        Setting {
            name: "A4: Table+Text, Arith",
            paper: "32.5/38.8",
            table: true,
            text: true,
            t2t: false,
            sql: false,
            arith: true,
        },
        Setting {
            name: "A5: Table+Text, SQL+Arith",
            paper: "32.8/40.5",
            table: true,
            text: true,
            t2t: false,
            sql: true,
            arith: true,
        },
        Setting {
            name: "A6: +Table<->Text (full)",
            paper: "34.9/42.4",
            table: true,
            text: true,
            t2t: true,
            sql: true,
            arith: true,
        },
    ];

    let mut rows = Vec::new();
    let mut reports: Vec<(String, PipelineReport)> = Vec::new();
    for s in &settings {
        let (data, report): (Vec<Sample>, PipelineReport) =
            UctrPipeline::new(config(s)).generate_with_report(&bench.unlabeled);
        let model = QaModel::train(&data);
        let b = qa_breakdown(&model, dev);
        let mut cells = vec![format!("{} (paper {})", s.name, s.paper)];
        for (_, em, f1) in &b {
            cells.push(format!("{em:.1} / {f1:.1}"));
        }
        cells.push(data.len().to_string());
        rows.push(cells);
        reports.push((s.name.to_string(), report));
    }
    print_table(
        "Table VIII — ablations on TAT-QA dev (EM / F1)",
        &["Setting", "Table", "Table-Text", "Text", "Total", "#synth"],
        &rows,
    );
    println!("\nExpected shape: each added data source helps; arithmetic programs matter");
    println!("more than SQL on TAT-QA; the full configuration (A6) is best.");

    let telemetry_rows: Vec<Vec<String>> =
        reports.iter().map(|(name, r)| composition_row(name, r)).collect();
    print_table(
        "Per-setting synthesis telemetry (live PipelineReport counters)",
        &["Setting", "Tables", "Accepted", "Rate", "By program kind", "By data source"],
        &telemetry_rows,
    );

    if let Some(path) = flag_value(&args, "--report-json") {
        if let Err(e) = std::fs::write(&path, reports_to_json(&reports)) {
            eprintln!("cannot write report JSON to {path}: {e}");
            std::process::exit(2);
        }
        println!("\nwrote per-setting pipeline reports to {path}");
    }
}
