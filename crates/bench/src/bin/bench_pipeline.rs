//! Pipeline throughput trajectory runner.
//!
//! Generates synthetic samples over the ragged table zoo ([`bench::zoo`])
//! with the QA and the verification pipelines, measures accepted
//! samples/sec at one thread and at the saturated thread count, and emits
//! `BENCH_pipeline.json` — the committed-baseline format behind the CI
//! throughput ratchet.
//!
//! Flags:
//!   --json PATH          write the measurements as JSON (default
//!                        BENCH_pipeline.json)
//!   --check-floor PATH   one-sided throughput ratchet: fail when a rate
//!                        regresses > `bench_max_throughput_regression`
//!                        below the recorded baselines in the floor file
//!   --repeats N          best-of-N timing repeats (default 5)
//!   --scale N            zoo scale multiplier (default 4 = 72 inputs)
//!   --stress-scale N     stress-tier zoo scale (default 1 = two 10k+-row
//!                        wide tables; stress repeats are capped at 2)
//!   --threads N          override the saturated thread count

// Reporting binary: stdout lines are the product, and unwrap aborts the run
// on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{bench_throughput_line, flag_value, zoo, AcceptanceFloor};
use serde_json::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use uctr::{TableWithContext, UctrConfig, UctrPipeline};

/// Heap-allocation counter behind the `allocs/sample` summary line: the same
/// ratchet dimension `tests/alloc_budget.rs` gates, surfaced in the bench job
/// so a throughput point carries its allocation cost alongside it. Relaxed
/// counting costs one uncontended atomic per allocation — noise next to the
/// allocation itself.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter has no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One timed configuration: accepted samples/sec at a fixed thread count,
/// best of `repeats` runs (the max rate — wall-clock noise only ever slows
/// a run down, so the fastest repeat is the least-noisy estimate).
struct Measurement {
    threads: usize,
    accepted: u64,
    best_secs: f64,
    samples_per_sec: f64,
}

fn measure(
    pipelines: &[UctrPipeline],
    inputs: &[TableWithContext],
    threads: usize,
    repeats: usize,
) -> Measurement {
    let mut accepted = 0u64;
    let mut best_secs = f64::INFINITY;
    for rep in 0..repeats.max(1) {
        let started = Instant::now();
        let mut total = 0u64;
        for pipeline in pipelines {
            let (samples, report) = pipeline.generate_parallel_with_report(inputs, threads);
            total += samples.len() as u64;
            assert_eq!(samples.len() as u64, report.accepted(), "accepted counter mismatch");
        }
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        if rep == 0 {
            accepted = total;
        } else {
            assert_eq!(total, accepted, "repeat produced a different sample count");
        }
        best_secs = best_secs.min(secs);
    }
    Measurement { threads, accepted, best_secs, samples_per_sec: accepted as f64 / best_secs }
}

fn measurement_json(m: &Measurement) -> Value {
    Value::Obj(vec![
        ("threads".into(), Value::Int(m.threads as i64)),
        ("accepted_samples".into(), Value::Int(m.accepted as i64)),
        ("best_secs".into(), Value::Float(m.best_secs)),
        ("samples_per_sec".into(), Value::Float(m.samples_per_sec)),
    ])
}

/// Physical cores the kernel reports online, regardless of any cgroup CPU
/// quota. `available_parallelism` honours the quota (correct for sizing the
/// worker pool), but under a container limit the two diverge — recording
/// both makes a trajectory point from a limited runner interpretable.
/// Falls back to `visible` when the sysfs mask is absent or malformed.
fn cpus_online(visible: usize) -> usize {
    let Ok(mask) = std::fs::read_to_string("/sys/devices/system/cpu/online") else {
        return visible;
    };
    let mut count = 0usize;
    for range in mask.trim().split(',') {
        let n = match range.split_once('-') {
            Some((lo, hi)) => match (lo.parse::<usize>(), hi.parse::<usize>()) {
                (Ok(lo), Ok(hi)) if hi >= lo => hi - lo + 1,
                _ => return visible,
            },
            None => match range.parse::<usize>() {
                Ok(_) => 1,
                Err(_) => return visible,
            },
        };
        count += n;
    }
    if count == 0 {
        visible
    } else {
        count
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse_usize = |name: &str, default: usize| -> usize {
        flag_value(&args, name).map(|v| v.parse().expect("numeric flag")).unwrap_or(default)
    };
    let repeats = parse_usize("--repeats", 5);
    let scale = parse_usize("--scale", 4);
    let stress_scale = parse_usize("--stress-scale", 1);
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // "Saturated" = every visible core; on a single-core host still use two
    // workers so the parallel scheduler (claiming, merging, reordering) is
    // the code under measurement, not the sequential fallback.
    let saturated = parse_usize("--threads", cpus.max(2));

    let inputs = zoo::ragged_zoo(scale);
    // QA (sql+arith) and verification (logic) passes over the same zoo, so
    // the measurement covers all three executors and all four sources.
    let pipelines =
        [UctrPipeline::new(UctrConfig::qa()), UctrPipeline::new(UctrConfig::verification())];
    // The same passes over the mined bank (builtins + miner output): ~20×
    // more templates through the same schema-indexed lookup, so this is the
    // scale story for the inverted index.
    let mut miner = uctr::mining::Miner::with_bank(uctr::TemplateBank::builtin());
    miner.mine_synthetic_corpus(uctr::mining::SYNTHETIC_SEED);
    let mined_pruned = miner.stats().equivalent_total();
    let mined_bank = miner.into_bank();
    let mined_templates = mined_bank.len();
    let mined_pipelines = [
        UctrPipeline::new(UctrConfig::qa()).with_bank(mined_bank.clone()),
        UctrPipeline::new(UctrConfig::verification()).with_bank(mined_bank),
    ];

    // Untimed warmup pass (page in tables, templates, allocator arenas).
    let _ = measure(&pipelines, &inputs, 1, 1);

    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let single = measure(&pipelines, &inputs, 1, repeats);
    let alloc_delta = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    // Allocations per accepted sample, averaged over every single-thread
    // repeat (each repeat accepts `single.accepted`). Warmup is excluded, so
    // one-time lazy setup does not pollute the per-sample figure.
    let samples_timed = (single.accepted * repeats.max(1) as u64).max(1);
    let allocs_per_sample = alloc_delta as f64 / samples_timed as f64;

    let sat = measure(&pipelines, &inputs, saturated, repeats);
    let mined = measure(&mined_pipelines, &inputs, 1, repeats);

    // Large-table stress tier: a handful of 10k+-row wide tables where
    // per-sample table clones and whole-column scans dominate. Repeats are
    // capped at 2 — each pass is orders of magnitude slower per input than
    // the ragged zoo, and the floor is one-sided with a wide margin anyway.
    let stress_inputs = zoo::stress_zoo(stress_scale);
    let stress = measure(&pipelines, &stress_inputs, 1, repeats.clamp(1, 2));

    let online = cpus_online(cpus);
    println!(
        "bench zoo: {} inputs (scale {scale}), {} accepted samples/pass, \
         {cpus} cpu(s) visible, {online} online",
        inputs.len(),
        single.accepted,
    );
    println!("bench allocs/sample [single-thread]: {allocs_per_sample:.1}");

    let floor = flag_value(&args, "--check-floor").map(|path| match AcceptanceFloor::load(&path) {
        Ok(f) => (path, f),
        Err(e) => {
            eprintln!("cannot load acceptance floor: {e}");
            std::process::exit(2);
        }
    });
    let f = floor.as_ref().map(|(_, f)| f);
    println!(
        "{}",
        bench_throughput_line(
            "single-thread",
            single.samples_per_sec,
            f.and_then(|f| f.bench_single_thread_samples_per_sec),
        )
    );
    println!(
        "{}",
        bench_throughput_line(
            "saturated",
            sat.samples_per_sec,
            f.and_then(|f| f.bench_saturated_samples_per_sec),
        )
    );
    println!(
        "{} ({} inputs, {} accepted)",
        bench_throughput_line(
            "stress",
            stress.samples_per_sec,
            f.and_then(|f| f.bench_stress_samples_per_sec),
        ),
        stress_inputs.len(),
        stress.accepted,
    );
    // The mined bank has no committed absolute baseline of its own; it is
    // gated relative to the builtin single-thread rate measured in the same
    // process, which cancels out runner speed.
    println!(
        "{}",
        bench_throughput_line(
            &format!("mined-bank ({mined_templates} templates, {mined_pruned} equivalents pruned)"),
            mined.samples_per_sec,
            Some(single.samples_per_sec),
        )
    );

    let mined_json = vec![
        ("templates".into(), Value::Int(mined_templates as i64)),
        ("pruned_equivalents".into(), Value::Int(mined_pruned as i64)),
        ("threads".into(), Value::Int(mined.threads as i64)),
        ("accepted_samples".into(), Value::Int(mined.accepted as i64)),
        ("best_secs".into(), Value::Float(mined.best_secs)),
        ("samples_per_sec".into(), Value::Float(mined.samples_per_sec)),
    ];
    let json = Value::Obj(vec![
        ("zoo_inputs".into(), Value::Int(inputs.len() as i64)),
        ("zoo_scale".into(), Value::Int(scale as i64)),
        ("repeats".into(), Value::Int(repeats as i64)),
        ("cpus_visible".into(), Value::Int(cpus as i64)),
        ("cpus_online".into(), Value::Int(online as i64)),
        ("allocs_per_sample".into(), Value::Float(allocs_per_sample)),
        ("single_thread".into(), measurement_json(&single)),
        ("saturated".into(), measurement_json(&sat)),
        ("stress".into(), {
            let Value::Obj(mut fields) = measurement_json(&stress) else { unreachable!() };
            fields.insert(0, ("zoo_scale".into(), Value::Int(stress_scale as i64)));
            fields.insert(1, ("zoo_inputs".into(), Value::Int(stress_inputs.len() as i64)));
            Value::Obj(fields)
        }),
        ("mined_bank".into(), Value::Obj(mined_json)),
    ]);
    let path = flag_value(&args, "--json").unwrap_or_else(|| "BENCH_pipeline.json".into());
    if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {path}");

    if let Some((path, floor)) = floor {
        match floor.check_bench_throughput(
            single.samples_per_sec,
            sat.samples_per_sec,
            Some(stress.samples_per_sec),
        ) {
            Ok(()) => println!("bench throughput gate passed (floor: {path})"),
            Err(msg) => {
                eprintln!("bench throughput gate FAILED: {msg} (floor: {path})");
                std::process::exit(1);
            }
        }
        // Relative gate: the mined bank (same pipelines, ~20× the templates)
        // may cost at most the committed gap fraction vs the builtin
        // single-thread rate measured moments ago on the same machine. An
        // absolute floor would re-measure the runner; this ratio measures
        // the index. The gap tolerance is calibrated separately from the
        // absolute-floor margin (`bench_mined_max_gap`) because the ratio
        // of two back-to-back measurements is itself host-sensitive.
        let max_regression =
            floor.bench_mined_max_gap.or(floor.bench_max_throughput_regression).unwrap_or(0.15);
        let mined_floor = single.samples_per_sec * (1.0 - max_regression);
        if mined.samples_per_sec < mined_floor {
            eprintln!(
                "bench throughput gate FAILED: mined-bank rate {:.0}/s fell more than \
                 {:.0}% below the builtin single-thread rate {:.0}/s (floor: {path})",
                mined.samples_per_sec,
                max_regression * 100.0,
                single.samples_per_sec,
            );
            std::process::exit(1);
        }
        println!(
            "bench throughput gate passed for the mined bank ({:.0}/s vs builtin {:.0}/s)",
            mined.samples_per_sec, single.samples_per_sec,
        );
        // Absolute ceiling on steady-state allocations per sample: the
        // counting-allocator measurement has no wall-clock in it, so any
        // increase is a real allocation regression, not runner noise.
        match floor.check_bench_allocs(allocs_per_sample) {
            Ok(()) => println!("bench alloc gate passed ({allocs_per_sample:.1}/sample)"),
            Err(msg) => {
                eprintln!("bench alloc gate FAILED: {msg} (floor: {path})");
                std::process::exit(1);
            }
        }
    }
}
