//! Reproduces **Table IX**: example generated text per program type —
//! program, NL-Generator output, and a gold-style (annotator) rendering of
//! the same program for comparison.

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use corpora::annotator;
use nlgen::{NlGenerator, NoiseConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let generator = NlGenerator::new().with_noise(NoiseConfig::off());
    let noisy = NlGenerator::new().with_noise(NoiseConfig { sentence_rate: 1.0 });
    let mut rng = StdRng::seed_from_u64(9);

    println!("=== Table IX — generated text from programs ===\n");

    // --- SQL query (paper row 1) ---
    let sql = "select [department] from w order by [total deputies] desc limit 1";
    let stmt = sqlexec::parse(sql).unwrap();
    println!("Type: SQL Query");
    println!("  Program:   {stmt}");
    println!("  Generated: {}", generator.sql_question(&stmt, &mut rng).text);
    println!("  Gold-style: {}", annotator::human_sql_question(&stmt, &mut rng));
    println!("  (paper generated: \"Which department has the most total deputies?\")\n");

    // --- Logical form (paper row 2) ---
    let lf = "eq { count { filter_eq { all_rows ; material ; Basic Printer } } ; 3 }";
    let expr = logicforms::parse(lf).unwrap();
    println!("Type: Logical Form");
    println!("  Program:   {expr}");
    println!("  Generated: {}", generator.logic_claim(&expr, &mut rng).text);
    println!("  Gold-style: {}", annotator::human_logic_claim(&expr, &mut rng));
    println!("  (paper generated: \"There are 3 basic printer settings that can be used ...\")\n");

    // --- Arithmetic expression (paper row 3) ---
    let ae = "subtract( the 2019 of Stockholders' equity , the 2018 of Stockholders' equity ), divide( #0 , the 2018 of Stockholders' equity )";
    let program = arithexpr::parse(ae).unwrap();
    println!("Type: Arithmetic Expression");
    println!("  Program:   {program}");
    println!("  Generated: {}", generator.arith_question(&program, &mut rng).text);
    println!("  Gold-style: {}", annotator::human_arith_question(&program, &mut rng));
    println!("  (paper generated: \"By what percentage did stockholders' equity decrease from 2018 to 2019?\")\n");

    // --- The noise channel reproducing the paper's observed generation errors ---
    println!("Noise-channel examples (paper §V-F: generated text sometimes loses or");
    println!("garbles information):");
    for _ in 0..3 {
        let out = noisy.sql_question(&stmt, &mut rng);
        println!("  {}", out.text);
    }
}
