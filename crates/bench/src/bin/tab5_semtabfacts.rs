//! Reproduces **Table V**: SEM-TAB-FACTS (3-way micro F1 on dev and test).
//!
//! Paper reference values: TAPAS supervised 66.7/62.4; Random 33.3/33.3,
//! MQA-QG 53.2/50.4, TAPAS-Transfer 59.0/58.7, UCTR 62.6/60.3; few-shot
//! TAPAS 48.6/46.5, TAPAS+UCTR 62.4/60.1.

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{few_shot, pretrain_finetune_verifier, print_table, verifier_micro_f1};
use corpora::{feverous_like, semtab_like, CorpusConfig};
use models::{EvidenceView, RandomVerifier, VerdictSpace, VerifierModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use uctr::{generate_mqaqg, MqaQgConfig, UctrConfig, UctrPipeline};

fn row(
    name: &str,
    model: &VerifierModel,
    dev: &[uctr::Sample],
    test: &[uctr::Sample],
) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.1}", verifier_micro_f1(model, dev)),
        format!("{:.1}", verifier_micro_f1(model, test)),
    ]
}

fn main() {
    let bench = semtab_like(CorpusConfig::default());
    let dev = &bench.gold.dev;
    let test = &bench.gold.test;
    println!(
        "SEM-TAB-FACTS-like benchmark: {} train / {} dev / {} test, {} unlabeled tables",
        bench.gold.train.len(),
        dev.len(),
        test.len(),
        bench.unlabeled.len()
    );

    // Supervised TAPAS.
    let tapas = VerifierModel::train(&bench.gold.train, VerdictSpace::ThreeWay, EvidenceView::Full);

    // Unsupervised baselines.
    let mut rng = StdRng::seed_from_u64(5);
    let random = RandomVerifier::new(VerdictSpace::ThreeWay);
    let random_dev = 100.0 * random.accuracy(dev, &mut rng);
    let random_test = 100.0 * random.accuracy(test, &mut rng);

    let mqa_data = generate_mqaqg(&bench.unlabeled, &MqaQgConfig::verification());
    let mqaqg = VerifierModel::train(&mqa_data, VerdictSpace::ThreeWay, EvidenceView::Full);

    // TAPAS-Transfer: trained on the large general-domain corpus (our
    // FEVEROUS-like stands in for TABFACT) and applied directly. TABFACT is
    // 2-way, so the transferred model can never predict Unknown — the
    // paper's stated limitation of transfer learning here.
    let general = feverous_like(CorpusConfig::default());
    let transfer =
        VerifierModel::train(&general.gold.train, VerdictSpace::TwoWay, EvidenceView::Full);

    // SEM-TAB-FACTS is the smallest corpus; like the paper (4,071 samples
    // from 1,085 tables) we sample each table more heavily.
    let uctr_data = UctrPipeline::new(UctrConfig {
        unknown_rate: 0.06,
        samples_per_table: 24,
        ..UctrConfig::verification()
    })
    .generate(&bench.unlabeled);
    let uctr_model = VerifierModel::train(&uctr_data, VerdictSpace::ThreeWay, EvidenceView::Full);

    // Few-shot.
    let shots = few_shot(&bench.gold.train, 50);
    let tapas_few = VerifierModel::train(&shots, VerdictSpace::ThreeWay, EvidenceView::Full);
    let tapas_uctr = pretrain_finetune_verifier(&uctr_data, &shots, VerdictSpace::ThreeWay);

    let header = ["Model", "Dev micro-F1", "Test micro-F1"];
    let rows = vec![
        row("Supervised: TAPAS      (paper 66.7/62.4)", &tapas, dev, test),
        vec![
            "Unsup: Random          (paper 33.3/33.3)".to_string(),
            format!("{random_dev:.1}"),
            format!("{random_test:.1}"),
        ],
        row("Unsup: MQA-QG          (paper 53.2/50.4)", &mqaqg, dev, test),
        row("Unsup: TAPAS-Transfer  (paper 59.0/58.7)", &transfer, dev, test),
        row("Unsup: UCTR (ours)     (paper 62.6/60.3)", &uctr_model, dev, test),
        row("Few-shot: TAPAS        (paper 48.6/46.5)", &tapas_few, dev, test),
        row("Few-shot: TAPAS+UCTR   (paper 62.4/60.1)", &tapas_uctr, dev, test),
    ];
    print_table("Table V — SEM-TAB-FACTS (3-way micro F1)", &header, &rows);
    println!(
        "\nSynthetic data: UCTR {} samples, MQA-QG {} (paper: 4,071 UCTR samples).",
        uctr_data.len(),
        mqa_data.len()
    );
}
